//! The per-GPU execution simulator.

use crate::config::{GpuConfig, ReadyPolicy};
use crate::kernel::{KernelDesc, MemOp, Phase, SyncKind, TbDesc};
use sim_core::rng::JitterRng;
use sim_core::{EventQueue, FastHash, GroupId, KernelId, SimDuration, SimTime, TbId, TileId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// An observable action produced by the GPU, drained by the engine.
#[derive(Debug, Clone)]
pub enum GpuEffect {
    /// A TB issued remote memory operations. With `blocking`, the TB is
    /// now blocked and must be [`GpuSim::resume_tb`]-ed when the engine
    /// considers the operations complete.
    MemIssued {
        /// Issuing TB.
        tb: TbId,
        /// The operations.
        ops: Vec<MemOp>,
        /// Whether the TB blocked on completion.
        blocking: bool,
    },
    /// A TB produced a tile locally.
    TileReady {
        /// The produced tile.
        tile: TileId,
    },
    /// A TB asked for group synchronization. For [`SyncKind::PreAccess`]
    /// the TB is blocked and must be resumed; for [`SyncKind::PreLaunch`]
    /// the TB is pending dispatch until [`GpuSim::release_group`].
    GroupSyncRequest {
        /// Requesting TB.
        tb: TbId,
        /// The TB's group.
        group: GroupId,
        /// Synchronization point.
        kind: SyncKind,
    },
    /// A TB is blocked until all `tiles` are present on this GPU; the
    /// engine resumes it (immediately if they already are).
    NeedTiles {
        /// Blocked TB.
        tb: TbId,
        /// Tiles required.
        tiles: Vec<TileId>,
    },
    /// A TB finished all phases.
    TbCompleted {
        /// The TB.
        tb: TbId,
        /// Its kernel.
        kernel: KernelId,
    },
    /// Every TB of a kernel finished.
    KernelCompleted {
        /// The kernel.
        kernel: KernelId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TbState {
    /// Waiting for kernel arming and/or engine dependency release.
    Waiting,
    /// Ready but gated on a pre-launch group release.
    PendingGroup,
    /// In the ready queue.
    Queued,
    /// Occupying an SM slot, executing phase `phase`.
    Running { phase: usize },
    /// Occupying a slot, blocked in phase `phase` on an external event.
    Blocked { phase: usize },
    /// Yielded its slot while waiting for a group synchronization (the
    /// warp scheduler runs other work meanwhile); re-dispatched with
    /// priority on resume.
    Yielded { phase: usize },
    /// Finished.
    Done,
}

#[derive(Debug)]
struct TbRuntime {
    desc: TbDesc,
    kernel: KernelId,
    state: TbState,
    armed: bool,
    deps_ok: bool,
    enqueued_or_pending: bool,
    /// Phase to resume from when re-dispatched after a yielded sync.
    resume_phase: usize,
}

#[derive(Debug)]
struct KernelRuntime {
    remaining: usize,
    ordered: bool,
}

#[derive(Debug)]
enum GpuEvent {
    KernelArmed(KernelId),
    /// A TB's readiness (including dispatch jitter) materialized.
    ReadyAt(TbId),
    /// The current phase of a TB completed; advance to the next.
    PhaseDone(TbId),
    /// Try to dispatch ready TBs onto free slots.
    Dispatch,
}

/// One simulated GPU.
///
/// Driven by an engine: [`GpuSim::launch_kernel`] starts work,
/// [`GpuSim::advance`] processes internal events up to a time, and
/// [`GpuSim::drain_effects`] returns what happened so the engine can route
/// memory traffic, resolve dependencies and synchronize groups.
#[derive(Debug)]
pub struct GpuSim {
    /// Shared, immutable configuration. An `Arc` so a multi-GPU system
    /// builds the config once instead of deep-cloning it per GPU.
    cfg: Arc<GpuConfig>,
    now: SimTime,
    queue: EventQueue<GpuEvent>,
    tbs: HashMap<TbId, TbRuntime, FastHash>,
    kernels: HashMap<KernelId, KernelRuntime, FastHash>,
    ready: BinaryHeap<Reverse<(u64, u64, TbId)>>,
    ready_seq: u64,
    /// Whether a [`GpuEvent::Dispatch`] is already queued. Every push
    /// site runs at the engine's current step time, so one pending
    /// dispatch event covers all of them; collapsing the duplicates
    /// (which would drain an already-empty ready queue) is free.
    dispatch_pending: bool,
    slots_free: usize,
    released_groups: HashSet<GroupId, FastHash>,
    pending_group: HashMap<GroupId, Vec<TbId>, FastHash>,
    effects: Vec<(SimTime, GpuEffect)>,
    rng: JitterRng,
    // Slot-occupancy integral for utilization reporting.
    occupancy_integral_ps: u128,
    occupancy_last_change: SimTime,
    slots_in_use: usize,
}

impl GpuSim {
    /// Creates an idle GPU with a deterministic jitter stream. Accepts an
    /// owned config or a shared `Arc<GpuConfig>` (preferred when many
    /// GPUs share one config).
    pub fn new(cfg: impl Into<Arc<GpuConfig>>, seed: u64) -> GpuSim {
        let cfg = cfg.into();
        let slots = cfg.total_slots();
        GpuSim {
            cfg,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            tbs: HashMap::default(),
            kernels: HashMap::default(),
            ready: BinaryHeap::new(),
            ready_seq: 0,
            dispatch_pending: false,
            slots_free: slots,
            released_groups: HashSet::default(),
            pending_group: HashMap::default(),
            effects: Vec::new(),
            rng: JitterRng::seed_from(seed),
            occupancy_integral_ps: 0,
            occupancy_last_change: SimTime::ZERO,
            slots_in_use: 0,
        }
    }

    /// The GPU's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Launches `kernel` at `time`. TBs become ready after the launch
    /// overhead (unless the kernel is marked [`KernelDesc::fused_launch`]).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or the kernel id was already used.
    pub fn launch_kernel(&mut self, time: SimTime, kernel: KernelDesc) {
        assert!(time >= self.now, "cannot launch a kernel in the past");
        assert!(
            !self.kernels.contains_key(&kernel.id),
            "kernel {} launched twice",
            kernel.id
        );
        let overhead = if kernel.fused_launch {
            SimDuration::ZERO
        } else {
            self.cfg.kernel_launch_overhead + self.rng.jitter(self.cfg.launch_skew)
        };
        self.kernels.insert(
            kernel.id,
            KernelRuntime {
                remaining: kernel.tbs.len(),
                ordered: kernel.ordered,
            },
        );
        if kernel.tbs.is_empty() {
            // Degenerate but legal: completes right after arming.
            self.effects.push((
                time + overhead,
                GpuEffect::KernelCompleted { kernel: kernel.id },
            ));
        }
        for tb in kernel.tbs {
            let id = tb.id;
            let prev = self.tbs.insert(
                id,
                TbRuntime {
                    deps_ok: kernel.tbs_auto_ready,
                    desc: tb,
                    kernel: kernel.id,
                    state: TbState::Waiting,
                    armed: false,
                    enqueued_or_pending: false,
                    resume_phase: 0,
                },
            );
            assert!(prev.is_none(), "thread block {id} registered twice");
        }
        self.queue
            .push(time + overhead, GpuEvent::KernelArmed(kernel.id));
    }

    /// Marks a dependency-gated TB as ready (engine resolved its inputs).
    ///
    /// # Panics
    ///
    /// Panics if the TB is unknown.
    pub fn make_tb_ready(&mut self, time: SimTime, tb: TbId) {
        assert!(time >= self.now, "cannot mark ready in the past");
        let rt = self.tbs.get_mut(&tb).expect("make_tb_ready: unknown TB");
        if rt.deps_ok {
            return;
        }
        rt.deps_ok = true;
        if rt.armed && !rt.enqueued_or_pending {
            self.schedule_ready(time, tb);
        }
    }

    /// Resumes a TB blocked on memory completion, pre-access sync or tile
    /// availability.
    ///
    /// # Panics
    ///
    /// Panics if the TB is not blocked.
    pub fn resume_tb(&mut self, time: SimTime, tb: TbId) {
        assert!(time >= self.now, "cannot resume in the past");
        let rt = self.tbs.get_mut(&tb).expect("resume_tb: unknown TB");
        match rt.state {
            TbState::Blocked { phase } => {
                rt.state = TbState::Running { phase };
                self.queue.push(time, GpuEvent::PhaseDone(tb));
            }
            TbState::Yielded { phase } => {
                // Re-enter the ready queue with top priority (the resident
                // warp state is already on the SM; it resumes as soon as a
                // slot frees).
                rt.resume_phase = phase + 1;
                rt.state = TbState::Queued;
                let seq = self.ready_seq;
                self.ready_seq += 1;
                self.ready.push(Reverse((0, seq, tb)));
                self.push_dispatch(time);
            }
            other => panic!("resume_tb: {tb} is {other:?}, not blocked"),
        }
    }

    /// Releases a pre-launch-gated group: its pending TBs enter the ready
    /// queue and future TBs of the group dispatch without gating.
    pub fn release_group(&mut self, time: SimTime, group: GroupId) {
        assert!(time >= self.now, "cannot release in the past");
        if !self.released_groups.insert(group) {
            return;
        }
        for tb in self.pending_group.remove(&group).unwrap_or_default() {
            self.enqueue_ready(time, tb);
        }
        self.push_dispatch(time);
    }

    /// Timestamp of the next internal event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes every internal event at or before `until`.
    pub fn advance(&mut self, until: SimTime) {
        while let Some((t, ev)) = self.queue.pop_due(until) {
            self.now = t;
            self.handle(t, ev);
        }
        self.now = self.now.max(until);
    }

    /// Takes all effects produced since the last drain, in time order.
    pub fn drain_effects(&mut self) -> Vec<(SimTime, GpuEffect)> {
        std::mem::take(&mut self.effects)
    }

    /// Like [`GpuSim::drain_effects`], but swaps the effects into `out`
    /// (cleared first), handing the GPU `out`'s allocation to refill.
    /// Lets a driver recycle one scratch buffer across drains instead of
    /// re-growing a fresh `Vec` per cycle.
    pub fn drain_effects_into(&mut self, out: &mut Vec<(SimTime, GpuEffect)>) {
        out.clear();
        std::mem::swap(&mut self.effects, out);
    }

    /// True when effects are pending; lets drivers skip the drain swap
    /// for idle GPUs in the hot drain loop.
    pub fn has_effects(&self) -> bool {
        !self.effects.is_empty()
    }

    /// True when no TB is queued, running, blocked or pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self
                .tbs
                .values()
                .all(|rt| matches!(rt.state, TbState::Done))
    }

    /// Blocked/waiting TBs (diagnostics for deadlock reports).
    pub fn stuck_tbs(&self) -> Vec<TbId> {
        self.tbs
            .iter()
            .filter(|(_, rt)| !matches!(rt.state, TbState::Done))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Total internal events processed so far (perf accounting).
    pub fn events_processed(&self) -> u64 {
        self.queue.pops()
    }

    /// High-water mark of the internal event queue (perf accounting).
    pub fn queue_peak(&self) -> usize {
        self.queue.peak_len()
    }

    /// Mean SM-slot occupancy in `[0, horizon)` (0..=1).
    pub fn occupancy(&self, horizon: SimDuration) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        // Close the integral up to `horizon` for currently running slots.
        let mut integral = self.occupancy_integral_ps;
        let end = SimTime::ZERO + horizon;
        if end > self.occupancy_last_change {
            integral +=
                self.slots_in_use as u128 * end.since(self.occupancy_last_change).as_ps() as u128;
        }
        integral as f64 / (self.cfg.total_slots() as u128 * horizon.as_ps() as u128) as f64
    }

    fn note_occupancy_change(&mut self, now: SimTime, delta: isize) {
        self.occupancy_integral_ps += self.slots_in_use as u128
            * now.saturating_since(self.occupancy_last_change).as_ps() as u128;
        self.occupancy_last_change = self.occupancy_last_change.max(now);
        self.slots_in_use = (self.slots_in_use as isize + delta) as usize;
    }

    fn push_dispatch(&mut self, time: SimTime) {
        if !self.dispatch_pending {
            self.dispatch_pending = true;
            self.queue.push(time, GpuEvent::Dispatch);
        }
    }

    fn schedule_ready(&mut self, time: SimTime, tb: TbId) {
        let rt = self.tbs.get_mut(&tb).expect("schedule_ready: unknown TB");
        rt.enqueued_or_pending = true;
        let kernel = rt.kernel;
        let jitter = if self.kernels[&kernel].ordered {
            SimDuration::ZERO
        } else {
            self.rng.jitter(self.cfg.dispatch_jitter)
        };
        self.queue.push(time + jitter, GpuEvent::ReadyAt(tb));
    }

    fn enqueue_ready(&mut self, time: SimTime, tb: TbId) {
        let rt = &self.tbs[&tb];
        let key = if self.kernels[&rt.kernel].ordered {
            rt.desc.order_key
        } else {
            match self.cfg.ready_policy {
                ReadyPolicy::Fifo => time.as_ps(),
                ReadyPolicy::GroupOrdered => rt.desc.order_key,
            }
        };
        let seq = self.ready_seq;
        self.ready_seq += 1;
        self.ready.push(Reverse((key, seq, tb)));
        self.tbs.get_mut(&tb).expect("enqueue: unknown TB").state = TbState::Queued;
    }

    fn handle(&mut self, now: SimTime, ev: GpuEvent) {
        match ev {
            GpuEvent::KernelArmed(kernel) => {
                let mut ready: Vec<(u64, TbId)> = self
                    .tbs
                    .iter_mut()
                    .filter(|(_, rt)| rt.kernel == kernel)
                    .map(|(id, rt)| {
                        rt.armed = true;
                        (
                            rt.desc.order_key,
                            *id,
                            rt.deps_ok && !rt.enqueued_or_pending,
                        )
                    })
                    .filter(|(_, _, go)| *go)
                    .map(|(key, id, _)| (key, id))
                    .collect();
                // Deterministic arming order: hardware drains the grid in
                // block order, and corresponding TBs on different GPUs
                // must tie-break identically.
                ready.sort_unstable();
                for (_, tb) in ready {
                    self.schedule_ready(now, tb);
                }
            }
            GpuEvent::ReadyAt(tb) => {
                let rt = &self.tbs[&tb];
                if rt.desc.pre_launch_sync {
                    let group = rt.desc.group.expect("pre_launch_sync TB must have a group");
                    if !self.released_groups.contains(&group) {
                        self.tbs.get_mut(&tb).expect("known").state = TbState::PendingGroup;
                        self.pending_group.entry(group).or_default().push(tb);
                        self.effects.push((
                            now,
                            GpuEffect::GroupSyncRequest {
                                tb,
                                group,
                                kind: SyncKind::PreLaunch,
                            },
                        ));
                        return;
                    }
                }
                self.enqueue_ready(now, tb);
                self.push_dispatch(now);
            }
            GpuEvent::Dispatch => {
                self.dispatch_pending = false;
                self.dispatch(now);
            }
            GpuEvent::PhaseDone(tb) => {
                let rt = self.tbs.get_mut(&tb).expect("PhaseDone: unknown TB");
                let phase = match rt.state {
                    TbState::Running { phase } => phase,
                    other => panic!("PhaseDone for {tb} in state {other:?}"),
                };
                rt.state = TbState::Running { phase: phase + 1 };
                self.step_tb(now, tb);
            }
        }
    }

    fn dispatch(&mut self, now: SimTime) {
        while self.slots_free > 0 {
            let Some(Reverse((_, _, tb))) = self.ready.pop() else {
                break;
            };
            self.slots_free -= 1;
            self.note_occupancy_change(now, 1);
            let rt = self.tbs.get_mut(&tb).expect("dispatch: unknown TB");
            let phase = std::mem::take(&mut rt.resume_phase);
            rt.state = TbState::Running { phase };
            self.step_tb(now, tb);
        }
    }

    /// Interprets phases starting at the TB's current phase index until it
    /// blocks, schedules a timed event, or completes.
    fn step_tb(&mut self, now: SimTime, tb: TbId) {
        loop {
            let rt = self.tbs.get_mut(&tb).expect("step_tb: unknown TB");
            let phase_idx = match rt.state {
                TbState::Running { phase } => phase,
                other => panic!("step_tb for {tb} in state {other:?}"),
            };
            if phase_idx >= rt.desc.phases.len() {
                self.complete_tb(now, tb);
                return;
            }
            // End the borrow by lifting the phase out. Every phase runs
            // exactly once (blocked/yielded TBs resume at the *next*
            // phase index), so the heap payloads (`ops`, `tiles`) can be
            // moved instead of deep-cloned on every step.
            let phase = match &mut rt.desc.phases[phase_idx] {
                Phase::Compute(d) => Phase::Compute(*d),
                Phase::IssueMem { ops, wait } => Phase::IssueMem {
                    ops: std::mem::take(ops),
                    wait: *wait,
                },
                Phase::SyncGroup(kind) => Phase::SyncGroup(*kind),
                Phase::SignalTile(tile) => Phase::SignalTile(*tile),
                Phase::WaitTiles(tiles) => Phase::WaitTiles(std::mem::take(tiles)),
            };
            match phase {
                Phase::Compute(d) => {
                    let d = if self.cfg.compute_scale == 1.0 {
                        d
                    } else {
                        SimDuration::from_ps((d.as_ps() as f64 * self.cfg.compute_scale) as u64)
                    };
                    let jitter = self.rng.jitter(self.cfg.compute_jitter);
                    self.queue.push(now + d + jitter, GpuEvent::PhaseDone(tb));
                    return;
                }
                Phase::IssueMem { ops, wait } => {
                    self.effects.push((
                        now,
                        GpuEffect::MemIssued {
                            tb,
                            ops,
                            blocking: wait,
                        },
                    ));
                    let rt = self.tbs.get_mut(&tb).expect("known");
                    if wait {
                        rt.state = TbState::Blocked { phase: phase_idx };
                        return;
                    }
                    rt.state = TbState::Running {
                        phase: phase_idx + 1,
                    };
                }
                Phase::SyncGroup(kind) => {
                    let group = rt.desc.group.expect("SyncGroup phase requires a TB group");
                    // Yield the slot for the wait: the warp scheduler
                    // issues independent work meanwhile (paper Sec.
                    // III-B-2), so a cross-GPU sync never pins an SM.
                    rt.state = TbState::Yielded { phase: phase_idx };
                    self.slots_free += 1;
                    self.note_occupancy_change(now, -1);
                    self.effects
                        .push((now, GpuEffect::GroupSyncRequest { tb, group, kind }));
                    self.push_dispatch(now);
                    return;
                }
                Phase::SignalTile(tile) => {
                    rt.state = TbState::Running {
                        phase: phase_idx + 1,
                    };
                    self.effects.push((now, GpuEffect::TileReady { tile }));
                }
                Phase::WaitTiles(tiles) => {
                    rt.state = TbState::Blocked { phase: phase_idx };
                    self.effects.push((now, GpuEffect::NeedTiles { tb, tiles }));
                    return;
                }
            }
        }
    }

    fn complete_tb(&mut self, now: SimTime, tb: TbId) {
        let rt = self.tbs.get_mut(&tb).expect("complete_tb: unknown TB");
        rt.state = TbState::Done;
        let kernel = rt.kernel;
        self.slots_free += 1;
        self.note_occupancy_change(now, -1);
        self.effects
            .push((now, GpuEffect::TbCompleted { tb, kernel }));
        let krt = self.kernels.get_mut(&kernel).expect("kernel exists");
        krt.remaining -= 1;
        if krt.remaining == 0 {
            self.effects
                .push((now, GpuEffect::KernelCompleted { kernel }));
        }
        self.push_dispatch(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::KernelId;

    fn quiet_cfg() -> GpuConfig {
        GpuConfig {
            dispatch_jitter: SimDuration::ZERO,
            compute_jitter: SimDuration::ZERO,
            launch_skew: SimDuration::ZERO,
            kernel_launch_overhead: SimDuration::from_us(3),
            sm_count: 2,
            tb_slots_per_sm: 1,
            ..GpuConfig::h100_half()
        }
    }

    fn run_all(gpu: &mut GpuSim) -> Vec<(SimTime, GpuEffect)> {
        let mut all = Vec::new();
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
            all.extend(gpu.drain_effects());
        }
        all
    }

    fn compute_tb(id: u64, us: u64) -> TbDesc {
        TbDesc::compute_only(TbId(id), id, SimDuration::from_us(us))
    }

    #[test]
    fn kernel_runs_after_launch_overhead() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![compute_tb(0, 10)]),
        );
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .expect("kernel completed");
        // 3 us launch overhead + 10 us compute.
        assert_eq!(done.0, SimTime::from_us(13));
        assert!(gpu.is_idle());
    }

    #[test]
    fn slots_bound_parallelism() {
        // 2 slots, 4 TBs of 10 us each => two waves => 3 + 20 us.
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let tbs = (0..4).map(|i| compute_tb(i, 10)).collect();
        gpu.launch_kernel(SimTime::ZERO, KernelDesc::new(KernelId(0), "k", tbs));
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .unwrap();
        assert_eq!(done.0, SimTime::from_us(23));
    }

    #[test]
    fn fused_launch_skips_overhead() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let mut k = KernelDesc::new(KernelId(0), "fused", vec![compute_tb(0, 5)]);
        k.fused_launch = true;
        gpu.launch_kernel(SimTime::ZERO, k);
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .unwrap();
        assert_eq!(done.0, SimTime::from_us(5));
    }

    #[test]
    fn blocking_mem_phase_waits_for_resume() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let tb = TbDesc {
            id: TbId(0),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::IssueMem {
                    ops: vec![],
                    wait: true,
                },
                Phase::Compute(SimDuration::from_us(1)),
            ],
        };
        gpu.launch_kernel(SimTime::ZERO, KernelDesc::new(KernelId(0), "k", vec![tb]));
        // Run until blocked.
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        let effects = gpu.drain_effects();
        assert!(effects
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::MemIssued { blocking: true, .. })));
        assert!(!gpu.is_idle());
        // Resume at 50 us; completion at 51 us.
        gpu.resume_tb(SimTime::from_us(50), TbId(0));
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .unwrap();
        assert_eq!(done.0, SimTime::from_us(51));
    }

    #[test]
    fn dependency_gated_tbs_wait_for_engine() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let mut k = KernelDesc::new(KernelId(0), "k", vec![compute_tb(0, 1)]);
        k.tbs_auto_ready = false;
        gpu.launch_kernel(SimTime::ZERO, k);
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        assert!(!gpu.is_idle(), "TB must not run before deps resolve");
        gpu.make_tb_ready(SimTime::from_us(100), TbId(0));
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .unwrap();
        assert_eq!(done.0, SimTime::from_us(101));
    }

    #[test]
    fn pre_launch_sync_gates_dispatch() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let tb = TbDesc {
            id: TbId(0),
            order_key: 0,
            group: Some(GroupId(7)),
            pre_launch_sync: true,
            phases: vec![Phase::Compute(SimDuration::from_us(2))],
        };
        gpu.launch_kernel(SimTime::ZERO, KernelDesc::new(KernelId(0), "k", vec![tb]));
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        let effects = gpu.drain_effects();
        assert!(effects.iter().any(|(_, e)| matches!(
            e,
            GpuEffect::GroupSyncRequest {
                kind: SyncKind::PreLaunch,
                ..
            }
        )));
        assert!(!gpu.is_idle());
        gpu.release_group(SimTime::from_us(20), GroupId(7));
        let effects = run_all(&mut gpu);
        let done = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .unwrap();
        assert_eq!(done.0, SimTime::from_us(22));
    }

    #[test]
    fn group_sync_yields_the_slot() {
        // One slot; TB A enters a group sync; TB B (no sync) must run to
        // completion while A waits — the sync must not pin the SM.
        let mut cfg = quiet_cfg();
        cfg.sm_count = 1;
        cfg.tb_slots_per_sm = 1;
        let mut gpu = GpuSim::new(cfg, 1);
        let syncer = TbDesc {
            id: TbId(0),
            order_key: 0,
            group: Some(GroupId(1)),
            pre_launch_sync: false,
            phases: vec![
                Phase::SyncGroup(SyncKind::PreAccess),
                Phase::Compute(SimDuration::from_us(1)),
            ],
        };
        let worker = compute_tb(1, 2);
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![syncer, worker]),
        );
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        let fx = gpu.drain_effects();
        // The worker completed even though the syncer is still waiting.
        assert!(fx
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::TbCompleted { tb, .. } if *tb == TbId(1))));
        assert!(!gpu.is_idle());
        // Resume the syncer; it re-acquires the slot and finishes.
        gpu.resume_tb(SimTime::from_us(30), TbId(0));
        let fx = run_all(&mut gpu);
        assert!(fx
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. })));
        assert!(gpu.is_idle());
    }

    #[test]
    fn ordered_kernel_ignores_jitter_and_respects_order_key() {
        let mut cfg = quiet_cfg();
        cfg.dispatch_jitter = SimDuration::from_us(50);
        cfg.sm_count = 1;
        cfg.tb_slots_per_sm = 1;
        let mut gpu = GpuSim::new(cfg, 99);
        let a = TbDesc {
            order_key: 1,
            ..compute_tb(0, 1)
        };
        let b = TbDesc {
            order_key: 0,
            ..compute_tb(1, 1)
        };
        let mut k = KernelDesc::new(KernelId(0), "coll", vec![a, b]);
        k.ordered = true;
        gpu.launch_kernel(SimTime::ZERO, k);
        let fx = run_all(&mut gpu);
        let order: Vec<TbId> = fx
            .iter()
            .filter_map(|(_, e)| match e {
                GpuEffect::TbCompleted { tb, .. } => Some(*tb),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![TbId(1), TbId(0)]);
        // No dispatch jitter: total = 3us launch + 2us compute exactly.
        let done = fx
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
            .map(|(t, _)| *t)
            .unwrap();
        assert_eq!(done, SimTime::from_us(5));
    }

    #[test]
    fn signal_and_wait_tiles_emit_effects() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        let producer = TbDesc {
            id: TbId(0),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::Compute(SimDuration::from_us(1)),
                Phase::SignalTile(TileId(5)),
            ],
        };
        let consumer = TbDesc {
            id: TbId(1),
            order_key: 1,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::WaitTiles(vec![TileId(5)]),
                Phase::Compute(SimDuration::from_us(1)),
            ],
        };
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![producer, consumer]),
        );
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        let effects = gpu.drain_effects();
        let tile_ready_at = effects
            .iter()
            .find(|(_, e)| matches!(e, GpuEffect::TileReady { tile } if *tile == TileId(5)))
            .map(|(t, _)| *t)
            .expect("tile signaled");
        assert_eq!(tile_ready_at, SimTime::from_us(4));
        assert!(effects
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::NeedTiles { tb, .. } if *tb == TbId(1))));
        // Engine would resume the consumer now.
        gpu.resume_tb(tile_ready_at, TbId(1));
        let effects = run_all(&mut gpu);
        assert!(effects
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. })));
    }

    #[test]
    fn group_ordered_policy_ignores_arrival_order() {
        let mut cfg = quiet_cfg();
        cfg.ready_policy = ReadyPolicy::GroupOrdered;
        cfg.sm_count = 1; // one slot: strict serialization exposes order
        let mut gpu = GpuSim::new(cfg, 1);
        // order_key reversed relative to launch order within the grid.
        let tb_a = TbDesc {
            order_key: 1,
            ..compute_tb(0, 1)
        };
        let tb_b = TbDesc {
            order_key: 0,
            ..compute_tb(1, 1)
        };
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![tb_a, tb_b]),
        );
        let effects = run_all(&mut gpu);
        let order: Vec<TbId> = effects
            .iter()
            .filter_map(|(_, e)| match e {
                GpuEffect::TbCompleted { tb, .. } => Some(*tb),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![TbId(1), TbId(0)], "order_key must win");
    }

    #[test]
    fn dispatch_jitter_staggers_identical_gpus() {
        let mut cfg = quiet_cfg();
        cfg.dispatch_jitter = SimDuration::from_us(8);
        let mk = |seed| {
            let mut gpu = GpuSim::new(cfg.clone(), seed);
            gpu.launch_kernel(
                SimTime::ZERO,
                KernelDesc::new(KernelId(0), "k", vec![compute_tb(0, 10)]),
            );
            let fx = run_all(&mut gpu);
            fx.iter()
                .find(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. }))
                .map(|(t, _)| *t)
                .unwrap()
        };
        let a = mk(1);
        let b = mk(2);
        assert_ne!(a, b, "different seeds must drift");
        let spread = a.max(b).since(a.min(b));
        assert!(spread < SimDuration::from_us(8));
    }

    #[test]
    fn occupancy_reflects_busy_fraction() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1); // 2 slots
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![compute_tb(0, 10)]),
        );
        run_all(&mut gpu);
        // One of two slots busy for 10 of 13 us.
        let occ = gpu.occupancy(SimDuration::from_us(13));
        assert!((occ - 10.0 / 26.0).abs() < 0.01, "occupancy {occ}");
    }

    #[test]
    #[should_panic(expected = "launched twice")]
    fn duplicate_kernel_id_panics() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k", vec![compute_tb(0, 1)]),
        );
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(KernelId(0), "k2", vec![compute_tb(1, 1)]),
        );
    }

    #[test]
    fn empty_kernel_completes() {
        let mut gpu = GpuSim::new(quiet_cfg(), 1);
        gpu.launch_kernel(SimTime::ZERO, KernelDesc::new(KernelId(0), "empty", vec![]));
        let effects = run_all(&mut gpu);
        assert!(effects
            .iter()
            .any(|(_, e)| matches!(e, GpuEffect::KernelCompleted { .. })));
    }
}
