//! Kernel and thread-block descriptors.

use sim_core::{Addr, GroupId, KernelId, SimDuration, Symbol, TbId, TileId};

/// The kind of a remote memory operation issued by a TB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// Pull-mode remote read (CAIS `ld.cais`, or an uncached remote load
    /// for strategies without in-switch support). The issuing TB receives
    /// the data back.
    RemoteLoad,
    /// Push-mode reduction contribution (CAIS `red.cais`, NVLS
    /// `multimem.red`): data flows to the home GPU of the address and is
    /// accumulated there (or in the switch).
    RemoteReduce,
    /// Plain remote write (T3-style direct store to a peer).
    RemoteWrite,
    /// NVLS `multimem.st`: push one chunk once; the switch replicates it
    /// to every other GPU.
    MulticastStore,
    /// NVLS `multimem.ld_reduce`: pull-mode reduction; the switch fetches
    /// the chunk from every other GPU, reduces in flight, and returns the
    /// sum to the issuer.
    LoadReduce,
}

/// One remote memory operation.
#[derive(Debug, Clone)]
pub struct MemOp {
    /// Operation kind.
    pub kind: MemOpKind,
    /// Global address (its [`Addr::home_gpu`] is the data's owner).
    pub addr: Addr,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Whether the request is CAIS-tagged (eligible for in-switch merging).
    pub cais: bool,
    /// Tile this operation materializes locally (loads) or contributes to
    /// (reductions); lets the engine publish tile availability.
    pub tile: Option<TileId>,
}

/// Which CAIS synchronization point a [`Phase::SyncGroup`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// Pre-launch alignment (handled at dispatch, before the TB occupies
    /// an SM slot).
    PreLaunch,
    /// Pre-access alignment (the first `*.cais` instruction of a warp
    /// waits until all group peers reach the same point).
    PreAccess,
}

/// One step in a TB's execution.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Occupy the SM for this long (roofline-derived duration).
    Compute(SimDuration),
    /// Issue remote memory operations. With `wait`, the TB blocks until the
    /// engine reports completion (loads returning data / acked writes);
    /// otherwise it proceeds immediately (fire-and-forget reductions).
    IssueMem {
        /// The operations to issue.
        ops: Vec<MemOp>,
        /// Whether the TB blocks until the engine resumes it.
        wait: bool,
    },
    /// Block until the engine releases this TB's group (pre-access sync).
    SyncGroup(SyncKind),
    /// Publish a locally produced tile (fine-grained producer signal).
    SignalTile(TileId),
    /// Block until all listed tiles are present on this GPU.
    WaitTiles(Vec<TileId>),
}

/// A thread block.
#[derive(Debug, Clone)]
pub struct TbDesc {
    /// Globally unique id (assigned by the engine/lowering).
    pub id: TbId,
    /// Deterministic dispatch-order key, identical for semantically
    /// corresponding TBs on every GPU (the CAIS compiler's TB grouping
    /// relies on this; see [`ReadyPolicy::GroupOrdered`](crate::ReadyPolicy::GroupOrdered)).
    pub order_key: u64,
    /// CAIS TB group this block belongs to, if any.
    pub group: Option<GroupId>,
    /// Whether dispatch must wait for a pre-launch group release.
    pub pre_launch_sync: bool,
    /// Execution phases, run in order.
    pub phases: Vec<Phase>,
}

impl TbDesc {
    /// Creates a plain compute TB with no communication.
    pub fn compute_only(id: TbId, order_key: u64, dur: SimDuration) -> TbDesc {
        TbDesc {
            id,
            order_key,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::Compute(dur)],
        }
    }

    /// Sum of declared compute time (ignores jitter and blocking).
    pub fn compute_time(&self) -> SimDuration {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Compute(d) => *d,
                _ => SimDuration::ZERO,
            })
            .sum()
    }

    /// Total bytes this TB moves through the fabric.
    pub fn remote_bytes(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::IssueMem { ops, .. } => ops.iter().map(|o| o.bytes).sum(),
                _ => 0,
            })
            .sum()
    }
}

/// A kernel: a grid of TBs launched together on one GPU.
#[derive(Debug, Clone)]
pub struct KernelDesc {
    /// Globally unique kernel id.
    pub id: KernelId,
    /// Human-readable name for reports ("qkv_gemm", "allgather", ...),
    /// interned so per-launch bookkeeping copies a 4-byte symbol instead
    /// of cloning a heap string.
    pub name: Symbol,
    /// The grid.
    pub tbs: Vec<TbDesc>,
    /// When false, TBs additionally wait for the engine to mark them ready
    /// (fine-grained cross-kernel dependencies); when true every TB is
    /// ready as soon as the kernel launches.
    pub tbs_auto_ready: bool,
    /// Skip the host launch overhead (used for stages fused into a single
    /// kernel by FuseLib-style strategies).
    pub fused_launch: bool,
    /// Persistent-kernel semantics (NCCL-style communication kernels):
    /// TBs dispatch strictly in `order_key` order with no per-TB
    /// dispatch jitter — the "TBs" are loop steps of one resident
    /// kernel, not independently scheduled blocks.
    pub ordered: bool,
}

impl KernelDesc {
    /// Creates a kernel whose TBs are all immediately ready at launch.
    pub fn new(id: KernelId, name: impl Into<Symbol>, tbs: Vec<TbDesc>) -> KernelDesc {
        KernelDesc {
            id,
            name: name.into(),
            tbs,
            tbs_auto_ready: true,
            fused_launch: false,
            ordered: false,
        }
    }

    /// Total declared compute time across TBs.
    pub fn total_compute(&self) -> SimDuration {
        self.tbs.iter().map(|tb| tb.compute_time()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GpuId;

    #[test]
    fn tb_aggregates() {
        let tb = TbDesc {
            id: TbId(1),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::Compute(SimDuration::from_us(2)),
                Phase::IssueMem {
                    ops: vec![MemOp {
                        kind: MemOpKind::RemoteLoad,
                        addr: Addr::new(GpuId(1), 0),
                        bytes: 4096,
                        cais: true,
                        tile: None,
                    }],
                    wait: true,
                },
                Phase::Compute(SimDuration::from_us(3)),
            ],
        };
        assert_eq!(tb.compute_time(), SimDuration::from_us(5));
        assert_eq!(tb.remote_bytes(), 4096);
    }

    #[test]
    fn kernel_totals() {
        let tbs = (0..4)
            .map(|i| TbDesc::compute_only(TbId(i), i, SimDuration::from_us(1)))
            .collect();
        let k = KernelDesc::new(KernelId(0), "k", tbs);
        assert_eq!(k.total_compute(), SimDuration::from_us(4));
        assert!(k.tbs_auto_ready);
        assert!(!k.fused_launch);
    }
}
