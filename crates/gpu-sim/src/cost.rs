//! Roofline kernel timing model.
//!
//! Replaces Accel-Sim's cycle-level SM pipelines with the first-order model
//! that actually governs dense LLM kernels: a TB's duration is the larger
//! of its math time (FLOPs at the SM's peak rate, derated by an efficiency
//! factor) and its memory time (bytes at the SM's share of HBM bandwidth).

use crate::config::GpuConfig;
use sim_core::SimDuration;

/// Computes TB durations for a given GPU configuration.
#[derive(Debug, Clone)]
pub struct KernelCost {
    flops_per_ns: f64,
    bytes_per_ns: f64,
    efficiency: f64,
}

impl KernelCost {
    /// Default fraction of peak a well-tuned CUTLASS GEMM sustains.
    pub const DEFAULT_EFFICIENCY: f64 = 0.65;

    /// Builds a cost model for one SM of `cfg` with the default efficiency.
    pub fn new(cfg: &GpuConfig) -> KernelCost {
        KernelCost::with_efficiency(cfg, Self::DEFAULT_EFFICIENCY)
    }

    /// Builds a cost model with an explicit sustained-efficiency factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < efficiency <= 1`.
    pub fn with_efficiency(cfg: &GpuConfig, efficiency: f64) -> KernelCost {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        KernelCost {
            flops_per_ns: cfg.flops_per_ns_per_sm,
            bytes_per_ns: cfg.hbm_bw_per_sm().as_bytes_per_sec() / 1e9,
            efficiency,
        }
    }

    /// Duration of a TB performing `flops` FLOPs over `hbm_bytes` of local
    /// memory traffic on one SM.
    pub fn tb_time(&self, flops: f64, hbm_bytes: f64) -> SimDuration {
        let math_ns = flops / (self.flops_per_ns * self.efficiency);
        let mem_ns = hbm_bytes / self.bytes_per_ns;
        let ns = math_ns.max(mem_ns);
        SimDuration::from_ps((ns * 1e3).ceil() as u64)
    }

    /// Typical cross-TB operand reuse through L2/shared memory: adjacent
    /// tiles in a GEMM wave re-read the same operand rows/columns, so only
    /// ~1/8 of the naive operand footprint reaches HBM.
    pub const OPERAND_REUSE: f64 = 8.0;

    /// Duration of a GEMM tile: `2*m*n*k` FLOPs writing an `m x n` result
    /// and streaming `m x k` / `k x n` operands derated by
    /// [`Self::OPERAND_REUSE`] (`elem` bytes per element).
    pub fn gemm_tile(&self, m: u64, n: u64, k: u64, elem: u64) -> SimDuration {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let bytes = ((m * k + k * n) * elem) as f64 / Self::OPERAND_REUSE + (m * n * elem) as f64;
        self.tb_time(flops, bytes)
    }

    /// Duration of an elementwise/normalization TB over `elems` elements
    /// (`elem_bytes` each, read + write, ~`flops_per_elem` FLOPs per
    /// element — bandwidth-bound in practice).
    pub fn elementwise(&self, elems: u64, elem_bytes: u64, flops_per_elem: f64) -> SimDuration {
        self.tb_time(
            elems as f64 * flops_per_elem,
            (2 * elems * elem_bytes) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> KernelCost {
        KernelCost::new(&GpuConfig::h100_half())
    }

    #[test]
    fn gemm_tile_is_compute_bound() {
        // A 128x128x4096 fp16 tile: 137 MFLOP vs ~1.1 MB of traffic.
        let c = cost();
        let t = c.gemm_tile(128, 128, 4096, 2);
        // Math time at 65% of 7492 FLOP/ns: 137.4e6 / 4870 ~ 28.2 us... ns!
        let expect_ns = 2.0 * 128.0 * 128.0 * 4096.0 / (7492.0 * 0.65);
        let got_ns = t.as_ps() as f64 / 1e3;
        assert!(
            (got_ns - expect_ns).abs() / expect_ns < 0.05,
            "expected ~{expect_ns} ns, got {got_ns} ns"
        );
    }

    #[test]
    fn elementwise_is_memory_bound() {
        let c = cost();
        let t = c.elementwise(128 * 4096, 2, 4.0);
        let bytes = 2.0 * 128.0 * 4096.0 * 2.0;
        let expect_ns = bytes / (1675.0 / 66.0);
        let got_ns = t.as_ps() as f64 / 1e3;
        assert!(
            (got_ns - expect_ns).abs() / expect_ns < 0.05,
            "expected ~{expect_ns} ns, got {got_ns} ns"
        );
    }

    #[test]
    fn more_flops_take_longer() {
        let c = cost();
        assert!(c.gemm_tile(128, 128, 8192, 2) > c.gemm_tile(128, 128, 4096, 2));
    }

    #[test]
    #[should_panic(expected = "efficiency must be in")]
    fn rejects_bad_efficiency() {
        let _ = KernelCost::with_efficiency(&GpuConfig::h100_half(), 0.0);
    }
}
