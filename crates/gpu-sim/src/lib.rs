//! Thread-block-granularity multi-GPU execution simulator.
//!
//! This crate replaces the role Accel-Sim plays in the paper: it models
//! *when* thread blocks (TBs) run and *when* they touch memory, not what
//! arithmetic they perform. A GPU is an array of SMs with a bounded number
//! of resident TB slots; kernels are grids of [`TbDesc`]s, each an explicit
//! sequence of [`Phase`]s (compute intervals, memory-request issues,
//! TB-group synchronizations, tile signals/waits).
//!
//! Everything the paper's mechanisms key on is first-class here:
//!
//! * **Scheduling drift across GPUs** (Sec. II-D challenge 2): per-TB
//!   dispatch jitter and per-phase compute jitter, both deterministic from
//!   an explicit seed, model the OS/clock variance that staggers identical
//!   TBs across devices by tens of microseconds.
//! * **Ready-queue policy**: FIFO (default hardware behaviour) or
//!   group-ordered (the CAIS compiler's TB grouping, which makes all GPUs
//!   drain ready TBs in the same deterministic order).
//! * **Pre-launch gating**: TBs whose group requires launch alignment stay
//!   pending until the engine releases their group (the switch's Group
//!   Sync Table decides when).
//!
//! The simulator is driven by an external engine through a simple
//! time-polling interface ([`GpuSim::next_time`] / [`GpuSim::advance`])
//! and communicates through drained [`GpuEffect`]s.

#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod gpu;
pub mod kernel;

pub use config::{GpuConfig, ReadyPolicy};
pub use cost::KernelCost;
pub use gpu::{GpuEffect, GpuSim};
pub use kernel::{KernelDesc, MemOp, MemOpKind, Phase, SyncKind, TbDesc};
