//! GPU configuration.

use sim_core::{Bandwidth, SimDuration};

/// How the TB scheduler orders the ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadyPolicy {
    /// Hardware default: dispatch in ready-time order. Identical kernels on
    /// different GPUs drift apart because upstream communication completes
    /// at different times on each device.
    #[default]
    Fifo,
    /// CAIS compiler TB grouping: dispatch in deterministic
    /// [`order_key`](crate::kernel::TbDesc::order_key) order, identical on
    /// every GPU, maximizing temporal locality of mergeable requests.
    GroupOrdered,
}

/// Static parameters of one simulated GPU.
///
/// Defaults model the paper's *half-scale* H100 (Sec. IV-B): 66 SMs, with
/// peak math throughput and HBM bandwidth scaled 50% from the H100 SXM
/// datasheet values (989 BF16 TFLOPS, 3.35 TB/s).
#[derive(Debug, Clone)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Concurrently resident TBs per SM (big GEMM tiles occupy most of an
    /// SM's registers/smem, so this is small).
    pub tb_slots_per_sm: usize,
    /// Peak dense math throughput of one SM, in FLOP per nanosecond.
    pub flops_per_ns_per_sm: f64,
    /// Aggregate HBM bandwidth of the device.
    pub hbm_bw: Bandwidth,
    /// Host-side kernel launch overhead applied before any TB of a kernel
    /// becomes ready.
    pub kernel_launch_overhead: SimDuration,
    /// Upper bound of the uniform per-TB dispatch jitter modeling OS and
    /// clock drift across devices.
    pub dispatch_jitter: SimDuration,
    /// Upper bound of the uniform per-kernel launch skew: host/driver
    /// noise staggering the same kernel's launch across GPUs (the
    /// dominant source of the paper's ~35 us uncoordinated request
    /// spread; see Jain et al. [18] on ML-job variability).
    pub launch_skew: SimDuration,
    /// Upper bound of the uniform per-compute-phase duration jitter
    /// (divergence accumulated while a TB executes).
    pub compute_jitter: SimDuration,
    /// Ready-queue ordering policy.
    pub ready_policy: ReadyPolicy,
    /// Compute-phase duration multiplier; `1.0` (the default) is bit-exact
    /// with no scaling. Set above `1.0` by the fault plan's straggler spec
    /// to model one GPU running slow (thermal throttling, clock skew).
    pub compute_scale: f64,
}

impl GpuConfig {
    /// Half-scale H100 used for the paper's main experiments.
    pub fn h100_half() -> GpuConfig {
        GpuConfig {
            sm_count: 66,
            tb_slots_per_sm: 2,
            // 989 TFLOPS / 132 SMs = 7.49 TFLOP/s per SM = 7492 FLOP/ns.
            flops_per_ns_per_sm: 7492.0,
            hbm_bw: Bandwidth::gbps(3350.0 / 2.0),
            kernel_launch_overhead: SimDuration::from_us(3),
            dispatch_jitter: SimDuration::from_us(8),
            launch_skew: SimDuration::from_us(25),
            compute_jitter: SimDuration::from_us(2),
            ready_policy: ReadyPolicy::Fifo,
            compute_scale: 1.0,
        }
    }

    /// Full-scale H100 (Table II validation).
    pub fn h100_full() -> GpuConfig {
        GpuConfig {
            sm_count: 132,
            hbm_bw: Bandwidth::gbps(3350.0),
            ..GpuConfig::h100_half()
        }
    }

    /// Total TB slots on the device.
    pub fn total_slots(&self) -> usize {
        self.sm_count * self.tb_slots_per_sm
    }

    /// Peak device math throughput in FLOP/ns.
    pub fn peak_flops_per_ns(&self) -> f64 {
        self.flops_per_ns_per_sm * self.sm_count as f64
    }

    /// HBM bandwidth available to one SM when all SMs stream concurrently.
    pub fn hbm_bw_per_sm(&self) -> Bandwidth {
        self.hbm_bw.split(self.sm_count)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::h100_half()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_scale_halves_resources() {
        let half = GpuConfig::h100_half();
        let full = GpuConfig::h100_full();
        assert_eq!(full.sm_count, 2 * half.sm_count);
        assert!((full.hbm_bw.as_gbps() - 2.0 * half.hbm_bw.as_gbps()).abs() < 1e-9);
        // Per-SM throughput identical: scaling down removes SMs, not clocks.
        assert_eq!(full.flops_per_ns_per_sm, half.flops_per_ns_per_sm);
    }

    #[test]
    fn derived_quantities() {
        let c = GpuConfig::h100_half();
        assert_eq!(c.total_slots(), 132);
        assert!((c.peak_flops_per_ns() - 66.0 * 7492.0).abs() < 1e-6);
        assert!((c.hbm_bw_per_sm().as_gbps() - 1675.0 / 66.0).abs() < 1e-6);
    }
}
