//! Microbenchmarks of the simulator substrates themselves: event queue,
//! fabric serialization, GPU TB scheduling, the merge unit, and one
//! end-to-end sub-layer per strategy family.

use cais_bench::{black_box, timeit};
use cais_core::{merge::Waiter, CaisStrategy, MergeConfig, MergeUnit};
use cais_engine::{strategy::execute, SystemConfig};
use gpu_sim::{GpuConfig, GpuSim, KernelDesc, TbDesc};
use llm_workload::{sublayer, ModelConfig, SubLayer};
use noc_sim::{Fabric, FabricConfig, FlowClass, Payload, PureRouter};
use sim_core::{Addr, EventQueue, GpuId, PlaneId, SimDuration, SimTime, TbId};

#[derive(Debug, Clone)]
struct Blob(u64);
impl Payload for Blob {
    fn data_bytes(&self) -> u64 {
        self.0
    }
    fn class(&self) -> FlowClass {
        FlowClass::Bulk
    }
}

fn bench_event_queue() {
    timeit("sim_core/event_queue_push_pop_10k", 20, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.push(SimTime::from_ns(i * 7919 % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum)
    });
}

fn bench_fabric() {
    timeit("noc_sim/fabric_1k_packets", 20, || {
        let mut f = Fabric::new(FabricConfig::default_for(8, 4), PureRouter);
        for i in 0..1_000u64 {
            f.inject(
                SimTime::from_ns(i),
                GpuId((i % 8) as u16),
                GpuId(((i + 1) % 8) as u16),
                PlaneId((i % 4) as u16),
                Blob(4096),
            );
        }
        f.run_to_completion();
        black_box(f.drain_deliveries().len())
    });
}

fn bench_gpu_dispatch() {
    timeit("gpu_sim/dispatch_2k_tbs", 20, || {
        let mut gpu = GpuSim::new(GpuConfig::h100_half(), 7);
        let tbs: Vec<TbDesc> = (0..2_000)
            .map(|i| TbDesc::compute_only(TbId(i), i, SimDuration::from_us(1)))
            .collect();
        gpu.launch_kernel(
            SimTime::ZERO,
            KernelDesc::new(sim_core::KernelId(0), "k", tbs),
        );
        while let Some(t) = gpu.next_time() {
            gpu.advance(t);
        }
        black_box(gpu.drain_effects().len())
    });
}

fn bench_merge_unit() {
    timeit("cais_core/merge_unit_4k_requests", 20, || {
        let mut m = MergeUnit::new(MergeConfig::paper_default(8));
        let mut out = Vec::new();
        for i in 0..500u64 {
            let addr = Addr::new(GpuId(0), i * 128);
            for g in 1..8u16 {
                m.on_load_req(
                    SimTime::from_ns(i * 100 + g as u64),
                    PlaneId(0),
                    addr,
                    4096,
                    Waiter {
                        requester: GpuId(g),
                        tb: TbId(g as u64),
                        tile: None,
                    },
                    &mut out,
                );
            }
            m.on_load_resp(
                SimTime::from_ns(i * 100 + 500),
                PlaneId(0),
                addr,
                4096,
                &mut out,
            );
            out.clear();
        }
        black_box(m.stats().loads_merged)
    });
}

fn bench_sublayer_end_to_end() {
    let cfg = SystemConfig::dgx_h100();
    let model = ModelConfig {
        hidden: 1024,
        ffn_hidden: 2816,
        heads: 8,
        seq_len: 768,
        batch: 1,
        ..ModelConfig::llama_7b()
    };
    let dfg = sublayer(&model, cfg.tp(), SubLayer::L1);
    timeit("end_to_end/cais_full_sublayer", 5, || {
        black_box(
            execute(&CaisStrategy::full(), &dfg, &cfg)
                .expect("bench run completes")
                .total,
        )
    });
    timeit("end_to_end/cais_base_sublayer", 5, || {
        black_box(
            execute(&CaisStrategy::base(), &dfg, &cfg)
                .expect("bench run completes")
                .total,
        )
    });
}

fn main() {
    bench_event_queue();
    bench_fabric();
    bench_gpu_dispatch();
    bench_merge_unit();
    bench_sublayer_end_to_end();
}
