//! End-to-end single-run performance tracking (`BENCH_sim.json`).
//!
//! Times one full `SystemSim` run per representative workload — the
//! TP-NVLS baseline, CAIS, and CAIS on a larger model shape — and
//! writes machine-readable results to `BENCH_sim.json` so successive
//! PRs have a perf trajectory to compare against. Invoke with:
//!
//! ```text
//! cargo bench -p cais-bench --bench perf            # paper-scale shapes
//! cargo bench -p cais-bench --bench perf -- --quick # smoke shapes for CI
//! ```

use cais_baselines::BaselineStrategy;
use cais_bench::{timeit, Scale};
use cais_core::CaisStrategy;
use cais_engine::{strategy::execute, ExecReport, Strategy, SystemConfig};
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};
use std::fmt::Write as _;

struct RunResult {
    name: &'static str,
    wall_ms: f64,
    min_ms: f64,
    events: u64,
    events_per_sec: f64,
    queue_peak: u64,
    sim_total_us: f64,
}

fn bench_run(
    name: &'static str,
    strategy: &dyn Strategy,
    model: &ModelConfig,
    mode: TpMode,
    cfg: &SystemConfig,
    iters: u32,
) -> RunResult {
    let dfg = transformer_layer(model, cfg.tp(), mode, Pass::Forward);
    let mut report: Option<ExecReport> = None;
    let stats = timeit(name, iters, || {
        report = Some(execute(strategy, &dfg, cfg).expect("bench run completes"));
    });
    let report = report.expect("at least one timed iteration");
    let wall = stats.mean.as_secs_f64();
    RunResult {
        name,
        wall_ms: wall * 1e3,
        min_ms: stats.min.as_secs_f64() * 1e3,
        events: report.events_processed,
        events_per_sec: if wall > 0.0 {
            report.events_processed as f64 / wall
        } else {
            0.0
        },
        queue_peak: report.queue_peak as u64,
        sim_total_us: report.total.as_ps() as f64 / 1e6,
    }
}

fn render_json(runs: &[RunResult]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"min_ms\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"queue_peak\": {}, \
             \"sim_total_us\": {:.3}}}",
            r.name, r.wall_ms, r.min_ms, r.events, r.events_per_sec, r.queue_peak, r.sim_total_us
        );
        let _ = writeln!(out, "{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, iters) = if quick {
        (Scale::Smoke, 5)
    } else {
        (Scale::Paper, 3)
    };
    let cfg = scale.system();

    let nvls = BaselineStrategy::tp_nvls();
    let cais = CaisStrategy::full();
    let runs = vec![
        bench_run(
            "perf/tp_nvls_mega_gpt_4b",
            &nvls,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::BasicTp,
            &cfg,
            iters,
        ),
        bench_run(
            "perf/cais_full_mega_gpt_4b",
            &cais,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::SeqPar,
            &cfg,
            iters,
        ),
        bench_run(
            "perf/cais_full_llama_7b",
            &cais,
            &scale.model(&ModelConfig::llama_7b()),
            TpMode::SeqPar,
            &cfg,
            iters,
        ),
    ];

    let json = render_json(&runs);
    // Always land at the workspace root regardless of bench CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, &json).expect("write BENCH_sim.json");
    println!("wrote {path}:\n{json}");
}
