//! End-to-end single-run performance tracking (`BENCH_sim.json`).
//!
//! Times one full `SystemSim` run per representative workload — the
//! TP-NVLS baseline, CAIS, and CAIS on a larger model shape — and
//! writes machine-readable results to `BENCH_sim.json` so successive
//! PRs have a perf trajectory to compare against. Invoke with:
//!
//! ```text
//! cargo bench -p cais-bench --bench perf            # measure + write baseline
//! cargo bench -p cais-bench --bench perf -- --quick # smoke shapes for CI
//! cargo bench -p cais-bench --bench perf -- --check # compare vs committed baseline
//! cargo bench -p cais-bench --bench perf -- --check --bless # update after review
//! ```
//!
//! `--check` re-measures and exits nonzero when any run's best-of-N
//! events/sec falls more than 20% (override with the
//! `CAIS_BENCH_CHECK_THRESHOLD` env var, a fraction) below the committed
//! `BENCH_sim.json`. Comparing minima rather than means damps scheduler
//! noise on both sides. `--check` never writes the baseline; pass
//! `--bless` to update it after an intentional change.
//!
//! Built with `--features profiler`, each run also records the
//! per-subsystem wall-time/allocation breakdown from the simulator's
//! self-profiler in a `"profile"` array.

use cais_baselines::BaselineStrategy;
use cais_bench::{timeit, Scale};
use cais_core::CaisStrategy;
use cais_engine::{strategy::execute, ExecReport, Strategy, SystemConfig};
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};
use sim_core::profile::{self, SubsystemReport};
use std::fmt::Write as _;

/// Route every heap allocation through the counting front-end so the
/// profiler's per-subsystem allocation counters see them. Pass-through
/// (and compiled out of the count path) without the `profiler` feature.
#[cfg(feature = "profiler")]
#[global_allocator]
static COUNTING_ALLOC: profile::CountingAllocator = profile::CountingAllocator;

struct RunResult {
    name: &'static str,
    wall_ms: f64,
    min_ms: f64,
    events: u64,
    events_per_sec: f64,
    queue_peak: u64,
    sim_total_us: f64,
    /// Per-subsystem self-profiler rows; empty unless the `profiler`
    /// feature is enabled.
    profile: Vec<SubsystemReport>,
}

impl RunResult {
    /// Best-of-N throughput: total events over the fastest iteration.
    fn best_events_per_sec(&self) -> f64 {
        if self.min_ms > 0.0 {
            self.events as f64 / (self.min_ms / 1e3)
        } else {
            0.0
        }
    }
}

fn bench_run(
    name: &'static str,
    strategy: &dyn Strategy,
    model: &ModelConfig,
    mode: TpMode,
    cfg: &SystemConfig,
    iters: u32,
) -> RunResult {
    let dfg = transformer_layer(model, cfg.tp(), mode, Pass::Forward);
    let mut report: Option<ExecReport> = None;
    profile::reset();
    let stats = timeit(name, iters, || {
        report = Some(execute(strategy, &dfg, cfg).expect("bench run completes"));
    });
    let profile = profile::report();
    let report = report.expect("at least one timed iteration");
    let wall = stats.mean.as_secs_f64();
    RunResult {
        name,
        wall_ms: wall * 1e3,
        min_ms: stats.min.as_secs_f64() * 1e3,
        events: report.events_processed,
        events_per_sec: if wall > 0.0 {
            report.events_processed as f64 / wall
        } else {
            0.0
        },
        queue_peak: report.queue_peak as u64,
        sim_total_us: report.total.as_ps() as f64 / 1e6,
        profile,
    }
}

fn render_json(scale_label: &str, runs: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"scale\": \"{scale_label}\",\n  \"runs\": [");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"min_ms\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"queue_peak\": {}, \
             \"sim_total_us\": {:.3}",
            r.name, r.wall_ms, r.min_ms, r.events, r.events_per_sec, r.queue_peak, r.sim_total_us
        );
        if !r.profile.is_empty() {
            out.push_str(",\n     \"profile\": [");
            for (j, row) in r.profile.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"subsystem\": \"{}\", \"calls\": {}, \"wall_ms\": {:.3}, \
                     \"allocs\": {}, \"alloc_bytes\": {}}}",
                    if j == 0 { "" } else { ", " },
                    row.subsystem,
                    row.calls,
                    row.wall_ns as f64 / 1e6,
                    row.allocs,
                    row.alloc_bytes
                );
            }
            out.push(']');
        }
        out.push('}');
        let _ = writeln!(out, "{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// One baseline entry scraped from `BENCH_sim.json`.
struct BaselineRun {
    name: String,
    events: u64,
    min_ms: f64,
}

/// Extracts the first JSON number after `key` in `line`.
fn scan_number(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start_matches([':', ' ']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the quoted string after `key` in `line`.
fn scan_string(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start_matches([':', ' ', '"']);
    Some(rest[..rest.find('"')?].to_string())
}

/// Hand-rolled scan of the committed baseline (the workspace takes no
/// external dependencies, so no serde): one run object per line, as
/// [`render_json`] writes them. Returns the file's scale label and runs.
fn parse_baseline(text: &str) -> (Option<String>, Vec<BaselineRun>) {
    let mut scale = None;
    let mut runs = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("\"scale\"") || line.contains("\"scale\"") {
            if let Some(s) = scan_string(line, "\"scale\"") {
                scale = Some(s);
            }
        }
        if !line.contains("\"name\"") {
            continue;
        }
        let (Some(name), Some(events), Some(min_ms)) = (
            scan_string(line, "\"name\""),
            scan_number(line, "\"events\""),
            scan_number(line, "\"min_ms\""),
        ) else {
            continue;
        };
        runs.push(BaselineRun {
            name,
            events: events as u64,
            min_ms,
        });
    }
    (scale, runs)
}

/// Compares fresh best-of-N throughput against the committed baseline.
/// Returns `false` when any matched run regressed beyond the threshold.
fn check_runs(runs: &[RunResult], scale_label: &str, path: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else {
        println!("check: no baseline at {path}; nothing to compare (run --bless first)");
        return true;
    };
    let threshold: f64 = std::env::var("CAIS_BENCH_CHECK_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let (base_scale, baseline) = parse_baseline(&text);
    if let Some(bs) = &base_scale {
        if bs != scale_label {
            println!(
                "check: baseline was measured at scale \"{bs}\" but this run used \
                 \"{scale_label}\"; no comparable baseline (re-run at the matching scale)"
            );
            return true;
        }
    }
    let mut regressed: Vec<(&str, f64, f64, f64)> = Vec::new();
    for r in runs {
        let Some(base) = baseline.iter().find(|b| b.name == r.name) else {
            println!("check {:40} no baseline entry; skipped", r.name);
            continue;
        };
        let base_eps = if base.min_ms > 0.0 {
            base.events as f64 / (base.min_ms / 1e3)
        } else {
            continue;
        };
        let fresh_eps = r.best_events_per_sec();
        let ratio = fresh_eps / base_eps;
        let verdict = if ratio + threshold < 1.0 {
            regressed.push((r.name, fresh_eps, base_eps, ratio));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "check {:40} {:>12.0} ev/s vs baseline {:>12.0} ev/s  ({:.2}x)  {}",
            r.name, fresh_eps, base_eps, ratio, verdict
        );
    }
    if !regressed.is_empty() {
        println!(
            "check: {} of {} run(s) regressed on events/sec beyond the {:.0}% \
             threshold (CAIS_BENCH_CHECK_THRESHOLD, default 20%):",
            regressed.len(),
            runs.len(),
            threshold * 100.0
        );
        for (name, fresh_eps, base_eps, ratio) in &regressed {
            println!(
                "check   {name}: measured {fresh_eps:.0} ev/s vs baseline \
                 {base_eps:.0} ev/s = {ratio:.2}x (allowed >= {:.2}x)",
                1.0 - threshold
            );
        }
        println!(
            "check: baseline is {path}; run with --bless to accept an \
             intentional change, or raise CAIS_BENCH_CHECK_THRESHOLD for a \
             noisy host"
        );
    }
    regressed.is_empty()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let bless = args.iter().any(|a| a == "--bless");
    let (scale, scale_label, iters) = if quick {
        (Scale::Smoke, "smoke", 5)
    } else {
        (Scale::Paper, "paper", 3)
    };
    let cfg = scale.system();

    let nvls = BaselineStrategy::tp_nvls();
    let cais = CaisStrategy::full();
    let runs = vec![
        bench_run(
            "perf/tp_nvls_mega_gpt_4b",
            &nvls,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::BasicTp,
            &cfg,
            iters,
        ),
        bench_run(
            "perf/cais_full_mega_gpt_4b",
            &cais,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::SeqPar,
            &cfg,
            iters,
        ),
        bench_run(
            "perf/cais_full_llama_7b",
            &cais,
            &scale.model(&ModelConfig::llama_7b()),
            TpMode::SeqPar,
            &cfg,
            iters,
        ),
    ];

    // Always land at the workspace root regardless of bench CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    if check {
        let ok = check_runs(&runs, scale_label, path);
        if bless {
            let json = render_json(scale_label, &runs);
            std::fs::write(path, &json).expect("write BENCH_sim.json");
            println!("blessed {path}:\n{json}");
        }
        if !ok {
            std::process::exit(1);
        }
    } else {
        let json = render_json(scale_label, &runs);
        std::fs::write(path, &json).expect("write BENCH_sim.json");
        println!("wrote {path}:\n{json}");
    }
}
