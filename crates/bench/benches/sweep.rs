//! Sweep-runner scaling: the same smoke-scale figure manifest executed
//! at increasing worker counts. The tables are byte-identical at every
//! count (asserted here), so this bench reports the pure wall-clock
//! effect of `--jobs`.

use cais_bench::{black_box, timeit, Scale};
use cais_harness::sweep;

fn render_all(tables: &[cais_harness::Table]) -> String {
    tables.iter().map(|t| t.render()).collect()
}

fn main() {
    let reference = render_all(&cais_harness::fig11::run(Scale::Smoke, 1));
    let serial = timeit("sweep/fig11_smoke_jobs=1", 3, || {
        black_box(cais_harness::fig11::run(Scale::Smoke, 1).len())
    });
    for workers in [2, 4, 8] {
        if workers > sweep::default_jobs() {
            println!(
                "(skipping jobs={workers}: only {} hardware threads)",
                sweep::default_jobs()
            );
            continue;
        }
        let tables = cais_harness::fig11::run(Scale::Smoke, workers);
        assert_eq!(
            render_all(&tables),
            reference,
            "tables must be byte-identical at jobs={workers}"
        );
        let parallel = timeit(&format!("sweep/fig11_smoke_jobs={workers}"), 3, || {
            black_box(cais_harness::fig11::run(Scale::Smoke, workers).len())
        });
        println!(
            "  -> speedup over jobs=1: {:.2}x",
            serial.mean.as_secs_f64() / parallel.mean.as_secs_f64()
        );
    }
}
