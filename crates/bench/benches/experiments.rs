//! One Criterion benchmark per paper table/figure.
//!
//! Each target regenerates the experiment at the reduced (smoke) scale:
//! the first invocation prints the table (so `cargo bench` output doubles
//! as a results report), then Criterion times repeated regeneration.
//! Paper-scale tables come from `cargo run --release --bin
//! cais-experiments -- all`.

use cais_harness::runner::Scale;
use cais_harness::Table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use std::time::Duration;

fn bench_experiment(
    c: &mut Criterion,
    name: &'static str,
    f: fn(Scale) -> Vec<Table>,
    once: &'static Once,
) {
    once.call_once(|| {
        for t in f(Scale::Smoke) {
            println!("{}", t.render());
        }
    });
    let mut group = c.benchmark_group("experiments");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(12))
        .warm_up_time(Duration::from_secs(2));
    group.bench_function(name, |b| {
        b.iter(|| {
            let tables = f(Scale::Smoke);
            criterion::black_box(tables.len())
        })
    });
    group.finish();
}

macro_rules! experiment_bench {
    ($fn_name:ident, $name:literal, $path:path) => {
        fn $fn_name(c: &mut Criterion) {
            static ONCE: Once = Once::new();
            bench_experiment(c, $name, $path, &ONCE);
        }
    };
}

experiment_bench!(fig02_scaling, "fig02_scaling", cais_harness::fig02::run);
experiment_bench!(fig11_end_to_end, "fig11_end_to_end", cais_harness::fig11::run);
experiment_bench!(fig12_sublayer, "fig12_sublayer", cais_harness::fig12::run);
experiment_bench!(fig13_merge_table, "fig13_merge_table", cais_harness::fig13::run);
experiment_bench!(fig14_table_sweep, "fig14_table_sweep", cais_harness::fig14::run);
experiment_bench!(fig15_bandwidth, "fig15_bandwidth", cais_harness::fig15::run);
experiment_bench!(fig16_timeline, "fig16_timeline", cais_harness::fig16::run);
experiment_bench!(fig17_scalability, "fig17_scalability", cais_harness::fig17::run);
experiment_bench!(fig18_validation, "fig18_validation", cais_harness::fig18::run);
experiment_bench!(table2_validation, "table2_validation", cais_harness::table2::run);
experiment_bench!(area_overhead, "area_overhead", cais_harness::area::run);
experiment_bench!(ablation_suite, "ablation_suite", cais_harness::ablations::run);

criterion_group!(
    benches,
    fig02_scaling,
    fig11_end_to_end,
    fig12_sublayer,
    fig13_merge_table,
    fig14_table_sweep,
    fig15_bandwidth,
    fig16_timeline,
    fig17_scalability,
    fig18_validation,
    table2_validation,
    area_overhead,
    ablation_suite
);
criterion_main!(benches);
