//! One benchmark target per paper table/figure.
//!
//! Each target regenerates the experiment at the reduced (smoke) scale:
//! the first invocation prints the table (so `cargo bench` output
//! doubles as a results report), then repeated regeneration is timed.
//! Paper-scale tables come from `cargo run --release --bin
//! cais-experiments -- all`.

use cais_bench::{black_box, timeit, Scale};
use cais_harness::Table;

fn bench_experiment(name: &str, f: fn(Scale, usize) -> Vec<Table>) {
    for t in f(Scale::Smoke, 1) {
        println!("{}", t.render());
    }
    timeit(name, 3, || black_box(f(Scale::Smoke, 1).len()));
}

type Target = (&'static str, fn(Scale, usize) -> Vec<Table>);

fn main() {
    let targets: Vec<Target> = vec![
        ("fig02_scaling", cais_harness::fig02::run),
        ("fig11_end_to_end", cais_harness::fig11::run),
        ("fig12_sublayer", cais_harness::fig12::run),
        ("fig13_merge_table", cais_harness::fig13::run),
        ("fig14_table_sweep", cais_harness::fig14::run),
        ("fig15_bandwidth", cais_harness::fig15::run),
        ("fig16_timeline", cais_harness::fig16::run),
        ("fig17_scalability", cais_harness::fig17::run),
        ("fig18_validation", cais_harness::fig18::run),
        ("table2_validation", cais_harness::table2::run),
        ("area_overhead", cais_harness::area::run),
        ("ablation_suite", cais_harness::ablations::run),
    ];
    let filter = std::env::args().nth(1).filter(|a| !a.starts_with("--"));
    for (name, f) in targets {
        if filter.as_deref().is_none_or(|pat| name.contains(pat)) {
            bench_experiment(name, f);
        }
    }
}
