//! Benchmark crate: see `benches/experiments.rs` (one target per paper
//! table/figure, each printing the regenerated table once and then
//! timing the regeneration), `benches/simulator.rs` (microbenches of the
//! event engine, fabric, GPU dispatch and merge unit) and
//! `benches/sweep.rs` (serial vs. parallel sweep-runner scaling).
//!
//! All benches are plain `harness = false` binaries built on the tiny
//! wall-clock [`timeit`] helper — no external benchmarking framework, so
//! the crate builds in offline environments.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p cais-bench
//! ```

pub use cais_harness::runner::Scale;
pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics for one benchmark target.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Number of timed iterations.
    pub iters: u32,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

/// Times `f` over `iters` iterations (after one untimed warm-up call)
/// and prints a one-line summary. Returns the stats so callers can
/// compare targets (e.g. the sweep bench's speedup line).
pub fn timeit<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> BenchStats {
    assert!(iters > 0, "need at least one iteration");
    black_box(f()); // warm-up: page in code/data, fill allocator caches
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        samples.push(t0.elapsed());
    }
    let total: Duration = samples.iter().sum();
    let stats = BenchStats {
        iters,
        mean: total / iters,
        min: *samples.iter().min().expect("iters > 0"),
        max: *samples.iter().max().expect("iters > 0"),
    };
    println!(
        "{name:<40} {:>10.3} ms/iter  (min {:.3}, max {:.3}, n={})",
        stats.mean.as_secs_f64() * 1e3,
        stats.min.as_secs_f64() * 1e3,
        stats.max.as_secs_f64() * 1e3,
        stats.iters,
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeit_reports_sane_stats() {
        let s = timeit("noop", 5, || 1 + 1);
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }
}
