//! Benchmark crate: see `benches/experiments.rs` (one Criterion target
//! per paper table/figure, each printing the regenerated table once and
//! then timing the simulation) and `benches/simulator.rs` (microbenches
//! of the event engine, fabric and merge unit).
//!
//! Run with:
//!
//! ```text
//! cargo bench -p cais-bench
//! ```

/// Re-exported so benches share one place for the reduced benchmark scale.
pub use cais_harness::runner::Scale;
