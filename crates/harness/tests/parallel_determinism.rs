//! The sweep runner's core contract: the worker count is invisible in
//! the output. Tables produced at `--jobs 1` and `--jobs 4` must match
//! bit-for-bit — labels, every f64 cell, rendering, failure lists.

use cais_harness::runner::Scale;
use cais_harness::Table;

fn assert_identical(a: &[Table], b: &[Table]) {
    assert_eq!(a.len(), b.len(), "table count must match");
    for (ta, tb) in a.iter().zip(b) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(ta.columns, tb.columns);
        assert_eq!(ta.failures, tb.failures, "{}: failure lists differ", ta.id);
        assert_eq!(ta.rows.len(), tb.rows.len(), "{}: row count differs", ta.id);
        for ((la, va), (lb, vb)) in ta.rows.iter().zip(&tb.rows) {
            assert_eq!(la, lb, "{}: row labels differ", ta.id);
            // Bit-level comparison: NaN == NaN, and no tolerance — the
            // simulations are deterministic, so parallel assembly must
            // reproduce the serial f64s exactly.
            for (ca, cb) in va.iter().zip(vb) {
                assert_eq!(ca.to_bits(), cb.to_bits(), "{}/{la}: {ca} vs {cb}", ta.id);
            }
        }
        assert_eq!(ta.render(), tb.render(), "{}: rendering differs", ta.id);
    }
}

/// fig14 is the densest smoke sweep (3 sizes × 2 variants = 6
/// simulations) and exercises chunked result pairing.
#[test]
fn fig14_is_identical_across_worker_counts() {
    let serial = cais_harness::fig14::run(Scale::Smoke, 1);
    let parallel = cais_harness::fig14::run(Scale::Smoke, 4);
    assert_identical(&serial, &parallel);
}

/// fig11 exercises the roster × model manifest plus geomean assembly.
#[test]
fn fig11_is_identical_across_worker_counts() {
    let serial = cais_harness::fig11::run(Scale::Smoke, 1);
    let parallel = cais_harness::fig11::run(Scale::Smoke, 4);
    assert_identical(&serial, &parallel);
}

/// The fault-injection sweep must be just as scheduler-independent:
/// identical seeds give byte-identical fault timelines (and therefore
/// identical retry/backoff counters) at every worker count.
#[test]
fn resilience_is_identical_across_worker_counts() {
    let serial = cais_harness::resilience::run(Scale::Smoke, 1);
    let parallel = cais_harness::resilience::run(Scale::Smoke, 8);
    assert_identical(&serial, &parallel);
}
