//! Golden-snapshot regression gate for the figure tables.
//!
//! The performance work on the simulator (dense state tables, segment
//! coalescing, the calendar event queue) must never change what the
//! experiments *compute* — only how fast they compute it. This test
//! pins the rendered smoke-scale output of two representative
//! experiments, byte for byte, against snapshots taken before that
//! work landed:
//!
//! * **fig11** — end-to-end speedup table (the paper's headline
//!   result), exercising CAIS and every baseline interconnect model.
//! * **fig14** — the densest smoke sweep (3 sizes × 2 variants),
//!   exercising the memory-heavy decode path and chunked sweeps.
//!
//! If an intentional model change shifts these numbers, regenerate the
//! snapshots (see `EXPERIMENTS.md`) and justify the diff in the PR.

use cais_harness::runner::Scale;
use cais_harness::Table;

/// Renders tables exactly as `cais-experiments` prints them to stdout:
/// each table's `render()` followed by a newline.
fn rendered(tables: Vec<Table>) -> String {
    let mut out = String::new();
    for t in &tables {
        assert!(
            t.failures.is_empty(),
            "{}: sweep jobs failed: {:?}",
            t.id,
            t.failures
        );
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[test]
fn fig11_smoke_matches_golden() {
    let golden = include_str!("golden/fig11_smoke.txt");
    let got = rendered(cais_harness::fig11::run(Scale::Smoke, 2));
    assert_eq!(
        got, golden,
        "fig11 smoke output drifted from the golden snapshot"
    );
}

/// The self-profiler observes the simulation but must never perturb it:
/// CI runs this test both with and without `--features profiler`, and
/// the rendered tables must match the same golden bytes in both builds.
/// A single-threaded sweep keeps the profiler's thread-local counters on
/// one thread, the configuration the profiler is specified for.
#[test]
fn profiler_feature_preserves_results() {
    let golden = include_str!("golden/fig11_smoke.txt");
    let got = rendered(cais_harness::fig11::run(Scale::Smoke, 1));
    assert_eq!(
        got,
        golden,
        "experiment output drifted with profiler enabled={}",
        sim_core::profile::enabled()
    );
}

#[test]
fn fig14_smoke_matches_golden() {
    let golden = include_str!("golden/fig14_smoke.txt");
    let got = rendered(cais_harness::fig14::run(Scale::Smoke, 2));
    assert_eq!(
        got, golden,
        "fig14 smoke output drifted from the golden snapshot"
    );
}

/// The conservation auditor must be observe-only, exactly like the
/// profiler: with auditing force-enabled at runtime (the `--audit` flag's
/// mechanism) the fig11 and fig14 smoke tables must match the same golden
/// bytes. CI also runs this file under `--features audit`, which enables
/// auditing by default in every run, pinning the cargo-feature path too.
#[test]
fn audit_is_observe_only_on_golden_tables() {
    sim_core::audit::set_force_enabled(true);
    let fig11 = rendered(cais_harness::fig11::run(Scale::Smoke, 1));
    let fig14 = rendered(cais_harness::fig14::run(Scale::Smoke, 1));
    sim_core::audit::set_force_enabled(false);
    assert_eq!(
        fig11,
        include_str!("golden/fig11_smoke.txt"),
        "fig11 output drifted with the audit enabled"
    );
    assert_eq!(
        fig14,
        include_str!("golden/fig14_smoke.txt"),
        "fig14 output drifted with the audit enabled"
    );
}
