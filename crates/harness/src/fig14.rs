//! Fig. 14 — performance sensitivity to merge-table size.
//!
//! LLaMA-7B sub-layer performance as the per-port Merging Table shrinks:
//! with merging-aware TB coordination CAIS stays near peak down to small
//! tables, while the uncoordinated variant degrades rapidly (evicted
//! sessions turn into re-fetches and partial flushes).

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_core::strategies::DEFAULT_PACKET_BYTES;
use cais_core::{CaisStrategy, CoordinationOpts};
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};

/// Converts a paper-axis table size (KB at 128 B entries) into this
/// simulator's byte capacity (same entry count at the coarser packet
/// granularity; see DESIGN.md).
fn paper_kb_to_bytes(kb: u64) -> u64 {
    let entries = kb * 1024 / 128;
    entries * (DEFAULT_PACKET_BYTES + 16)
}

/// Runs the experiment: two sweep jobs (coordinated, uncoordinated) per
/// table size.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let sizes_kb: Vec<u64> = match scale {
        Scale::Paper => vec![5, 10, 20, 40, 80, 160, 320],
        Scale::Smoke => vec![10, 40, 160],
    };
    let model = scale.model(&ModelConfig::llama_7b());
    let cfg = scale.system();

    let mut table = Table::new(
        "fig14",
        "normalized performance vs merge-table size (LLaMA-7B L2)",
        vec!["coordinated".into(), "uncoordinated".into()],
    );

    let manifest: Vec<SweepJob> = sizes_kb
        .iter()
        .flat_map(|&kb| {
            let mk = |coordinated: bool| {
                let (model, cfg) = (model.clone(), cfg.clone());
                let tag = if coordinated { "coord" } else { "uncoord" };
                SweepJob::new(format!("{kb}kb/{tag}"), move || {
                    let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
                    let bytes = paper_kb_to_bytes(kb);
                    let mut strategy = CaisStrategy::full().with_merge_table(Some(bytes));
                    if !coordinated {
                        strategy =
                            strategy.with_coordination("w/o-coord", CoordinationOpts::none());
                    }
                    execute(&strategy, &dfg, &cfg)
                })
            };
            [mk(true), mk(false)]
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig14", &results);
    let coord_times: Vec<f64> = results.iter().step_by(2).map(|r| r.secs()).collect();
    let uncoord_times: Vec<f64> = results
        .iter()
        .skip(1)
        .step_by(2)
        .map(|r| r.secs())
        .collect();
    // Normalize to the best (largest-table coordinated) configuration.
    let best = coord_times
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min)
        .min(uncoord_times.iter().cloned().fold(f64::INFINITY, f64::min));
    for (i, &kb) in sizes_kb.iter().enumerate() {
        table.push(
            format!("{kb} KB"),
            vec![best / coord_times[i], best / uncoord_times[i]],
        );
    }
    table.absorb_failures(&results);
    table.notes = "1.0 = best observed; sizes are on the paper's axis (KB at 128 B \
                   entries), mapped to equal entry counts at this simulator's packet \
                   granularity; paper: coordinated holds near-peak at 40 KB while \
                   uncoordinated collapses on small tables"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_well_formed() {
        // The coordinated-vs-uncoordinated performance gap only opens at
        // paper scale (the smoke workload hides all communication under
        // compute, so table pressure never materializes); the shape
        // assertion lives in EXPERIMENTS.md against the paper-scale run.
        // Here we pin the sweep mechanics: all points exist, are
        // normalized to (0, 1], and the best point is 1.0.
        let t = &run(Scale::Smoke, 1)[0];
        assert_eq!(t.rows.len(), 3);
        let mut best: f64 = 0.0;
        for (label, v) in &t.rows {
            for x in v {
                assert!(*x > 0.0 && *x <= 1.0 + 1e-9, "{label}: {x}");
                best = best.max(*x);
            }
        }
        assert!((best - 1.0).abs() < 1e-9);
    }
}
