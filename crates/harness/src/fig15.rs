//! Fig. 15 — average bandwidth utilization per sub-layer.
//!
//! CAIS-Base vs. CAIS-Partial (graph-level optimizer, no traffic
//! control) vs. full CAIS, averaged across all links and both directions.
//! Paper averages: 62.4% → 84.7% → 90.2%.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};

/// The three CAIS variants compared, constructed by index so job
/// closures can build their own instance on the worker thread.
fn variant(i: usize) -> (&'static str, CaisStrategy) {
    match i {
        0 => ("CAIS-Base", CaisStrategy::base()),
        1 => ("CAIS-Partial", CaisStrategy::partial()),
        _ => ("CAIS", CaisStrategy::full()),
    }
}

/// Runs the experiment: one sweep job per sub-layer × CAIS variant.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1, SubLayer::L2],
    };
    let cfg = scale.system();
    let mut table = Table::new(
        "fig15",
        "mean link bandwidth utilization per sub-layer (%)",
        vec!["CAIS-Base".into(), "CAIS-Partial".into(), "CAIS".into()],
    );
    let manifest: Vec<SweepJob> = sublayers
        .iter()
        .flat_map(|&which| (0..3).map(move |i| (which, i)).collect::<Vec<_>>())
        .map(|(which, i)| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(format!("{}/{}", variant(i).0, which.label()), move || {
                let dfg = sublayer(&model, cfg.tp(), which);
                execute(&variant(i).1, &dfg, &cfg)
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig15", &results);
    let mut sums = [0.0f64; 3];
    for (triple, which) in results.chunks(3).zip(&sublayers) {
        let mut row = Vec::with_capacity(3);
        for (i, res) in triple.iter().enumerate() {
            let util = res
                .report()
                .map(|r| r.fabric.mean_utilization() * 100.0)
                .unwrap_or(f64::NAN);
            sums[i] += util;
            row.push(util);
        }
        table.push(which.label(), row);
    }
    table.absorb_failures(&results);
    let n = sublayers.len() as f64;
    table.push("average", sums.iter().map(|s| s / n).collect());
    table.notes = "paper averages: 62.4 / 84.7 / 90.2".into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_and_traffic_control_raise_utilization() {
        let t = &run(Scale::Smoke, 1)[0];
        let avg = &t.rows.last().unwrap().1;
        assert!(
            avg[2] > avg[0],
            "full CAIS ({:.1}%) must beat CAIS-Base ({:.1}%)",
            avg[2],
            avg[0]
        );
    }
}
