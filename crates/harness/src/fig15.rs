//! Fig. 15 — average bandwidth utilization per sub-layer.
//!
//! CAIS-Base vs. CAIS-Partial (graph-level optimizer, no traffic
//! control) vs. full CAIS, averaged across all links and both directions.
//! Paper averages: 62.4% → 84.7% → 90.2%.

use crate::runner::{Scale, Table};
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1, SubLayer::L2],
    };
    let cfg = scale.system();
    let mut table = Table::new(
        "fig15",
        "mean link bandwidth utilization per sub-layer (%)",
        vec!["CAIS-Base".into(), "CAIS-Partial".into(), "CAIS".into()],
    );
    let mut sums = [0.0f64; 3];
    for which in &sublayers {
        let dfg = sublayer(&model, cfg.tp(), *which);
        let mut row = Vec::with_capacity(3);
        for (i, strategy) in [
            CaisStrategy::base(),
            CaisStrategy::partial(),
            CaisStrategy::full(),
        ]
        .iter()
        .enumerate()
        {
            let report = execute(strategy, &dfg, &cfg);
            let util = report.fabric.mean_utilization() * 100.0;
            sums[i] += util;
            row.push(util);
        }
        table.push(which.label(), row);
    }
    let n = sublayers.len() as f64;
    table.push("average", sums.iter().map(|s| s / n).collect());
    table.notes = "paper averages: 62.4 / 84.7 / 90.2".into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_and_traffic_control_raise_utilization() {
        let t = &run(Scale::Smoke)[0];
        let avg = &t.rows.last().unwrap().1;
        assert!(
            avg[2] > avg[0],
            "full CAIS ({:.1}%) must beat CAIS-Base ({:.1}%)",
            avg[2],
            avg[0]
        );
    }
}
