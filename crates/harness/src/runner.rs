//! Shared experiment plumbing: scales, strategy roster, result tables.

use crate::sweep::{JobResult, SweepJob};
use cais_baselines::{BaselineStrategy, LadmStrategy};
use cais_core::CaisStrategy;
use cais_engine::{strategy::execute, ExecReport, SimError, Strategy, SystemConfig};
use llm_workload::{transformer_layer, Dfg, ModelConfig, Pass, TpMode};
use std::fmt::Write as _;

/// Experiment size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's configuration (Table I models on 8 half-scale H100s).
    Paper,
    /// Reduced dimensions for fast smoke runs/tests.
    Smoke,
}

impl Scale {
    /// Scales a Table-I model down for smoke runs.
    pub fn model(self, base: &ModelConfig) -> ModelConfig {
        match self {
            Scale::Paper => base.clone(),
            Scale::Smoke => ModelConfig {
                hidden: (base.hidden / 4).max(1024),
                ffn_hidden: (base.ffn_hidden / 4).max(2048),
                heads: (base.heads / 4).max(8),
                seq_len: (base.seq_len / 4).max(256),
                batch: (base.batch / 2).max(1),
                ..base.clone()
            },
        }
    }

    /// The base system configuration for this scale.
    pub fn system(self) -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        if self == Scale::Smoke {
            cfg.coll_chunk_bytes = 256 * 1024;
        }
        cfg
    }
}

/// A printable experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Short id ("fig11", "table2", ...).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Column headers (after the row label).
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes (paper reference values, caveats).
    pub notes: String,
    /// Sweep jobs that returned a typed [`SimError`] or panicked
    /// ("label: message"). Rows derived from a failed job carry NaN
    /// cells; the CLI exits nonzero when any table has failures.
    pub failures: Vec<String>,
    /// Sweep jobs killed by the per-job wall-clock watchdog, rendered
    /// separately from failures so a hung run is distinguishable from a
    /// diverged one. Also makes the CLI exit nonzero.
    pub timeouts: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            id,
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: String::new(),
            failures: Vec::new(),
            timeouts: Vec::new(),
        }
    }

    /// Records every failed job from a sweep batch so the rendered table
    /// explains its NaN cells, routing watchdog timeouts to their own
    /// section. Results are scanned in manifest order, so both lists are
    /// as deterministic as the rows.
    pub fn absorb_failures(&mut self, results: &[JobResult]) {
        for r in results {
            if let Some(f) = r.failure() {
                let line = format!("{}: {}", r.label, f.message);
                match f.kind {
                    crate::sweep::FailKind::Timeout => self.timeouts.push(line),
                    crate::sweep::FailKind::Failed => self.failures.push(line),
                }
            }
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), values));
    }

    /// Looks up a cell by row label and column name.
    pub fn cell(&self, row: &str, col: &str) -> Option<f64> {
        let ci = self.columns.iter().position(|c| c == col)?;
        self.rows.iter().find(|(l, _)| l == row).map(|(_, v)| v[ci])
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let _ = write!(out, "{:label_w$}", "");
        for c in &self.columns {
            let _ = write!(out, " {c:>12}");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for v in values {
                if v.abs() >= 1000.0 {
                    let _ = write!(out, " {v:>12.0}");
                } else {
                    let _ = write!(out, " {v:>12.3}");
                }
            }
            let _ = writeln!(out);
        }
        for f in &self.failures {
            let _ = writeln!(out, "  FAILED {f}");
        }
        for t in &self.timeouts {
            let _ = writeln!(out, "  TIMEOUT {t}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out, "  note: {}", self.notes);
        }
        out
    }
}

/// A named strategy plus the TP flavour of the graph it runs on.
pub struct Entry {
    /// The strategy.
    pub strategy: Box<dyn Strategy>,
    /// Which parallelism layout its graphs use.
    pub mode: TpMode,
}

impl Entry {
    fn new(strategy: impl Strategy + 'static, mode: TpMode) -> Entry {
        Entry {
            strategy: Box::new(strategy),
            mode,
        }
    }
}

/// The Fig. 11/12 roster: nine baselines, the CAIS-Base ablation, and
/// CAIS. TP-NVLS and the GEMM+AllReduce pipeliners run Basic TP graphs;
/// sequence-parallel systems run SP graphs — each system gets the layout
/// it was designed for, as in the paper.
pub fn roster() -> Vec<Entry> {
    vec![
        Entry::new(BaselineStrategy::tp_nvls(), TpMode::BasicTp),
        Entry::new(BaselineStrategy::sp_nvls(), TpMode::SeqPar),
        Entry::new(BaselineStrategy::coconet(), TpMode::BasicTp),
        Entry::new(BaselineStrategy::fuselib(), TpMode::BasicTp),
        Entry::new(BaselineStrategy::t3(), TpMode::SeqPar),
        Entry::new(BaselineStrategy::coconet_nvls(), TpMode::BasicTp),
        Entry::new(BaselineStrategy::fuselib_nvls(), TpMode::BasicTp),
        Entry::new(BaselineStrategy::t3_nvls(), TpMode::SeqPar),
        Entry::new(LadmStrategy::new(), TpMode::SeqPar),
        Entry::new(CaisStrategy::base(), TpMode::SeqPar),
        Entry::new(CaisStrategy::full(), TpMode::SeqPar),
    ]
}

/// Executes one strategy on a transformer layer of `model`.
///
/// # Errors
///
/// Propagates the run's typed [`SimError`].
pub fn run_layer(
    entry: &Entry,
    model: &ModelConfig,
    cfg: &SystemConfig,
    pass: Pass,
) -> Result<ExecReport, SimError> {
    let dfg = transformer_layer(model, cfg.tp(), entry.mode, pass);
    execute(entry.strategy.as_ref(), &dfg, cfg)
}

/// Executes one strategy on an arbitrary graph.
///
/// # Errors
///
/// Propagates the run's typed [`SimError`].
pub fn run_graph(entry: &Entry, dfg: &Dfg, cfg: &SystemConfig) -> Result<ExecReport, SimError> {
    execute(entry.strategy.as_ref(), dfg, cfg)
}

/// Display name of roster entry `si`.
///
/// # Panics
///
/// Panics with a descriptive message if `si` is out of roster range (a
/// manifest-construction bug, not a runtime condition).
pub fn roster_name(si: usize) -> String {
    let r = roster();
    let n = r.len();
    r.into_iter()
        .nth(si)
        .unwrap_or_else(|| panic!("roster index {si} out of range (roster has {n} entries)"))
        .strategy
        .name()
        .to_string()
}

/// A sweep job running roster entry `si` on one transformer layer of
/// `model`. The entry (with its interior lowering state) and the graph
/// are constructed inside the closure, on the worker thread that claims
/// the job.
pub fn layer_job(si: usize, model: &ModelConfig, cfg: &SystemConfig, pass: Pass) -> SweepJob {
    let label = format!("{}/{}/{pass:?}", roster_name(si), model.name);
    let (model, cfg) = (model.clone(), cfg.clone());
    SweepJob::new(label, move || {
        let entry = roster().swap_remove(si);
        run_layer(&entry, &model, &cfg, pass)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_cell() {
        let mut t = Table::new("t", "demo", vec!["a".into(), "b".into()]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![3.0, 4.5]);
        assert_eq!(t.cell("row2", "b"), Some(4.5));
        assert_eq!(t.cell("nope", "b"), None);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("row1"));
    }

    #[test]
    fn failed_jobs_render_and_keep_nan_rows() {
        use crate::sweep::{run_jobs, SweepJob};
        let results = run_jobs(
            vec![SweepJob::new("bad-config", || panic!("deadline exceeded"))],
            2,
        );
        let mut t = Table::new("t", "demo", vec!["secs".into()]);
        t.push("bad-config", vec![results[0].secs()]);
        t.absorb_failures(&results);
        assert_eq!(t.failures, vec!["bad-config: deadline exceeded"]);
        assert!(t.rows[0].1[0].is_nan());
        let s = t.render();
        assert!(s.contains("FAILED bad-config: deadline exceeded"), "{s}");
        assert!(s.contains("NaN"), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", vec!["a".into()]);
        t.push("r", vec![1.0, 2.0]);
    }

    #[test]
    fn roster_has_eleven_entries() {
        let r = roster();
        assert_eq!(r.len(), 11);
        assert_eq!(r[0].strategy.name(), "TP-NVLS");
        assert_eq!(r[10].strategy.name(), "CAIS");
    }

    #[test]
    fn smoke_scale_shrinks_models() {
        let base = ModelConfig::llama_7b();
        let small = Scale::Smoke.model(&base);
        assert!(small.hidden < base.hidden);
        assert!(small.hidden.is_multiple_of(8), "TP divisibility preserved");
    }
}
