//! Sec. V-D — hardware overhead at TSMC 12 nm.

use crate::runner::{Scale, Table};
use cais_core::area::paper_estimate;

/// Runs the area model. Analytic only — no simulations, so the job
/// count is unused.
pub fn run(_scale: Scale, _jobs: usize) -> Vec<Table> {
    let r = paper_estimate();
    let mut table = Table::new(
        "area",
        "CAIS hardware overhead (12 nm analytic model)",
        vec!["mm2".into(), "fraction_of_die_%".into()],
    );
    table.push(
        "switch (merge unit + sync table)",
        vec![r.switch_mm2, r.switch_fraction * 100.0],
    );
    table.push(
        "GPU (synchronizer)",
        vec![r.gpu_mm2, r.gpu_fraction * 100.0],
    );
    table.notes = "paper: ~0.50 mm2 per switch (<1% of the NVSwitch die), ~0.019 mm2 per \
                   GPU (<0.01% of H100)"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_below_one_percent() {
        let t = &run(Scale::Paper, 1)[0];
        assert!(t.rows[0].1[1] < 1.0);
        assert!(t.rows[1].1[1] < 0.01);
    }
}
