//! Fig. 12 — sub-layer performance speedup (L1–L4).
//!
//! The four GEMM-RS → LN → AG-GEMM sub-layers are the graph-level
//! optimizer's home turf; paper geomeans run slightly above the
//! end-to-end numbers (e.g. 1.39x over TP-NVLS, 1.64x over T3, 7.9x
//! over LADM).

use crate::runner::{roster, roster_name, run_graph, Scale, Table};
use crate::sweep::{self, SweepJob};
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::stats::geomean;

/// Runs the experiment: one sweep job per strategy × sub-layer.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1, SubLayer::L2],
    };
    let mut columns: Vec<String> = sublayers.iter().map(|s| s.label().to_string()).collect();
    columns.push("geomean".into());
    let mut table = Table::new(
        "fig12",
        format!("CAIS sub-layer speedup on {}", model.name),
        columns,
    );

    let cfg = scale.system();
    let n_entries = roster().len();
    let manifest: Vec<SweepJob> = (0..n_entries)
        .flat_map(|si| sublayers.iter().map(move |w| (si, *w)))
        .map(|(si, which)| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(
                format!("{}/{}", roster_name(si), which.label()),
                move || {
                    let entry = roster().swap_remove(si);
                    let dfg = sublayer(&model, cfg.tp(), which);
                    run_graph(&entry, &dfg, &cfg)
                },
            )
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig12", &results);
    let times: Vec<Vec<f64>> = results
        .chunks(sublayers.len())
        .map(|row| row.iter().map(|r| r.secs()).collect())
        .collect();
    let cais_idx = n_entries - 1;
    for (si, strat_times) in times.iter().enumerate() {
        let mut speedups: Vec<f64> = (0..sublayers.len())
            .map(|li| strat_times[li] / times[cais_idx][li])
            .collect();
        speedups.push(geomean(&speedups));
        table.push(format!("vs {}", roster_name(si)), speedups);
    }
    table.absorb_failures(&results);
    table.notes =
        "all systems run the same RS+LN+AG sub-layer graph; paper geomeans: TP-NVLS 1.39, \
         SP-NVLS 1.91, T3 1.64, T3-NVLS 1.47, LADM 7.9, CAIS-Base ~1.47"
            .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sublayer_speedups_favor_cais() {
        let tables = run(Scale::Smoke, 1);
        let t = &tables[0];
        for (label, values) in &t.rows {
            if label != "vs CAIS" {
                let geo = *values.last().unwrap();
                assert!(geo > 0.95, "{label}: {geo:.3}");
            }
        }
        // The stripped-down CAIS-Base must clearly trail full CAIS here.
        let base = t.cell("vs CAIS-Base", "geomean").unwrap();
        assert!(base > 1.05, "CAIS-Base geomean {base:.3}");
    }
}
