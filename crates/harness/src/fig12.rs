//! Fig. 12 — sub-layer performance speedup (L1–L4).
//!
//! The four GEMM-RS → LN → AG-GEMM sub-layers are the graph-level
//! optimizer's home turf; paper geomeans run slightly above the
//! end-to-end numbers (e.g. 1.39x over TP-NVLS, 1.64x over T3, 7.9x
//! over LADM).

use crate::runner::{roster, run_graph, Scale, Table};
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::stats::geomean;

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1, SubLayer::L2],
    };
    let mut columns: Vec<String> = sublayers.iter().map(|s| s.label().to_string()).collect();
    columns.push("geomean".into());
    let mut table = Table::new(
        "fig12",
        format!("CAIS sub-layer speedup on {}", model.name),
        columns,
    );

    let cfg = scale.system();
    let entries = roster();
    let mut times = vec![vec![0.0f64; sublayers.len()]; entries.len()];
    for (si, entry) in entries.iter().enumerate() {
        for (li, which) in sublayers.iter().enumerate() {
            let dfg = sublayer(&model, cfg.tp(), *which);
            let report = run_graph(entry, &dfg, &cfg);
            times[si][li] = report.total.as_secs_f64();
        }
    }
    let cais_idx = entries.len() - 1;
    for (si, entry) in entries.iter().enumerate() {
        let mut speedups: Vec<f64> = (0..sublayers.len())
            .map(|li| times[si][li] / times[cais_idx][li])
            .collect();
        speedups.push(geomean(&speedups));
        table.push(format!("vs {}", entry.strategy.name()), speedups);
    }
    table.notes =
        "all systems run the same RS+LN+AG sub-layer graph; paper geomeans: TP-NVLS 1.39, \
         SP-NVLS 1.91, T3 1.64, T3-NVLS 1.47, LADM 7.9, CAIS-Base ~1.47"
            .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sublayer_speedups_favor_cais() {
        let tables = run(Scale::Smoke);
        let t = &tables[0];
        for (label, values) in &t.rows {
            if label != "vs CAIS" {
                let geo = *values.last().unwrap();
                assert!(geo > 0.95, "{label}: {geo:.3}");
            }
        }
        // The stripped-down CAIS-Base must clearly trail full CAIS here.
        let base = t.cell("vs CAIS-Base", "geomean").unwrap();
        assert!(base > 1.05, "CAIS-Base geomean {base:.3}");
    }
}
