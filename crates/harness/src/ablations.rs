//! Design-choice ablations beyond the paper's figures.
//!
//! DESIGN.md calls out three lowering/architecture choices worth
//! sensitivity analysis:
//!
//! 1. **`red.cais` packet granularity** — how finely reduction tiles are
//!    split into mergeable switch packets (the paper's hardware works on
//!    128 B lines; our simulator defaults to 8 KB);
//! 2. **throttle credits** — the per-(GPU, plane) outstanding-request cap
//!    that backs TB-aware request throttling;
//! 3. **cross-layer fusion** — whether the graph-level optimizer's
//!    ability to fuse across *layer* boundaries (the L2/L4 patterns)
//!    materializes as end-to-end gains on a multi-layer stack.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use llm_workload::{sublayer, transformer_stack, ModelConfig, Pass, SubLayer, TpMode};

/// Runs all three ablations.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    vec![
        run_packet_size(scale, jobs),
        run_credits(scale, jobs),
        run_multi_layer(scale, jobs),
    ]
}

fn ablation_model(scale: Scale) -> ModelConfig {
    match scale {
        Scale::Paper => ModelConfig::llama_7b(),
        Scale::Smoke => ModelConfig {
            hidden: 2048,
            ffn_hidden: 5632,
            heads: 16,
            seq_len: 1536,
            batch: 2,
            ..ModelConfig::llama_7b()
        },
    }
}

/// Ablation 1: reduction packet granularity. One sweep job per size.
pub fn run_packet_size(scale: Scale, jobs: usize) -> Table {
    let model = ablation_model(scale);
    let cfg = scale.system();
    let sizes: Vec<u64> = match scale {
        Scale::Paper => vec![2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10],
        Scale::Smoke => vec![4 << 10, 8 << 10, 32 << 10],
    };
    let mut table = Table::new(
        "abl-packet",
        "CAIS sensitivity to red.cais packet granularity (L2)",
        vec!["time_us".into(), "peak_table_kb".into()],
    );
    let manifest: Vec<SweepJob> = sizes
        .iter()
        .map(|&bytes| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(format!("packet/{}kb", bytes >> 10), move || {
                let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
                execute(
                    &CaisStrategy::full()
                        .with_packet_bytes(bytes)
                        .with_merge_table(None),
                    &dfg,
                    &cfg,
                )
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("abl-packet", &results);
    for (res, &bytes) in results.iter().zip(&sizes) {
        let peak = res
            .report()
            .map(|r| r.stat("cais.peak_port_occupancy").unwrap_or(0.0) / 1024.0)
            .unwrap_or(f64::NAN);
        let us = res
            .report()
            .map(|r| r.total.as_us_f64())
            .unwrap_or(f64::NAN);
        table.push(format!("{} KB", bytes >> 10), vec![us, peak]);
    }
    table.absorb_failures(&results);
    table.notes = "finer packets shrink the required merge table (shorter session \
                   lifetimes) at the cost of more switch transactions"
        .into();
    table
}

/// Ablation 2: throttle credits. One sweep job per credit setting.
pub fn run_credits(scale: Scale, jobs: usize) -> Table {
    let model = ablation_model(scale);
    let cfg = scale.system();
    let settings: Vec<(String, Option<usize>)> = vec![
        ("8".into(), Some(8)),
        ("16".into(), Some(16)),
        ("64 (default)".into(), Some(64)),
        ("256".into(), Some(256)),
        ("unthrottled".into(), None),
    ];
    let mut table = Table::new(
        "abl-credits",
        "CAIS sensitivity to throttle credits per (GPU, plane) (L2, 40 KB table)",
        vec!["time_us".into(), "evictions".into()],
    );
    let manifest: Vec<SweepJob> = settings
        .iter()
        .map(|(label, credits)| {
            let (model, cfg, credits) = (model.clone(), cfg.clone(), *credits);
            SweepJob::new(format!("credits/{label}"), move || {
                let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
                execute(&CaisStrategy::full().with_credits(credits), &dfg, &cfg)
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("abl-credits", &results);
    for (res, (label, _)) in results.iter().zip(&settings) {
        let (us, evictions) = match res.report() {
            Some(r) => (
                r.total.as_us_f64(),
                r.stat("cais.evictions_lru").unwrap_or(0.0)
                    + r.stat("cais.evictions_timeout").unwrap_or(0.0),
            ),
            None => (f64::NAN, f64::NAN),
        };
        table.push(label.clone(), vec![us, evictions]);
    }
    table.absorb_failures(&results);
    table.notes = "too few credits starve the links; too many overflow the table \
                   (evictions) when requests burst"
        .into();
    table
}

/// Ablation 3: cross-layer fusion on a 2-layer stack. Three sweep jobs:
/// the two stack strategies plus the single-layer reference.
pub fn run_multi_layer(scale: Scale, jobs: usize) -> Table {
    let model = ablation_model(scale);
    let cfg = scale.system();
    let mut table = Table::new(
        "abl-stack",
        "cross-layer fusion: 2-layer stack vs 2x single layer",
        vec!["time_us".into()],
    );
    type StackCase = (&'static str, fn() -> CaisStrategy, u64);
    let cases: [StackCase; 3] = [
        ("CAIS stack", CaisStrategy::full, 2),
        ("CAIS-Base stack", CaisStrategy::base, 2),
        ("2 x CAIS single layer", CaisStrategy::full, 1),
    ];
    let manifest: Vec<SweepJob> = cases
        .iter()
        .map(|&(label, make, layers)| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(label, move || {
                let dfg =
                    transformer_stack(&model, cfg.tp(), TpMode::SeqPar, Pass::Forward, layers);
                execute(&make(), &dfg, &cfg)
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("abl-stack", &results);
    for (res, &(label, _, layers)) in results.iter().zip(&cases) {
        let mut us = res
            .report()
            .map(|r| r.total.as_us_f64())
            .unwrap_or(f64::NAN);
        if layers == 1 {
            us *= 2.0; // the single-layer run stands in for two isolated layers
        }
        table.push(label, vec![us]);
    }
    table.absorb_failures(&results);
    table.notes = "the stack under CAIS should beat two isolated layers: the layer \
                   boundary is an L2-shaped RS+LN+AG chain the optimizer pipelines"
        .into();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_packets_shrink_the_required_table() {
        let t = run_packet_size(Scale::Smoke, 1);
        let first = &t.rows.first().unwrap(); // 4 KB
        let last = &t.rows.last().unwrap(); // 32 KB
        assert!(
            first.1[1] < last.1[1],
            "4 KB packets ({:.0} KB table) should need less than 32 KB packets ({:.0} KB)",
            first.1[1],
            last.1[1]
        );
    }

    #[test]
    fn starvation_credits_hurt() {
        let t = run_credits(Scale::Smoke, 1);
        let tight = t.rows[0].1[0];
        let default = t.rows[2].1[0];
        assert!(
            tight >= default * 0.95,
            "8 credits ({tight:.0} us) should not beat the default ({default:.0} us) meaningfully"
        );
    }

    #[test]
    fn stack_fusion_does_not_regress() {
        let t = run_multi_layer(Scale::Smoke, 1);
        let stack = t.rows[0].1[0];
        let two_singles = t.rows[2].1[0];
        assert!(
            stack <= two_singles * 1.05,
            "fused stack {stack:.0} us vs 2x single {two_singles:.0} us"
        );
    }
}
