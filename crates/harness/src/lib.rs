//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec. V) on the simulated DGX-H100.
//!
//! One module per experiment; each exposes `run(scale, jobs) -> Vec<Table>`,
//! describing its sweep as a flat job manifest executed by the
//! deterministic parallel runner in [`sweep`]:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig02`] | Fig. 2 — compute vs. communication time scaling with GPU count |
//! | [`fig11`] | Fig. 11 — end-to-end speedup, training + inference, 3 models × 11 systems |
//! | [`fig12`] | Fig. 12 — sub-layer (L1–L4) speedup |
//! | [`fig13`] | Fig. 13 — required merge-table size and coordination ablation |
//! | [`fig14`] | Fig. 14 — performance sensitivity to merge-table size |
//! | [`fig15`] | Fig. 15 — average bandwidth utilization per sub-layer |
//! | [`fig16`] | Fig. 16 — bandwidth utilization over time (L2, LLaMA-7B) |
//! | [`fig17`] | Fig. 17 — scalability with increasing GPU count |
//! | [`fig18`] | Fig. 18 — NVLS simulation validation vs. an NCCL-style reference |
//! | [`table2`] | Table II — full- vs. half-scale validation |
//! | [`area`] | Sec. V-D — hardware overhead |
//! | [`ablations`] | extra design-choice sensitivity studies (packet size, credits, cross-layer fusion) |
//! | [`sensitivity`] | fabric-bandwidth sweep validating the calibration story |
//! | [`resilience`] | robustness study — packet-drop/retransmission and link-degradation sweeps |
//!
//! Run everything from the CLI: `cargo run --release --bin cais-experiments -- all`.
//! Pass `--smoke` for reduced sizes (used by the test suite) and
//! `--jobs N` to bound the worker pool (default: available parallelism;
//! the tables are byte-identical at every worker count).

#![warn(missing_docs)]

pub mod ablations;
pub mod area;
pub mod chaos;
pub mod fig02;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod profile;
pub mod resilience;
pub mod runner;
pub mod sensitivity;
pub mod sweep;
pub mod table2;

pub use runner::{Scale, Table};
pub use sweep::{JobResult, SweepJob};
