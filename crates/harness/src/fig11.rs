//! Fig. 11 — end-to-end model speedup across training and inference.
//!
//! CAIS's speedup over every baseline for the three Table-I models, on
//! both the communication-heavy prefill (inference) and one training
//! step of a transformer layer. The paper's headline geomeans: 1.38x
//! over TP-NVLS, ~1.9x over SP-NVLS/CoCoNet/FuseLib, 1.61x over T3,
//! 1.2-1.25x over the NVLS-enhanced overlappers, 1.45x over T3-NVLS,
//! ~7.6x over LADM, and ~1.45x over CAIS-Base.

use crate::runner::{layer_job, roster, roster_name, Scale, Table};
use crate::sweep;
use llm_workload::{ModelConfig, Pass};
use sim_core::stats::geomean;

/// Runs the experiment. One table per phase (inference, training); the
/// sweep manifest is the full strategy × model cross product per phase.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let models: Vec<ModelConfig> = match scale {
        Scale::Paper => ModelConfig::table1(),
        Scale::Smoke => vec![Scale::Smoke.model(&ModelConfig::mega_gpt_4b())],
    };
    let passes: Vec<(&str, Pass)> = match scale {
        Scale::Paper => vec![("inference", Pass::Forward), ("training", Pass::Training)],
        Scale::Smoke => vec![("inference", Pass::Forward)],
    };

    let mut tables = Vec::new();
    for (phase, pass) in passes {
        let mut columns: Vec<String> = models.iter().map(|m| m.name.to_string()).collect();
        columns.push("geomean".into());
        let mut table = Table::new(
            "fig11",
            format!("CAIS end-to-end speedup, {phase}"),
            columns,
        );
        // Measure every strategy on every model, one sweep job each.
        let cfg = scale.system();
        let n_entries = roster().len();
        let manifest: Vec<_> = (0..n_entries)
            .flat_map(|si| models.iter().map(move |m| (si, m)))
            .map(|(si, model)| layer_job(si, model, &cfg, pass))
            .collect();
        let results = sweep::run_jobs(manifest, jobs);
        sweep::log_timing("fig11", &results);
        let times: Vec<Vec<f64>> = results
            .chunks(models.len())
            .map(|row| row.iter().map(|r| r.secs()).collect())
            .collect();
        let cais_idx = n_entries - 1;
        for (si, strat_times) in times.iter().enumerate() {
            let mut speedups: Vec<f64> = (0..models.len())
                .map(|mi| strat_times[mi] / times[cais_idx][mi])
                .collect();
            speedups.push(geomean(&speedups));
            table.push(format!("vs {}", roster_name(si)), speedups);
        }
        table.absorb_failures(&results);
        table.notes = "values are CAIS time advantage over each system (>1 = CAIS faster); \
                       paper geomeans: TP-NVLS 1.38, SP-NVLS 1.89, CoCoNet 1.98, FuseLib 1.90, \
                       T3 1.61, CoCoNet-NVLS 1.25, FuseLib-NVLS 1.21, T3-NVLS 1.45, LADM 7.6, \
                       CAIS-Base ~1.45"
            .into();
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cais_beats_every_baseline_in_smoke_run() {
        let tables = run(Scale::Smoke, 1);
        let t = &tables[0];
        for (label, values) in &t.rows {
            let geo = *values.last().unwrap();
            if label == "vs CAIS" {
                assert!((geo - 1.0).abs() < 1e-9);
            } else {
                assert!(geo > 1.0, "{label} should trail CAIS, got {geo:.3}");
            }
        }
    }
}
