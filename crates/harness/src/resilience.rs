//! Resilience — fault-injection sweep (robustness study, not a paper
//! figure).
//!
//! Two tables over the LLaMA-7B L2 sub-layer, CAIS vs. TP-NVLS:
//!
//! * **resil-drop** — per-packet drop-rate sweep. Every dropped packet is
//!   detected at its would-be delivery instant (NACK/timeout round) and
//!   retransmitted after bounded exponential backoff, so runs complete at
//!   every rate; the table reports step time plus the CAIS run's
//!   retry/backoff counters from the fabric's
//!   [`ResilienceCounters`](noc_sim::ResilienceCounters).
//! * **resil-degrade** — periodic link bandwidth-degradation windows at
//!   increasing severity factors (`x1.0` = fault-free baseline).
//!
//! All fault timelines derive from [`FAULT_SEED`], so the tables are
//! byte-identical across `--jobs` settings and hosts. The zero-fault rows
//! use `FaultPlan::default()` and therefore match a build without the
//! fault subsystem exactly.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use cais_engine::{ExecReport, SimError, SystemConfig};
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::{DegradeSpec, FaultPlan, SimDuration};

/// Root seed for every resilience run's fault RNG streams.
pub const FAULT_SEED: u64 = 0xFA17;

/// Per-packet drop probabilities swept by `resil-drop`.
fn drop_rates(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.0, 1e-4, 1e-3, 5e-3, 1e-2],
        Scale::Smoke => vec![0.0, 1e-3, 1e-2],
    }
}

/// Bandwidth-degradation factors swept by `resil-degrade` (`1.0` is the
/// fault-free baseline row).
const DEGRADE_FACTORS: [f64; 4] = [1.0, 1.5, 2.0, 4.0];

/// Builds the faulted system config for one sweep point.
fn faulted_cfg(scale: Scale, faults: FaultPlan) -> SystemConfig {
    let mut cfg = scale.system();
    cfg.faults = faults;
    cfg
}

/// One (system, fault plan) simulation over the L2 sub-layer.
fn job(label: String, cais: bool, model: &ModelConfig, cfg: &SystemConfig) -> SweepJob {
    let (model, cfg) = (model.clone(), cfg.clone());
    SweepJob::new(label, move || -> Result<ExecReport, SimError> {
        let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
        if cais {
            execute(&CaisStrategy::full(), &dfg, &cfg)
        } else {
            execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg)
        }
    })
}

fn us(secs: f64) -> f64 {
    secs * 1e6
}

/// Runs the experiment: (CAIS, TP-NVLS) per drop rate, then per
/// degradation factor.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let rates = drop_rates(scale);

    let mut manifest: Vec<SweepJob> = Vec::new();
    for &rate in &rates {
        let faults = FaultPlan::default()
            .with_seed(FAULT_SEED)
            .with_drop_rate(rate);
        let cfg = faulted_cfg(scale, faults);
        manifest.push(job(format!("drop={rate:.0e}/CAIS"), true, &model, &cfg));
        manifest.push(job(format!("drop={rate:.0e}/TP-NVLS"), false, &model, &cfg));
    }
    for &factor in &DEGRADE_FACTORS {
        let mut faults = FaultPlan::default().with_seed(FAULT_SEED);
        if factor > 1.0 {
            faults = faults.with_degrade(DegradeSpec {
                factor,
                period: SimDuration::from_us(10),
                duration: SimDuration::from_us(3),
            });
        }
        let cfg = faulted_cfg(scale, faults);
        manifest.push(job(format!("degrade=x{factor}/CAIS"), true, &model, &cfg));
        manifest.push(job(
            format!("degrade=x{factor}/TP-NVLS"),
            false,
            &model,
            &cfg,
        ));
    }

    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("resilience", &results);
    let (drop_results, degrade_results) = results.split_at(2 * rates.len());

    let mut drop_table = Table::new(
        "resil-drop",
        "step time vs packet-drop rate with retransmission (LLaMA-7B L2)",
        vec![
            "CAIS (us)".into(),
            "TP-NVLS (us)".into(),
            "retries".into(),
            "backoff (us)".into(),
            "drops".into(),
        ],
    );
    for (i, &rate) in rates.iter().enumerate() {
        let (c, n) = (&drop_results[2 * i], &drop_results[2 * i + 1]);
        let res = c
            .report()
            .map(|r| r.fabric.resilience().clone())
            .unwrap_or_default();
        drop_table.push(
            format!("drop {rate:.0e}"),
            vec![
                us(c.secs()),
                us(n.secs()),
                res.retries as f64,
                us(res.backoff_time.as_secs_f64()),
                res.drops as f64,
            ],
        );
    }
    drop_table.absorb_failures(drop_results);
    drop_table.notes = format!(
        "retry/backoff/drop counters are from the CAIS run; every drop is \
         NACKed and retransmitted after bounded exponential backoff, so all \
         rates complete; fault seed {FAULT_SEED:#x}"
    );

    let mut degrade_table = Table::new(
        "resil-degrade",
        "step time vs link bandwidth-degradation factor (LLaMA-7B L2)",
        vec![
            "CAIS (us)".into(),
            "TP-NVLS (us)".into(),
            "degraded serves".into(),
        ],
    );
    for (i, &factor) in DEGRADE_FACTORS.iter().enumerate() {
        let (c, n) = (&degrade_results[2 * i], &degrade_results[2 * i + 1]);
        let res = c
            .report()
            .map(|r| r.fabric.resilience().clone())
            .unwrap_or_default();
        degrade_table.push(
            format!("x{factor}"),
            vec![us(c.secs()), us(n.secs()), res.degraded_serves as f64],
        );
    }
    degrade_table.absorb_failures(degrade_results);
    degrade_table.notes = "periodic 3us-in-10us windows stretch transfer times by the \
                           factor; x1.0 runs the default (fault-free) plan"
        .into();

    vec![drop_table, degrade_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_well_formed() {
        let tables = run(Scale::Smoke, 2);
        assert_eq!(tables.len(), 2);
        let drops = &tables[0];
        assert!(drops.failures.is_empty(), "{:?}", drops.failures);
        assert_eq!(drops.rows.len(), 3);
        // The zero-rate row is fault-free: no retries, no backoff, and a
        // step time that matches a run without the fault subsystem.
        let clean = &drops.rows[0].1;
        assert!(clean[0] > 0.0 && clean[1] > 0.0);
        assert_eq!(clean[2], 0.0, "zero-rate row must not retry");
        assert_eq!(clean[3], 0.0, "zero-rate row must not back off");
        // The heaviest rate visibly exercises the retransmit path.
        let heavy = drops.rows.last().expect("rows").1.clone();
        assert!(heavy[2] > 0.0, "1e-2 drop rate must trigger retries");
        assert!(heavy[4] >= heavy[2], "drops >= successful retries");

        let degrade = &tables[1];
        assert!(degrade.failures.is_empty(), "{:?}", degrade.failures);
        assert_eq!(degrade.rows.len(), DEGRADE_FACTORS.len());
        let base = &degrade.rows[0].1;
        assert_eq!(base[2], 0.0, "x1.0 row runs the default plan");
        let worst = degrade.rows.last().expect("rows").1.clone();
        assert!(worst[2] > 0.0, "x4.0 windows must catch some serves");
        assert!(worst[0] >= base[0], "degradation must not speed the run up");
    }
}
