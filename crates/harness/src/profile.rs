//! `cais-experiments --profile`: per-subsystem hot-path breakdown.
//!
//! Runs one end-to-end simulation per representative workload shape on
//! the calling thread and prints the simulator's self-profiler report
//! (self wall time, scope entries, allocation counters) for each. The
//! numbers come from [`sim_core::profile`], which is compiled out by
//! default — build with `--features profiler` to populate the table:
//!
//! ```text
//! cargo run --release -p cais-harness --features profiler \
//!     --bin cais-experiments -- --profile
//! ```
//!
//! Without the feature the mode still runs (it is a useful smoke check
//! of the shapes) but prints a hint instead of all-zero rows. The
//! profiler observes only — goldens are byte-identical either way; the
//! `profiler_feature_preserves_results` test in this crate pins that.

use crate::runner::Scale;
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::{strategy::execute, Strategy, SystemConfig};
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};
use sim_core::profile::{self, SubsystemReport};

/// One profiled end-to-end run.
struct ProfiledRun {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    rows: Vec<SubsystemReport>,
}

fn profiled_run(
    name: &'static str,
    strategy: &dyn Strategy,
    model: &ModelConfig,
    mode: TpMode,
    cfg: &SystemConfig,
) -> ProfiledRun {
    let dfg = transformer_layer(model, cfg.tp(), mode, Pass::Forward);
    profile::reset();
    let t0 = std::time::Instant::now();
    let report = execute(strategy, &dfg, cfg).expect("profile run completes");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ProfiledRun {
        name,
        wall_ms,
        events: report.events_processed,
        rows: profile::report(),
    }
}

fn render(run: &ProfiledRun) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile {} ({} events, {:.1} ms wall)",
        run.name, run.events, run.wall_ms
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>12} {:>12} {:>14}",
        "subsystem", "calls", "self_ms", "allocs", "alloc_bytes"
    );
    let total: u64 = run.rows.iter().map(|r| r.wall_ns).sum();
    for r in &run.rows {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>12.3} {:>12} {:>14}",
            r.subsystem.label(),
            r.calls,
            r.wall_ns as f64 / 1e6,
            r.allocs,
            r.alloc_bytes
        );
    }
    let _ = writeln!(out, "  instrumented total: {:.3} ms", total as f64 / 1e6);
    out
}

/// Runs the representative shapes and prints their profiler breakdowns.
pub fn run(scale: Scale) {
    if !profile::enabled() {
        eprintln!(
            "note: built without the `profiler` feature; subsystem rows are \
             empty. Rebuild with `--features profiler` for the breakdown."
        );
    }
    let cfg = scale.system();
    let nvls = BaselineStrategy::tp_nvls();
    let cais = CaisStrategy::full();
    let runs = [
        profiled_run(
            "tp_nvls/mega_gpt_4b",
            &nvls,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::BasicTp,
            &cfg,
        ),
        profiled_run(
            "cais_full/mega_gpt_4b",
            &cais,
            &scale.model(&ModelConfig::mega_gpt_4b()),
            TpMode::SeqPar,
            &cfg,
        ),
        profiled_run(
            "cais_full/llama_7b",
            &cais,
            &scale.model(&ModelConfig::llama_7b()),
            TpMode::SeqPar,
            &cfg,
        ),
    ];
    for run in &runs {
        println!("{}", render(run));
    }
}
