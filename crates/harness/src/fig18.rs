//! Fig. 18 — validation of the simulated NVLS against a reference.
//!
//! The paper validates its `multimem`-enabled simulator against NCCL on
//! real DGX-H100 hardware (1–16 GB AllReduce, mean error 3.87%). We do
//! not have the testbed, so the reference here is an **analytic NCCL
//! NVLS model** (documented in EXPERIMENTS.md): effective AllReduce
//! algorithm bandwidth of ~95% of the 450 GB/s per-direction link rate
//! plus a fixed launch/protocol latency. The experiment reports the same
//! quantity the paper plots — achieved AllReduce bandwidth per message
//! size — plus the simulation-vs-reference error.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_engine::{IdAlloc, Program, SystemConfig, SystemSim};
use gpu_sim::KernelCost;
use nvls::{nvls_all_reduce, NvlsLogic};

/// Analytic reference: NCCL NVLS AllReduce time for `bytes` on 8 GPUs.
pub fn reference_time_secs(bytes: u64) -> f64 {
    const EFFECTIVE_BW: f64 = 0.97 * 450e9; // protocol-derated link rate
    const BASE_LATENCY: f64 = 12e-6; // launch + fan-in/fan-out
    bytes as f64 / EFFECTIVE_BW + BASE_LATENCY
}

/// Runs the experiment: one sweep job per AllReduce message size.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let sizes: Vec<u64> = match scale {
        Scale::Paper => vec![1, 2, 4, 8, 16]
            .into_iter()
            .map(|gb| gb * (1 << 30))
            .collect(),
        Scale::Smoke => vec![64 << 20, 256 << 20],
    };
    let mut table = Table::new(
        "fig18",
        "simulated NVLS AllReduce vs NCCL-style analytic reference",
        vec!["sim_GBps".into(), "ref_GBps".into(), "error_%".into()],
    );
    let manifest: Vec<SweepJob> = sizes
        .iter()
        .map(|&bytes| {
            SweepJob::new(format!("allreduce/{}mb", bytes >> 20), move || {
                let mut cfg = SystemConfig::dgx_h100();
                // Chunks small enough that the address hash spreads work
                // across all four planes, large enough to bound the event
                // count; coarse arbitration keeps events proportional to
                // size/segment.
                cfg.coll_chunk_bytes = 1 << 20;
                cfg.fabric.segment_bytes = 256 * 1024;
                cfg.deadline = sim_core::SimTime::from_ms(120_000);
                // NCCL-style benchmarks report steady-state loop timings,
                // so the one-shot launch noise is excluded here.
                cfg.gpu.launch_skew = sim_core::SimDuration::ZERO;
                cfg.gpu.dispatch_jitter = sim_core::SimDuration::ZERO;
                cfg.gpu.compute_jitter = sim_core::SimDuration::ZERO;
                let cost = KernelCost::new(&cfg.gpu);
                let mut prog = Program::new();
                let mut ids = IdAlloc::new(cfg.n_gpus);
                nvls_all_reduce(&mut prog, &mut ids, &cfg, &cost, "ar", bytes, &[], None);
                let n = cfg.n_gpus;
                SystemSim::new(cfg, prog, Box::new(NvlsLogic::new(n))).run()
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig18", &results);
    let mut errors = Vec::new();
    for (res, &bytes) in results.iter().zip(&sizes) {
        let sim_t = res.secs();
        let ref_t = reference_time_secs(bytes);
        let sim_bw = bytes as f64 / sim_t / 1e9;
        let ref_bw = bytes as f64 / ref_t / 1e9;
        let err = ((sim_t - ref_t) / ref_t).abs() * 100.0;
        errors.push(err);
        table.push(format!("{} MB", bytes >> 20), vec![sim_bw, ref_bw, err]);
    }
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    table.absorb_failures(&results);
    table.push("mean_error", vec![0.0, 0.0, mean_err]);
    table.notes = format!(
        "paper reports 3.87% mean error vs real hardware; our reference is an analytic \
         NCCL-NVLS model (see EXPERIMENTS.md); mean error here: {mean_err:.2}%"
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_nvls_tracks_reference_within_ten_percent() {
        let t = &run(Scale::Smoke, 1)[0];
        let (_, v) = t.rows.last().unwrap();
        assert!(
            v[2] < 10.0,
            "mean NVLS validation error too high: {:.2}%",
            v[2]
        );
    }

    #[test]
    fn reference_model_is_monotone() {
        assert!(reference_time_secs(2 << 30) > reference_time_secs(1 << 30));
    }
}
