//! CLI to regenerate the paper's tables and figures.
//!
//! ```text
//! cais-experiments [fig2|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|table2|area|ablations|all] [--smoke] [--jobs N]
//! ```
//!
//! `--jobs N` bounds the sweep worker pool (default: the host's
//! available parallelism). The printed tables are byte-identical at
//! every worker count; timing diagnostics go to stderr. A simulation
//! that panics becomes a FAILED line (and NaN cells) in its table, and
//! the process exits with status 1.

use cais_harness::{runner::Scale, sweep, Table};
use std::time::Instant;

fn parse_jobs(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            return it
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--jobs needs a positive integer");
                    std::process::exit(2);
                });
        }
        if let Some(v) = a.strip_prefix("--jobs=") {
            return v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            });
        }
    }
    sweep::default_jobs()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Smoke } else { Scale::Paper };
    let jobs = parse_jobs(&args);
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--jobs" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    type Experiment = (&'static str, fn(Scale, usize) -> Vec<Table>);
    let experiments: Vec<Experiment> = vec![
        ("fig2", cais_harness::fig02::run),
        ("fig11", cais_harness::fig11::run),
        ("fig12", cais_harness::fig12::run),
        ("fig13", cais_harness::fig13::run),
        ("fig14", cais_harness::fig14::run),
        ("fig15", cais_harness::fig15::run),
        ("fig16", cais_harness::fig16::run),
        ("fig17", cais_harness::fig17::run),
        ("fig18", cais_harness::fig18::run),
        ("table2", cais_harness::table2::run),
        ("area", cais_harness::area::run),
        ("ablations", cais_harness::ablations::run),
        ("sensitivity", cais_harness::sensitivity::run),
    ];

    let run_all = which.contains(&"all");
    let mut ran = 0;
    let mut failed = 0usize;
    for (name, f) in &experiments {
        if run_all || which.contains(name) {
            let t0 = Instant::now();
            for table in f(scale, jobs) {
                failed += table.failures.len();
                println!("{}", table.render());
            }
            eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment {which:?}; options: {} all",
            experiments
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    if failed > 0 {
        eprintln!("{failed} sweep job(s) failed; see FAILED lines above");
        std::process::exit(1);
    }
}
