//! CLI to regenerate the paper's tables and figures.
//!
//! ```text
//! cais-experiments [fig2|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|table2|area|ablations|sensitivity|resilience|chaos|all]
//!                  [--smoke] [--jobs N] [--timeout-secs N] [--audit]
//! cais-experiments --profile [--smoke]
//! ```
//!
//! `--jobs N` bounds the sweep worker pool (default: the host's
//! available parallelism). The printed tables are byte-identical at
//! every worker count; timing diagnostics go to stderr. A simulation
//! that returns a typed error or panics becomes a FAILED line (and NaN
//! cells) in its table; `--timeout-secs N` arms a per-job wall-clock
//! watchdog whose victims become TIMEOUT lines instead. Either makes the
//! process exit with status 1.
//!
//! `--audit` enables the conservation auditor for every run: cadence
//! ledger checks plus end-of-run quiescence verification (see
//! [`sim_core::audit`]). Auditing is observe-only — tables are
//! byte-identical with it on and off — and a violation fails the run with
//! a forensic report. The `chaos` experiment additionally forces audit on
//! for its own runs regardless of the flag.
//!
//! `--profile` runs the representative workload shapes single-threaded
//! and prints the simulator's per-subsystem self-profiler breakdown;
//! build with `--features profiler` to populate it (see
//! [`cais_harness::profile`]).

use cais_harness::{runner::Scale, sweep, Table};
use std::time::{Duration, Instant};

/// Per-thread allocation counters for `--profile` runs; a transparent
/// pass-through to the system allocator without the `profiler` feature.
#[cfg(feature = "profiler")]
#[global_allocator]
static COUNTING_ALLOC: sim_core::profile::CountingAllocator = sim_core::profile::CountingAllocator;

/// Extracts the value of `--<name> N` / `--<name>=N` as a positive
/// integer, exiting with status 2 on a malformed value.
fn parse_flag(args: &[String], name: &str) -> Option<u64> {
    let bad = || -> ! {
        eprintln!("--{name} needs a positive integer");
        std::process::exit(2);
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == &format!("--{name}") {
            return Some(
                it.next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| bad()),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("--{name}=")) {
            return Some(v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| bad()));
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke { Scale::Smoke } else { Scale::Paper };
    if args.iter().any(|a| a == "--audit") {
        sim_core::audit::set_force_enabled(true);
    }
    if args.iter().any(|a| a == "--profile") {
        cais_harness::profile::run(scale);
        return;
    }
    let jobs = parse_flag(&args, "jobs")
        .map(|n| n as usize)
        .unwrap_or_else(sweep::default_jobs);
    sweep::set_job_timeout(parse_flag(&args, "timeout-secs").map(Duration::from_secs));
    let mut skip_next = false;
    let which: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--jobs" || *a == "--timeout-secs" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .map(|s| s.as_str())
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };

    type Experiment = (&'static str, fn(Scale, usize) -> Vec<Table>);
    let experiments: Vec<Experiment> = vec![
        ("fig2", cais_harness::fig02::run),
        ("fig11", cais_harness::fig11::run),
        ("fig12", cais_harness::fig12::run),
        ("fig13", cais_harness::fig13::run),
        ("fig14", cais_harness::fig14::run),
        ("fig15", cais_harness::fig15::run),
        ("fig16", cais_harness::fig16::run),
        ("fig17", cais_harness::fig17::run),
        ("fig18", cais_harness::fig18::run),
        ("table2", cais_harness::table2::run),
        ("area", cais_harness::area::run),
        ("ablations", cais_harness::ablations::run),
        ("sensitivity", cais_harness::sensitivity::run),
        ("resilience", cais_harness::resilience::run),
        ("chaos", cais_harness::chaos::run),
    ];

    let run_all = which.contains(&"all");
    let mut ran = 0;
    let mut failed = 0usize;
    let mut timed_out = 0usize;
    for (name, f) in &experiments {
        if run_all || which.contains(name) {
            let t0 = Instant::now();
            for table in f(scale, jobs) {
                failed += table.failures.len();
                timed_out += table.timeouts.len();
                println!("{}", table.render());
            }
            eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment {which:?}; options: {} all",
            experiments
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    if failed > 0 || timed_out > 0 {
        eprintln!(
            "{failed} sweep job(s) failed, {timed_out} timed out; see FAILED/TIMEOUT lines above"
        );
        std::process::exit(1);
    }
}
