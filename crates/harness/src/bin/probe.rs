//! Diagnostic probe: dump timelines and switch statistics for one
//! sub-layer under several strategies. Not part of the experiment suite.

use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::{strategy::execute, ExecReport, Strategy, SystemConfig};
use cais_harness::runner::Scale;
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::GpuId;

fn dump(name: &str, r: &ExecReport) {
    println!("--- {name} ---");
    println!(
        "total {}  occupancy {:.1}%  link-util {:.1}%  dedup {}  semantic-contribs {}",
        r.total,
        r.mean_occupancy() * 100.0,
        r.fabric.mean_utilization() * 100.0,
        r.deduped_fetches,
        r.semantic_contribs
    );
    let mut spans: Vec<_> = r
        .kernel_spans
        .values()
        .filter(|s| s.gpu == GpuId(0))
        .collect();
    spans.sort_by_key(|s| s.start);
    for s in spans {
        println!(
            "  [{:>10} - {:>10}] {}",
            s.start.to_string(),
            s.end.to_string(),
            s.name
        );
    }
    for (k, v) in &r.logic_stats {
        println!("  {k} = {v}");
    }
    println!();
}

fn main() {
    let scale = Scale::Smoke;
    let model = scale.model(&ModelConfig::llama_7b());
    let cfg: SystemConfig = scale.system();
    let dfg = sublayer(&model, cfg.tp(), SubLayer::L1);
    eprintln!(
        "model {} hidden={} ffn={} T={} | flops/gpu {:.2} GF, coll bytes {} MB",
        model.name,
        model.hidden,
        model.ffn_hidden,
        model.tokens(),
        dfg.total_flops() / 1e9,
        dfg.total_collective_bytes() >> 20
    );

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(BaselineStrategy::sp_nvls()),
        Box::new(BaselineStrategy::tp_nvls()),
        Box::new(CaisStrategy::base()),
        Box::new(CaisStrategy::partial()),
        Box::new(CaisStrategy::full()),
    ];
    for s in &strategies {
        match execute(s.as_ref(), &dfg, &cfg) {
            Ok(r) => dump(s.name(), &r),
            Err(e) => eprintln!("--- {} --- run failed: {e}", s.name()),
        }
    }
}
