//! Fig. 17 — scalability with increasing GPU count.
//!
//! Per-GPU throughput of CAIS and CoCoNet-NVLS as the system grows,
//! with the model's hidden dimensions scaled proportionally (so per-GPU
//! work stays constant). The paper reports <5% per-GPU throughput drop
//! from 8 to 32 GPUs.

use crate::runner::{Scale, Table};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use cais_engine::Strategy;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let (base_p, gpu_counts): (usize, Vec<usize>) = match scale {
        Scale::Paper => (8, vec![8, 16, 32]),
        Scale::Smoke => (4, vec![4, 8]),
    };
    let base_model = scale.model(&ModelConfig::llama_7b());
    let mut table = Table::new(
        "fig17",
        "per-GPU throughput normalized to CAIS at the base GPU count",
        vec!["CAIS".into(), "CoCoNet-NVLS".into()],
    );

    let mut results: Vec<(usize, f64, f64)> = Vec::new();
    for &p in &gpu_counts {
        let model = base_model.scale_hidden(p as u64, base_p as u64);
        let mut cfg = scale.system();
        cfg.n_gpus = p;
        cfg.fabric = noc_sim::FabricConfig::default_for(p, cfg.n_planes);
        let mode_for = |s: &dyn Strategy| {
            if s.name().contains("CoCoNet") {
                TpMode::BasicTp
            } else {
                TpMode::SeqPar
            }
        };
        let throughput = |s: &dyn Strategy| {
            let dfg = transformer_layer(&model, p as u64, mode_for(s), Pass::Forward);
            let flops = dfg.total_flops();
            let report = execute(s, &dfg, &cfg);
            flops / report.total.as_secs_f64()
        };
        let cais = throughput(&CaisStrategy::full());
        let coco = throughput(&BaselineStrategy::coconet_nvls());
        results.push((p, cais, coco));
    }
    let norm = results[0].1;
    for (p, cais, coco) in results {
        table.push(format!("{p} GPUs"), vec![cais / norm, coco / norm]);
    }
    table.notes = "paper: CAIS per-GPU throughput drop stays within 5% up to 32 GPUs".into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_gpu_throughput_stays_flat() {
        let t = &run(Scale::Smoke)[0];
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!((first - 1.0).abs() < 1e-9);
        assert!(
            last > 0.75,
            "per-GPU CAIS throughput should not collapse when scaling: {last:.3}"
        );
    }
}
