//! Fig. 17 — scalability with increasing GPU count.
//!
//! Per-GPU throughput of CAIS and CoCoNet-NVLS as the system grows,
//! with the model's hidden dimensions scaled proportionally (so per-GPU
//! work stays constant). The paper reports <5% per-GPU throughput drop
//! from 8 to 32 GPUs.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use cais_engine::Strategy;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

/// Runs the experiment: one sweep job per GPU count × strategy.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let (base_p, gpu_counts): (usize, Vec<usize>) = match scale {
        Scale::Paper => (8, vec![8, 16, 32]),
        Scale::Smoke => (4, vec![4, 8]),
    };
    let base_model = scale.model(&ModelConfig::llama_7b());
    let mut table = Table::new(
        "fig17",
        "per-GPU throughput normalized to CAIS at the base GPU count",
        vec!["CAIS".into(), "CoCoNet-NVLS".into()],
    );

    let make_strategy = |cais: bool| -> Box<dyn Strategy> {
        if cais {
            Box::new(CaisStrategy::full())
        } else {
            Box::new(BaselineStrategy::coconet_nvls())
        }
    };
    let graph_for = |p: usize, cais: bool| {
        let model = base_model.scale_hidden(p as u64, base_p as u64);
        let mode = if cais {
            TpMode::SeqPar
        } else {
            TpMode::BasicTp
        };
        transformer_layer(&model, p as u64, mode, Pass::Forward)
    };
    let manifest: Vec<SweepJob> = gpu_counts
        .iter()
        .flat_map(|&p| {
            let mk = |cais: bool| {
                let (scale, base_model) = (scale, base_model.clone());
                let tag = if cais { "CAIS" } else { "CoCoNet-NVLS" };
                SweepJob::new(format!("{tag}/{p}gpus"), move || {
                    let mut cfg = scale.system();
                    cfg.n_gpus = p;
                    cfg.fabric = noc_sim::FabricConfig::default_for(p, cfg.n_planes);
                    let model = base_model.scale_hidden(p as u64, base_p as u64);
                    let mode = if cais {
                        TpMode::SeqPar
                    } else {
                        TpMode::BasicTp
                    };
                    let dfg = transformer_layer(&model, p as u64, mode, Pass::Forward);
                    execute(make_strategy(cais).as_ref(), &dfg, &cfg)
                })
            };
            [mk(true), mk(false)]
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig17", &results);
    // FLOP counts come from the (cheap, deterministic) graph build; only
    // the simulations themselves ran on the pool.
    let throughputs: Vec<(usize, f64, f64)> = results
        .chunks(2)
        .zip(&gpu_counts)
        .map(|(pair, &p)| {
            let tput =
                |res: &sweep::JobResult, cais: bool| graph_for(p, cais).total_flops() / res.secs();
            (p, tput(&pair[0], true), tput(&pair[1], false))
        })
        .collect();
    let norm = throughputs[0].1;
    for (p, cais, coco) in throughputs {
        table.push(format!("{p} GPUs"), vec![cais / norm, coco / norm]);
    }
    table.absorb_failures(&results);
    table.notes = "paper: CAIS per-GPU throughput drop stays within 5% up to 32 GPUs".into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_gpu_throughput_stays_flat() {
        let t = &run(Scale::Smoke, 1)[0];
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!((first - 1.0).abs() < 1e-9);
        assert!(
            last > 0.75,
            "per-GPU CAIS throughput should not collapse when scaling: {last:.3}"
        );
    }
}
