//! Fabric-bandwidth sensitivity: where does the paper's regime live?
//!
//! EXPERIMENTS.md attributes every compressed speedup factor to one
//! calibration difference: our simulated fabric moves collectives at
//! ~95% of the 450 GB/s/direction link rate, while the paper's
//! NCCL-over-BookSim2 stack is substantially less efficient at
//! tens-of-MB messages, making its workload communication-bound
//! (Fig. 2: comm = 1.6x compute at 8 GPUs). This experiment tests that
//! explanation directly by derating the fabric: as effective bandwidth
//! drops, the comm/compute ratio must rise toward the paper's, and the
//! CAIS-over-TP-NVLS speedup must widen from our ~1.4x toward (and past)
//! the paper's operating point.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};
use sim_core::GpuId;

/// Runs the sweep: two jobs (TP-NVLS, CAIS) per bandwidth point.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let gbps_per_dir: Vec<f64> = match scale {
        Scale::Paper => vec![450.0, 300.0, 150.0, 75.0],
        Scale::Smoke => vec![450.0, 150.0],
    };
    let model = match scale {
        Scale::Paper => ModelConfig::llama_7b(),
        Scale::Smoke => Scale::Smoke.model(&ModelConfig::llama_7b()),
    };
    let mut table = Table::new(
        "sensitivity",
        "fabric bandwidth vs comm/compute balance and CAIS advantage",
        vec!["comm/compute".into(), "CAIS_vs_TP-NVLS".into()],
    );
    let manifest: Vec<SweepJob> = gbps_per_dir
        .iter()
        .flat_map(|&gbps| {
            let mk = |cais: bool| {
                let (scale, model) = (scale, model.clone());
                let tag = if cais { "CAIS" } else { "TP-NVLS" };
                SweepJob::new(format!("{tag}/{gbps:.0}gbps"), move || {
                    let mut cfg = scale.system();
                    cfg.fabric.link_bw = sim_core::Bandwidth::gbps(gbps).split(cfg.n_planes);
                    if cais {
                        let dfg =
                            transformer_layer(&model, cfg.tp(), TpMode::SeqPar, Pass::Forward);
                        execute(&CaisStrategy::full(), &dfg, &cfg)
                    } else {
                        let dfg =
                            transformer_layer(&model, cfg.tp(), TpMode::BasicTp, Pass::Forward);
                        execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg)
                    }
                })
            };
            [mk(false), mk(true)]
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("sensitivity", &results);
    for (pair, &gbps) in results.chunks(2).zip(&gbps_per_dir) {
        // Measure the balance the way Fig. 2 does (barriered TP-NVLS).
        let ratio = pair[0]
            .report()
            .map(|tp| {
                let comm = tp.kernel_time_with_prefix("coll.").as_us_f64();
                let total: f64 = tp
                    .kernel_spans
                    .values()
                    .filter(|s| s.gpu == GpuId(0))
                    .map(|s| s.duration().as_us_f64())
                    .sum();
                comm / (total - comm).max(1.0)
            })
            .unwrap_or(f64::NAN);
        // And the headline speedup at that balance.
        table.push(
            format!("{gbps:.0} GB/s/dir"),
            vec![ratio, pair[0].secs() / pair[1].secs()],
        );
    }
    table.absorb_failures(&results);
    table.notes = "derating the fabric reproduces the paper's comm-bound regime (ratio \
                   rising through the paper's 1.6); CAIS keeps a solid advantage \
                   throughout, peaking near balance — once communication fully \
                   dominates, overlap has less compute to hide behind and the advantage \
                   converges toward the (equal) transported-volume ratio"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_fabric_raises_ratio_and_cais_keeps_winning() {
        let t = &run(Scale::Smoke, 1)[0];
        let fast = &t.rows[0].1;
        let slow = &t.rows[1].1;
        assert!(
            slow[0] > fast[0],
            "comm/compute must rise on a slower fabric: {} vs {}",
            slow[0],
            fast[0]
        );
        for row in [fast, slow] {
            assert!(
                row[1] > 1.0,
                "CAIS must beat TP-NVLS at every bandwidth: {row:?}"
            );
        }
    }
}
