//! Table II — validation of the scaled-down methodology.
//!
//! The paper justifies running half-size models on half-SM GPUs by
//! showing the CAIS-over-TP-NVLS speedup barely moves between the full
//! setup (hidden 8192, 132 SMs) and the half setup (hidden 4096, 66
//! SMs): 1.43x vs. 1.40x.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use gpu_sim::GpuConfig;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

/// Runs the experiment: two sweep jobs (TP-NVLS, CAIS) per setup.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let mut table = Table::new(
        "table2",
        "scaled-down validation: CAIS speedup over TP-NVLS",
        vec!["speedup".into()],
    );
    let setups: Vec<(&str, ModelConfig, GpuConfig)> = match scale {
        Scale::Paper => vec![
            (
                "full (8192, 132 SM)",
                ModelConfig::llama_full_scale(),
                GpuConfig::h100_full(),
            ),
            (
                "half (4096, 66 SM)",
                ModelConfig::llama_7b(),
                GpuConfig::h100_half(),
            ),
        ],
        Scale::Smoke => vec![
            (
                "full (2048, 132 SM)",
                Scale::Smoke
                    .model(&ModelConfig::llama_7b())
                    .scale_hidden(2, 1),
                GpuConfig::h100_full(),
            ),
            (
                "half (1024, 66 SM)",
                Scale::Smoke.model(&ModelConfig::llama_7b()),
                GpuConfig::h100_half(),
            ),
        ],
    };
    let manifest: Vec<SweepJob> = setups
        .iter()
        .flat_map(|(label, model, gpu)| {
            let mk = |cais: bool| {
                let (scale, model, gpu) = (scale, model.clone(), gpu.clone());
                let tag = if cais { "CAIS" } else { "TP-NVLS" };
                SweepJob::new(format!("{label}/{tag}"), move || {
                    let mut cfg = scale.system();
                    cfg.gpu = gpu;
                    if cais {
                        let dfg =
                            transformer_layer(&model, cfg.tp(), TpMode::SeqPar, Pass::Forward);
                        execute(&CaisStrategy::full(), &dfg, &cfg)
                    } else {
                        let dfg =
                            transformer_layer(&model, cfg.tp(), TpMode::BasicTp, Pass::Forward);
                        execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg)
                    }
                })
            };
            [mk(false), mk(true)]
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("table2", &results);
    for (pair, (label, _, _)) in results.chunks(2).zip(&setups) {
        table.push(*label, vec![pair[0].secs() / pair[1].secs()]);
    }
    table.absorb_failures(&results);
    table.notes = "paper: 1.43 (full) vs 1.40 (half) — the half-scale setup preserves the \
                   speedup ordering and magnitude"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_scale_preserves_speedup_magnitude() {
        let t = &run(Scale::Smoke, 1)[0];
        let full = t.rows[0].1[0];
        let half = t.rows[1].1[0];
        assert!(full > 1.0 && half > 1.0, "CAIS must win in both setups");
        let rel = (full - half).abs() / full;
        assert!(
            rel < 0.25,
            "full {full:.2} vs half {half:.2}: scaled-down setup should track"
        );
    }
}
