//! Table II — validation of the scaled-down methodology.
//!
//! The paper justifies running half-size models on half-SM GPUs by
//! showing the CAIS-over-TP-NVLS speedup barely moves between the full
//! setup (hidden 8192, 132 SMs) and the half setup (hidden 4096, 66
//! SMs): 1.43x vs. 1.40x.

use crate::runner::{Scale, Table};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use gpu_sim::GpuConfig;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

/// Runs the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "table2",
        "scaled-down validation: CAIS speedup over TP-NVLS",
        vec!["speedup".into()],
    );
    let setups: Vec<(&str, ModelConfig, GpuConfig)> = match scale {
        Scale::Paper => vec![
            ("full (8192, 132 SM)", ModelConfig::llama_full_scale(), GpuConfig::h100_full()),
            ("half (4096, 66 SM)", ModelConfig::llama_7b(), GpuConfig::h100_half()),
        ],
        Scale::Smoke => vec![
            (
                "full (2048, 132 SM)",
                Scale::Smoke.model(&ModelConfig::llama_7b()).scale_hidden(2, 1),
                GpuConfig::h100_full(),
            ),
            (
                "half (1024, 66 SM)",
                Scale::Smoke.model(&ModelConfig::llama_7b()),
                GpuConfig::h100_half(),
            ),
        ],
    };
    for (label, model, gpu) in setups {
        let mut cfg = scale.system();
        cfg.gpu = gpu;
        let tp_dfg = transformer_layer(&model, cfg.tp(), TpMode::BasicTp, Pass::Forward);
        let cais_dfg = transformer_layer(&model, cfg.tp(), TpMode::SeqPar, Pass::Forward);
        let tp = execute(&BaselineStrategy::tp_nvls(), &tp_dfg, &cfg);
        let cais = execute(&CaisStrategy::full(), &cais_dfg, &cfg);
        table.push(label, vec![cais.speedup_over(&tp)]);
    }
    table.notes = "paper: 1.43 (full) vs 1.40 (half) — the half-scale setup preserves the \
                   speedup ordering and magnitude"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_scale_preserves_speedup_magnitude() {
        let t = &run(Scale::Smoke)[0];
        let full = t.rows[0].1[0];
        let half = t.rows[1].1[0];
        assert!(full > 1.0 && half > 1.0, "CAIS must win in both setups");
        let rel = (full - half).abs() / full;
        assert!(
            rel < 0.25,
            "full {full:.2} vs half {half:.2}: scaled-down setup should track"
        );
    }
}
