//! Deterministic parallel sweep execution.
//!
//! Every figure module describes its experiment as a flat manifest of
//! [`SweepJob`]s — one independent simulation each — and hands it to
//! [`run_jobs`], which executes the manifest on a pool of
//! `std::thread::scope` workers. Three properties make the parallelism
//! safe and invisible in the output:
//!
//! * **Thread confinement.** A job closure owns everything it needs
//!   (model, config, strategy constructor) and builds its own
//!   [`SystemSim`](cais_engine::SystemSim) on the worker thread, so
//!   interior mutability inside strategies (e.g. `CaisStrategy`'s
//!   lowering cache) never crosses threads.
//! * **Panic isolation.** Each job runs under
//!   [`std::panic::catch_unwind`]; a diverging simulation (deadlock
//!   panic, deadline overrun) becomes a failed result carrying the
//!   panic message instead of aborting the whole binary.
//! * **Ordered assembly.** Results are stored by manifest index and
//!   returned in manifest order, so the assembled tables are
//!   byte-identical regardless of the worker count.
//!
//! Wall-clock accounting is attached per job ([`JobResult::wall`]) and
//! summarized per figure by [`log_timing`] on stderr, keeping stdout
//! (the tables) bit-stable across `--jobs` settings.

use cais_engine::ExecReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One independent simulation in a sweep manifest.
pub struct SweepJob {
    /// Human-readable identity ("mega-gpt-4b/CAIS/inference", ...), used
    /// for failed-row reporting and timing logs.
    pub label: String,
    run: Box<dyn FnOnce() -> ExecReport + Send>,
}

impl SweepJob {
    /// Wraps a simulation closure. The closure must own its inputs
    /// (clone models/configs in) and construct every stateful object —
    /// strategy, program, `SystemSim` — inside itself so the whole
    /// simulation is confined to the worker thread that claims the job.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> ExecReport + Send + 'static,
    ) -> SweepJob {
        SweepJob {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// The outcome of one [`SweepJob`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's manifest label.
    pub label: String,
    /// The report, or the panic message if the simulation diverged.
    pub outcome: Result<ExecReport, String>,
    /// Wall-clock time the job spent on its worker thread.
    pub wall: Duration,
}

impl JobResult {
    /// Simulated end-to-end seconds, or `NaN` for a failed job (NaN
    /// propagates through speedup/geomean arithmetic, so downstream
    /// rows derived from a failed job surface as NaN instead of lying).
    pub fn secs(&self) -> f64 {
        self.outcome
            .as_ref()
            .map(|r| r.total.as_secs_f64())
            .unwrap_or(f64::NAN)
    }

    /// The report, if the job succeeded.
    pub fn report(&self) -> Option<&ExecReport> {
        self.outcome.as_ref().ok()
    }

    /// The failure message, if the job panicked.
    pub fn failure(&self) -> Option<&str> {
        self.outcome.as_ref().err().map(String::as_str)
    }
}

/// Default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked (non-string payload)".to_string()
    }
}

/// Executes `jobs` across `workers` threads and returns the results in
/// manifest order.
///
/// Work is claimed dynamically (an atomic cursor over the manifest) so
/// long and short simulations load-balance; each result lands in its
/// manifest slot, which is what keeps the output order — and therefore
/// the rendered tables — independent of scheduling. A panicking job is
/// captured as `Err(message)` and the remaining jobs keep running.
pub fn run_jobs(jobs: Vec<SweepJob>, workers: usize) -> Vec<JobResult> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<SweepJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<JobResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                let SweepJob { label, run } = job;
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(run)).map_err(panic_message);
                let wall = t0.elapsed();
                *results[i].lock().expect("result slot poisoned") = Some(JobResult {
                    label,
                    outcome,
                    wall,
                });
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to a result")
        })
        .collect()
}

/// Per-figure wall-clock accounting on stderr: job count, failures,
/// cumulative per-job wall time (the serial-equivalent cost) and the
/// slowest job. Stderr so the stdout tables stay byte-identical across
/// `--jobs` settings.
pub fn log_timing(figure: &str, results: &[JobResult]) {
    if results.is_empty() {
        return;
    }
    let total: Duration = results.iter().map(|r| r.wall).sum();
    let failures = results.iter().filter(|r| r.outcome.is_err()).count();
    let slowest = results
        .iter()
        .max_by_key(|r| r.wall)
        .expect("non-empty results");
    eprintln!(
        "[{figure}: {} jobs, {failures} failed, {:.2}s serial-equivalent, slowest {:.2}s ({})]",
        results.len(),
        total.as_secs_f64(),
        slowest.wall.as_secs_f64(),
        slowest.label,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_core::CaisStrategy;
    use cais_engine::{strategy::execute, SystemConfig};
    use llm_workload::{sublayer, ModelConfig, SubLayer};

    fn tiny_report() -> ExecReport {
        let model = ModelConfig {
            hidden: 512,
            ffn_hidden: 1024,
            heads: 8,
            seq_len: 256,
            batch: 1,
            ..ModelConfig::llama_7b()
        };
        let cfg = SystemConfig::small_test();
        let dfg = sublayer(&model, cfg.tp(), SubLayer::L1);
        execute(&CaisStrategy::full(), &dfg, &cfg)
    }

    #[test]
    fn results_come_back_in_manifest_order() {
        let jobs: Vec<SweepJob> = (0..6)
            .map(|i| SweepJob::new(format!("job{i}"), tiny_report))
            .collect();
        let results = run_jobs(jobs, 4);
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["job0", "job1", "job2", "job3", "job4", "job5"]);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mk = || {
            (0..4)
                .map(|i| SweepJob::new(format!("j{i}"), tiny_report))
                .collect::<Vec<_>>()
        };
        let serial = run_jobs(mk(), 1);
        let parallel = run_jobs(mk(), 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.secs(), b.secs(), "{}", a.label);
            let (ra, rb) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(ra.logic_stats, rb.logic_stats);
            assert_eq!(ra.deduped_fetches, rb.deduped_fetches);
        }
    }

    #[test]
    fn a_panicking_job_becomes_a_failed_result() {
        let jobs = vec![
            SweepJob::new("ok", tiny_report),
            SweepJob::new("boom", || panic!("synthetic divergence")),
            SweepJob::new("ok2", tiny_report),
        ];
        let results = run_jobs(jobs, 2);
        assert!(results[0].outcome.is_ok());
        assert_eq!(results[1].failure(), Some("synthetic divergence"));
        assert!(results[1].secs().is_nan());
        assert!(results[2].outcome.is_ok(), "later jobs keep running");
    }

    #[test]
    fn empty_manifest_is_fine() {
        assert!(run_jobs(Vec::new(), 8).is_empty());
        log_timing("noop", &[]);
    }
}
