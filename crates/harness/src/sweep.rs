//! Deterministic parallel sweep execution.
//!
//! Every figure module describes its experiment as a flat manifest of
//! [`SweepJob`]s — one independent simulation each — and hands it to
//! [`run_jobs`], which executes the manifest on a pool of
//! `std::thread::scope` workers. Three properties make the parallelism
//! safe and invisible in the output:
//!
//! * **Thread confinement.** A job closure owns everything it needs
//!   (model, config, strategy constructor) and builds its own
//!   [`SystemSim`](cais_engine::SystemSim) on the worker thread, so
//!   interior mutability inside strategies (e.g. `CaisStrategy`'s
//!   lowering cache) never crosses threads.
//! * **Failure isolation.** A job that returns a typed
//!   [`SimError`](cais_engine::SimError), panics, or exceeds the optional
//!   per-job wall-clock watchdog ([`set_job_timeout`]) becomes a failed
//!   result carrying a [`JobFailure`] instead of aborting the binary;
//!   the remaining jobs keep running.
//! * **Ordered assembly.** Results are stored by manifest index and
//!   returned in manifest order, so the assembled tables are
//!   byte-identical regardless of the worker count.
//!
//! Wall-clock accounting is attached per job ([`JobResult::wall`]) and
//! summarized per figure by [`log_timing`] on stderr, keeping stdout
//! (the tables) bit-stable across `--jobs` settings.

use cais_engine::{ExecReport, SimError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// One independent simulation in a sweep manifest.
pub struct SweepJob {
    /// Human-readable identity ("mega-gpt-4b/CAIS/inference", ...), used
    /// for failed-row reporting and timing logs.
    pub label: String,
    run: Box<dyn FnOnce() -> Result<ExecReport, SimError> + Send>,
}

impl SweepJob {
    /// Wraps a simulation closure. The closure must own its inputs
    /// (clone models/configs in) and construct every stateful object —
    /// strategy, program, `SystemSim` — inside itself so the whole
    /// simulation is confined to the worker thread that claims the job.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<ExecReport, SimError> + Send + 'static,
    ) -> SweepJob {
        SweepJob {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for SweepJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepJob")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// How a [`SweepJob`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The simulation returned a [`SimError`] or panicked.
    Failed,
    /// The job exceeded the per-job wall-clock watchdog.
    Timeout,
}

/// A failed job's classification plus its human-readable cause.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Failure class (drives separate FAILED / TIMEOUT table sections
    /// and lets callers treat a hung job differently from a diverged
    /// one).
    pub kind: FailKind,
    /// Typed-error display, panic message, or watchdog description.
    pub message: String,
}

/// The outcome of one [`SweepJob`].
#[derive(Debug)]
pub struct JobResult {
    /// The job's manifest label.
    pub label: String,
    /// The report, or how the simulation failed.
    pub outcome: Result<ExecReport, JobFailure>,
    /// Wall-clock time the job spent on its worker thread.
    pub wall: Duration,
}

impl JobResult {
    /// Simulated end-to-end seconds, or `NaN` for a failed job (NaN
    /// propagates through speedup/geomean arithmetic, so downstream
    /// rows derived from a failed job surface as NaN instead of lying).
    pub fn secs(&self) -> f64 {
        self.outcome
            .as_ref()
            .map(|r| r.total.as_secs_f64())
            .unwrap_or(f64::NAN)
    }

    /// The report, if the job succeeded.
    pub fn report(&self) -> Option<&ExecReport> {
        self.outcome.as_ref().ok()
    }

    /// The failure, if the job diverged, errored, or timed out.
    pub fn failure(&self) -> Option<&JobFailure> {
        self.outcome.as_ref().err()
    }
}

/// Default worker count: the host's available parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-job wall-clock watchdog in milliseconds; 0 = disabled. Process
/// global (set once by the CLI before any sweep starts) so figure
/// modules never have to thread it through their manifests.
static JOB_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

/// Sets (or clears) the per-job wall-clock watchdog. Jobs exceeding the
/// budget are reported as [`FailKind::Timeout`] rows and their worker
/// moves on to the next job.
pub fn set_job_timeout(timeout: Option<Duration>) {
    let ms = timeout.map(|d| d.as_millis().max(1) as u64).unwrap_or(0);
    JOB_TIMEOUT_MS.store(ms, Ordering::Relaxed);
}

fn job_timeout() -> Option<Duration> {
    match JOB_TIMEOUT_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked (non-string payload)".to_string()
    }
}

/// Runs one claimed job to a [`JobFailure`]-classified outcome.
///
/// Without a watchdog the closure runs inline on the worker thread.
/// With one, it runs on a freshly spawned thread and the worker waits on
/// a channel with a deadline; on timeout the runaway thread is *leaked*
/// (Rust threads cannot be killed) — it keeps burning one core until the
/// process exits, but its result is discarded and its worker moves on.
fn run_one(job: SweepJob) -> JobResult {
    let SweepJob { label, run } = job;
    let t0 = Instant::now();
    let outcome = match job_timeout() {
        None => classify(catch_unwind(AssertUnwindSafe(run))),
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            std::thread::spawn(move || {
                // A dropped-on-timeout receiver makes this send fail;
                // that is fine, the result is abandoned by design.
                let _ = tx.send(catch_unwind(AssertUnwindSafe(run)));
            });
            match rx.recv_timeout(limit) {
                Ok(raw) => classify(raw),
                Err(_) => Err(JobFailure {
                    kind: FailKind::Timeout,
                    message: format!(
                        "exceeded the {:.0}s per-job wall-clock limit",
                        limit.as_secs_f64()
                    ),
                }),
            }
        }
    };
    JobResult {
        label,
        outcome,
        wall: t0.elapsed(),
    }
}

/// Collapses the two failure layers (panic, typed error) into one.
fn classify(
    raw: Result<Result<ExecReport, SimError>, Box<dyn std::any::Any + Send>>,
) -> Result<ExecReport, JobFailure> {
    match raw {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(sim)) => Err(JobFailure {
            kind: FailKind::Failed,
            message: sim.to_string(),
        }),
        Err(payload) => Err(JobFailure {
            kind: FailKind::Failed,
            message: panic_message(payload),
        }),
    }
}

/// Executes `jobs` across `workers` threads and returns the results in
/// manifest order.
///
/// Work is claimed dynamically (an atomic cursor over the manifest) so
/// long and short simulations load-balance; each result lands in its
/// manifest slot, which is what keeps the output order — and therefore
/// the rendered tables — independent of scheduling. A job that fails
/// (typed error, panic, or watchdog timeout) is captured as
/// `Err(JobFailure)` and the remaining jobs keep running.
pub fn run_jobs(jobs: Vec<SweepJob>, workers: usize) -> Vec<JobResult> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<SweepJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<JobResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot poisoned")
                    .take()
                    .expect("job claimed twice");
                *results[i].lock().expect("result slot poisoned") = Some(run_one(job));
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to a result")
        })
        .collect()
}

/// Per-figure wall-clock accounting on stderr: job count, failures,
/// cumulative per-job wall time (the serial-equivalent cost) and the
/// slowest job. Stderr so the stdout tables stay byte-identical across
/// `--jobs` settings.
pub fn log_timing(figure: &str, results: &[JobResult]) {
    if results.is_empty() {
        return;
    }
    let total: Duration = results.iter().map(|r| r.wall).sum();
    let failures = results.iter().filter(|r| r.outcome.is_err()).count();
    let slowest = results
        .iter()
        .max_by_key(|r| r.wall)
        .expect("non-empty results");
    eprintln!(
        "[{figure}: {} jobs, {failures} failed, {:.2}s serial-equivalent, slowest {:.2}s ({})]",
        results.len(),
        total.as_secs_f64(),
        slowest.wall.as_secs_f64(),
        slowest.label,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_core::CaisStrategy;
    use cais_engine::{strategy::execute, SystemConfig};
    use llm_workload::{sublayer, ModelConfig, SubLayer};

    fn tiny_report() -> Result<ExecReport, SimError> {
        let model = ModelConfig {
            hidden: 512,
            ffn_hidden: 1024,
            heads: 8,
            seq_len: 256,
            batch: 1,
            ..ModelConfig::llama_7b()
        };
        let cfg = SystemConfig::small_test();
        let dfg = sublayer(&model, cfg.tp(), SubLayer::L1);
        execute(&CaisStrategy::full(), &dfg, &cfg)
    }

    #[test]
    fn results_come_back_in_manifest_order() {
        let jobs: Vec<SweepJob> = (0..6)
            .map(|i| SweepJob::new(format!("job{i}"), tiny_report))
            .collect();
        let results = run_jobs(jobs, 4);
        let labels: Vec<&str> = results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, vec!["job0", "job1", "job2", "job3", "job4", "job5"]);
        assert!(results.iter().all(|r| r.outcome.is_ok()));
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let mk = || {
            (0..4)
                .map(|i| SweepJob::new(format!("j{i}"), tiny_report))
                .collect::<Vec<_>>()
        };
        let serial = run_jobs(mk(), 1);
        let parallel = run_jobs(mk(), 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.secs(), b.secs(), "{}", a.label);
            let (ra, rb) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(ra.logic_stats, rb.logic_stats);
            assert_eq!(ra.deduped_fetches, rb.deduped_fetches);
        }
    }

    #[test]
    fn a_panicking_job_becomes_a_failed_result() {
        let jobs = vec![
            SweepJob::new("ok", tiny_report),
            SweepJob::new("boom", || panic!("synthetic divergence")),
            SweepJob::new("ok2", tiny_report),
        ];
        let results = run_jobs(jobs, 2);
        assert!(results[0].outcome.is_ok());
        let failure = results[1].failure().expect("panic captured");
        assert_eq!(failure.kind, FailKind::Failed);
        assert_eq!(failure.message, "synthetic divergence");
        assert!(results[1].secs().is_nan());
        assert!(results[2].outcome.is_ok(), "later jobs keep running");
    }

    #[test]
    fn a_sim_error_becomes_a_failed_result_with_its_display() {
        let jobs = vec![SweepJob::new("typed", || {
            Err(SimError::DeadlineExceeded {
                deadline: sim_core::SimTime::from_ms(1),
                now: sim_core::SimTime::from_ms(2),
                kernels_remaining: 3,
            })
        })];
        let results = run_jobs(jobs, 1);
        let failure = results[0].failure().expect("typed error captured");
        assert_eq!(failure.kind, FailKind::Failed);
        assert!(
            failure.message.contains("deadline exceeded"),
            "{}",
            failure.message
        );
        assert!(
            failure.message.contains("3 kernels remaining"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn the_watchdog_times_out_hung_jobs() {
        // The watchdog is process-global and other tests in this binary
        // run concurrently; 250ms is far above any tiny_report sim but
        // far below the synthetic hang.
        set_job_timeout(Some(Duration::from_millis(250)));
        let jobs = vec![
            SweepJob::new("hang", || {
                // Simulates a livelocked job; the leaked thread exits
                // when this sleep ends (well before the test binary).
                std::thread::sleep(Duration::from_secs(2));
                tiny_report()
            }),
            SweepJob::new("ok", tiny_report),
        ];
        let results = run_jobs(jobs, 2);
        set_job_timeout(None);
        let failure = results[0].failure().expect("hang captured");
        assert_eq!(failure.kind, FailKind::Timeout);
        assert!(failure.message.contains("wall-clock limit"));
        assert!(results[0].secs().is_nan());
        assert!(results[1].outcome.is_ok(), "other jobs unaffected");
    }

    #[test]
    fn empty_manifest_is_fine() {
        assert!(run_jobs(Vec::new(), 8).is_empty());
        log_timing("noop", &[]);
    }
}
