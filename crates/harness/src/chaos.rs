//! Chaos soak — seeded fault matrix under full conservation audit
//! (robustness gate, not a paper figure).
//!
//! Runs a matrix of fault-RNG seeds × strategies (CAIS, TP-NVLS) × fault
//! plans (fault-free, packet drops, bandwidth-degradation windows,
//! merge-table entry faults) over the LLaMA-7B L2 sub-layer, with the
//! conservation auditor enabled for every run: cadence ledger checks
//! during the run and quiescence verification at the end. Any
//! [`SimError::AuditViolation`](cais_engine::SimError) becomes a FAILED
//! line, so the soak doubles as a randomized search for bookkeeping leaks.
//!
//! On top of the audit, three metamorphic oracles compare runs that must
//! agree:
//!
//! 1. **Zero-fault determinism** — the fault-free plan run with two
//!    different fault seeds must be byte-identical (total time, events
//!    processed, semantic contributions) and report clean resilience
//!    counters; a zero-rate plan that perturbs anything is a gating bug.
//! 2. **Fault-plan invariance** — retransmission delivers every packet
//!    exactly once and degradation only stretches time, so each
//!    strategy's *semantic* counters (tile reduction contributions;
//!    CAIS merge-unit arrivals; NVLS multicast/reduce/pull counts) must
//!    match its own fault-free reference under every fault plan.
//! 3. **Semantic-reduction equivalence** — CAIS and TP-NVLS lower the
//!    *same* dataflow graph, whose per-tile contribution contract the
//!    engine enforces at delivery time; both must complete it under full
//!    audit for every (seed, plan) cell. Their raw reduction counters are
//!    intentionally not compared (8 KB in-switch merges vs 256 KB NVLS
//!    chunks), but each side's counters are pinned by oracle 2.
//!
//! The whole soak is deterministic in its seed list, so a failure
//! reproduces by rerunning the same scale.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use cais_engine::{ExecReport, SimError, SystemConfig};
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::{DegradeSpec, FaultPlan, MergeFaultSpec, SimDuration};

/// Root of the soak's fault-seed sequence.
pub const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// Fault-plan variants exercised for every (seed, strategy) pair. The
/// second fault-free variant reseeds the fault RNG streams to prove the
/// zero-rate plan is inert (oracle 1).
const PLANS: [&str; 5] = ["none", "none-reseeded", "drop", "degrade", "merge-faults"];

/// Strategies in column order.
const STRATEGIES: [&str; 2] = ["CAIS", "TP-NVLS"];

fn n_seeds(scale: Scale) -> usize {
    match scale {
        // 8 seeds x 2 strategies x 5 plans = 80 audited runs.
        Scale::Smoke => 8,
        Scale::Paper => 16,
    }
}

/// The fault plan for one (seed, variant) cell.
fn plan(variant: &str, seed: u64) -> FaultPlan {
    let base = FaultPlan::default().with_seed(seed);
    match variant {
        "none" => base,
        "none-reseeded" => FaultPlan::default().with_seed(seed ^ 0x5EED_0BAD),
        "drop" => base.with_drop_rate(1e-3),
        "degrade" => base.with_degrade(DegradeSpec {
            factor: 2.0,
            period: SimDuration::from_us(10),
            duration: SimDuration::from_us(3),
        }),
        "merge-faults" => base.with_merge_faults(MergeFaultSpec {
            rate: 0.02,
            degrade_threshold: 4,
        }),
        other => unreachable!("unknown plan variant {other}"),
    }
}

/// The audited system config for one cell.
fn audited_cfg(scale: Scale, faults: FaultPlan) -> SystemConfig {
    let mut cfg = scale.system();
    cfg.faults = faults;
    cfg.audit.enabled = true;
    // Tight enough that cadence checks fire many times per run, not just
    // the final quiescence pass.
    cfg.audit.cadence_events = 4096;
    cfg
}

fn job(label: String, cais: bool, model: &ModelConfig, cfg: &SystemConfig) -> SweepJob {
    let (model, cfg) = (model.clone(), cfg.clone());
    SweepJob::new(label, move || -> Result<ExecReport, SimError> {
        let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
        if cais {
            execute(&CaisStrategy::full(), &dfg, &cfg)
        } else {
            execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg)
        }
    })
}

fn stat(r: &ExecReport, key: &str) -> f64 {
    r.stat(key).unwrap_or(0.0)
}

/// Checks the metamorphic oracles for one (seed, strategy) group of plan
/// runs; pushes one message per violated oracle.
fn check_group(
    label: &str,
    cais: bool,
    runs: &[Option<&ExecReport>],
    violations: &mut Vec<String>,
) {
    let mut fail = |msg: String| violations.push(format!("{label}: {msg}"));
    let Some(reference) = runs[0] else {
        return; // run failure already reported by absorb_failures
    };
    // Oracle 1: the two fault-free runs are byte-identical and clean.
    if let Some(reseeded) = runs[1] {
        if reference.total != reseeded.total
            || reference.events_processed != reseeded.events_processed
            || reference.semantic_contribs != reseeded.semantic_contribs
        {
            fail(format!(
                "zero-fault plan not byte-identical under reseed: \
                 total {} vs {}, events {} vs {}, contribs {} vs {}",
                reference.total,
                reseeded.total,
                reference.events_processed,
                reseeded.events_processed,
                reference.semantic_contribs,
                reseeded.semantic_contribs
            ));
        }
    }
    if !reference.fabric.resilience().is_clean() {
        fail("fault-free reference reports resilience activity".into());
    }
    // Oracle 2: semantic counters invariant under every fault plan.
    for (vi, run) in runs.iter().enumerate().skip(1) {
        let Some(run) = run else { continue };
        let variant = PLANS[vi];
        if run.semantic_contribs != reference.semantic_contribs {
            fail(format!(
                "plan {variant}: semantic tile contributions {} != fault-free {}",
                run.semantic_contribs, reference.semantic_contribs
            ));
        }
        let keys: &[&str] = if cais {
            // Merge-entry faults may legally reroute merge-unit arrivals
            // through the degraded bypass path; the engine-level
            // `semantic_contribs` check above still pins the semantics.
            if variant == "merge-faults" {
                &[]
            } else {
                &["cais.load_requests", "cais.reduce_contribs"]
            }
        } else {
            &["nvls.multicasts", "nvls.reductions", "nvls.pulls"]
        };
        for key in keys {
            let (got, want) = (stat(run, key), stat(reference, key));
            if got != want {
                fail(format!("plan {variant}: {key} {got} != fault-free {want}"));
            }
        }
    }
}

/// Runs the soak and evaluates the oracles. One row per fault seed;
/// failed runs and violated oracles surface as FAILED lines.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let seeds: Vec<u64> = (0..n_seeds(scale))
        .map(|i| CHAOS_SEED ^ ((i as u64) * 0x9E37_79B9))
        .collect();

    let mut manifest: Vec<SweepJob> = Vec::new();
    for &seed in &seeds {
        for (si, strat) in STRATEGIES.iter().enumerate() {
            for variant in PLANS {
                let cfg = audited_cfg(scale, plan(variant, seed));
                manifest.push(job(
                    format!("seed={seed:#x}/{strat}/{variant}"),
                    si == 0,
                    &model,
                    &cfg,
                ));
            }
        }
    }
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("chaos", &results);

    let mut table = Table::new(
        "chaos-soak",
        "seeded fault matrix under full conservation audit (LLaMA-7B L2)",
        vec![
            "CAIS none (us)".into(),
            "CAIS drop (us)".into(),
            "CAIS degrade (us)".into(),
            "CAIS merge (us)".into(),
            "TP-NVLS none (us)".into(),
            "oracle fails".into(),
        ],
    );
    let mut oracle_violations: Vec<String> = Vec::new();
    let per_strategy = PLANS.len();
    let per_seed = STRATEGIES.len() * per_strategy;
    for (i, &seed) in seeds.iter().enumerate() {
        let base = i * per_seed;
        let mut row_fails = 0usize;
        for (si, strat) in STRATEGIES.iter().enumerate() {
            let group: Vec<Option<&ExecReport>> = (0..per_strategy)
                .map(|vi| results[base + si * per_strategy + vi].report())
                .collect();
            let before = oracle_violations.len();
            check_group(
                &format!("seed={seed:#x}/{strat}"),
                si == 0,
                &group,
                &mut oracle_violations,
            );
            row_fails += oracle_violations.len() - before;
        }
        let us = |si: usize, vi: usize| results[base + si * per_strategy + vi].secs() * 1e6;
        table.push(
            format!("seed {seed:#x}"),
            vec![
                us(0, 0),
                us(0, 2),
                us(0, 3),
                us(0, 4),
                us(1, 0),
                row_fails as f64,
            ],
        );
    }
    table.absorb_failures(&results);
    table.failures.extend(oracle_violations);
    table.notes = format!(
        "{} audited runs ({} seeds x {} strategies x {} plans); every run \
         verifies conservation ledgers at a {}-event cadence plus end-of-run \
         quiescence; oracle fails counts metamorphic-oracle violations \
         (zero-fault determinism, fault-plan counter invariance)",
        seeds.len() * per_seed,
        seeds.len(),
        STRATEGIES.len(),
        PLANS.len(),
        4096,
    );
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_is_well_formed_and_clean() {
        let tables = run(Scale::Smoke, 2);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert!(t.failures.is_empty(), "{:?}", t.failures);
        assert!(t.timeouts.is_empty(), "{:?}", t.timeouts);
        assert_eq!(t.rows.len(), n_seeds(Scale::Smoke));
        for (label, row) in &t.rows {
            assert_eq!(*row.last().expect("cells"), 0.0, "{label} oracle fails");
            assert!(row[..5].iter().all(|v| *v > 0.0), "{label} has empty cells");
        }
    }
}
