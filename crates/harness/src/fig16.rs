//! Fig. 16 — bandwidth utilization over time (L2 sub-layer, LLaMA-7B).
//!
//! Time series for CAIS-Base, CAIS-Partial and full CAIS. The paper
//! shows CAIS sustaining near-peak utilization while the partial
//! configuration dips under contention and the base configuration
//! fluctuates at low levels.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_core::CaisStrategy;
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};
use sim_core::SimDuration;

/// Runs the experiment; rows are time buckets. One sweep job per CAIS
/// variant.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let model = scale.model(&ModelConfig::llama_7b());
    let mut cfg = scale.system();
    let bucket = match scale {
        Scale::Paper => SimDuration::from_us(10),
        Scale::Smoke => SimDuration::from_us(5),
    };
    cfg.fabric.series_bucket = Some(bucket);

    let mut table = Table::new(
        "fig16",
        "link utilization over time, L2 sub-layer (%)",
        vec!["CAIS-Base".into(), "CAIS-Partial".into(), "CAIS".into()],
    );
    type Variant = (&'static str, fn() -> CaisStrategy);
    let variants: [Variant; 3] = [
        ("CAIS-Base", CaisStrategy::base),
        ("CAIS-Partial", CaisStrategy::partial),
        ("CAIS", CaisStrategy::full),
    ];
    let manifest: Vec<SweepJob> = variants
        .iter()
        .map(|&(name, make)| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(name, move || {
                let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
                execute(&make(), &dfg, &cfg)
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig16", &results);
    let series: Vec<Vec<f64>> = results
        .iter()
        .map(|r| {
            r.report()
                .map(|rep| rep.fabric.mean_series())
                .unwrap_or_default()
        })
        .collect();
    let len = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in 0..len {
        let row: Vec<f64> = series
            .iter()
            .map(|s| s.get(i).copied().unwrap_or(0.0) * 100.0)
            .collect();
        table.push(format!("t={}us", i as u64 * bucket.as_ns() / 1000), row);
    }
    table.absorb_failures(&results);
    table.notes = "each row is one time bucket; CAIS should sustain the highest steady \
                   utilization and finish first (zeros after completion)"
        .into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cais_sustains_higher_peak_utilization() {
        let t = &run(Scale::Smoke, 1)[0];
        let peak = |col: usize| t.rows.iter().map(|(_, v)| v[col]).fold(0.0f64, f64::max);
        assert!(
            peak(2) >= peak(0),
            "CAIS peak {:.1}% vs base peak {:.1}%",
            peak(2),
            peak(0)
        );
        assert!(!t.rows.is_empty());
    }
}
