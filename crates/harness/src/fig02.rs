//! Fig. 2 — computation vs. communication time when scaling up.
//!
//! LLaMA-7B under TP with NVLS collectives, varying the TP degree.
//! The paper's observation: communication overtakes computation beyond
//! 4–8 GPUs; at 8 GPUs communication is ~1.6x computation.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_baselines::BaselineStrategy;
use cais_engine::strategy::execute;
use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

/// Runs the experiment: one sweep job per GPU count.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    let gpu_counts: Vec<usize> = match scale {
        Scale::Paper => vec![2, 4, 8, 16],
        Scale::Smoke => vec![2, 4],
    };
    // The figure's premise (per-GPU compute shrinking against a fixed
    // collective volume) needs real work to dominate launch overheads,
    // so the smoke variant halves rather than quarters the model.
    let model = match scale {
        Scale::Paper => ModelConfig::llama_7b(),
        Scale::Smoke => ModelConfig {
            hidden: 2048,
            ffn_hidden: 5632,
            heads: 16,
            seq_len: 1536,
            batch: 2,
            ..ModelConfig::llama_7b()
        },
    };
    let mut table = Table::new(
        "fig02",
        "LLaMA-7B per-layer compute vs. communication time (TP-NVLS)",
        vec!["compute_us".into(), "comm_us".into(), "comm/compute".into()],
    );
    let manifest: Vec<SweepJob> = gpu_counts
        .iter()
        .map(|&p| {
            let (scale, model) = (scale, model.clone());
            SweepJob::new(format!("tp-nvls/{p}gpus"), move || {
                let mut cfg = scale.system();
                cfg.n_gpus = p;
                cfg.fabric = noc_sim::FabricConfig::default_for(p, cfg.n_planes);
                // This figure is about the compute/communication balance,
                // not launch noise; quiesce the host-side skew so the
                // per-layer times reflect work, not jitter.
                cfg.gpu.launch_skew = sim_core::SimDuration::ZERO;
                cfg.gpu.dispatch_jitter = sim_core::SimDuration::from_us(1);
                let strategy = BaselineStrategy::tp_nvls();
                let dfg = transformer_layer(&model, p as u64, TpMode::BasicTp, Pass::Forward);
                execute(&strategy, &dfg, &cfg)
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig02", &results);
    for (res, p) in results.iter().zip(&gpu_counts) {
        let (compute, comm) = match res.report() {
            Some(report) => {
                let comm = report.kernel_time_with_prefix("coll.").as_us_f64();
                let total_named: f64 = report
                    .kernel_spans
                    .values()
                    .filter(|s| s.gpu == sim_core::GpuId(0))
                    .map(|s| s.duration().as_us_f64())
                    .sum();
                (total_named - comm, comm)
            }
            None => (f64::NAN, f64::NAN),
        };
        let ratio = if compute > 0.0 {
            comm / compute
        } else if compute.is_nan() {
            f64::NAN
        } else {
            0.0
        };
        table.push(format!("{p} GPUs"), vec![compute, comm, ratio]);
    }
    table.absorb_failures(&results);
    table.notes = "paper: communication overtakes compute beyond 4-8 GPUs; ~1.6x at 8 GPUs".into();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_share_grows_with_gpus() {
        let tables = run(Scale::Smoke, 1);
        let t = &tables[0];
        let r2 = t.cell("2 GPUs", "comm/compute").unwrap();
        let r4 = t.cell("4 GPUs", "comm/compute").unwrap();
        assert!(
            r4 > 1.2 * r2,
            "communication share must grow with TP degree: {r2} vs {r4}"
        );
    }
}
