//! Fig. 13 — merge-table sizing and the coordination ablation.
//!
//! (a) Minimal Merging-Table size needed to merge every mergeable
//! request, with and without merging-aware TB coordination: the paper
//! reports <40 KB/port coordinated vs. up to ~250 KB/port uncoordinated
//! (an 87% reduction). Measured here as the peak per-port occupancy of
//! an *unbounded* table.
//!
//! (b) The cumulative coordination ablation: average waiting time
//! between the earliest and latest request for the same address, from
//! ~35 µs uncoordinated down to <3 µs with all mechanisms.

use crate::runner::{Scale, Table};
use cais_core::strategies::DEFAULT_PACKET_BYTES;
use cais_core::{CaisStrategy, CoordinationOpts};
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};

/// Runs both halves of the experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![run_table_size(scale), run_ablation(scale)]
}

/// Fig. 13a: minimal required merge-table size per sub-layer.
pub fn run_table_size(scale: Scale) -> Table {
    let models: Vec<ModelConfig> = match scale {
        Scale::Paper => ModelConfig::table1(),
        Scale::Smoke => vec![Scale::Smoke.model(&ModelConfig::llama_7b())],
    };
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1],
    };
    // Peak occupancy is measured in simulator bytes; report it on the
    // paper's axis by converting through entry counts (entry = one
    // packet-granularity session; the paper's entries are 128 B).
    let to_paper_kb = |bytes: f64| bytes / (DEFAULT_PACKET_BYTES + 16) as f64 * 128.0 / 1024.0;
    let mut table = Table::new(
        "fig13a",
        "minimal merge-table size to merge all requests (paper-equivalent KB/port)",
        vec![
            "coordinated_kb".into(),
            "uncoordinated_kb".into(),
            "reduction_%".into(),
        ],
    );
    let cfg = scale.system();
    for model in &models {
        for which in &sublayers {
            let dfg = sublayer(model, cfg.tp(), *which);
            let coord = execute(
                &CaisStrategy::full().with_merge_table(None),
                &dfg,
                &cfg,
            );
            let uncoord = execute(
                &CaisStrategy::full()
                    .with_coordination("w/o-coord", CoordinationOpts::none())
                    .with_merge_table(None),
                &dfg,
                &cfg,
            );
            let c = to_paper_kb(coord.stat("cais.peak_port_occupancy").unwrap_or(0.0));
            let u = to_paper_kb(uncoord.stat("cais.peak_port_occupancy").unwrap_or(0.0));
            let red = if u > 0.0 { (1.0 - c / u) * 100.0 } else { 0.0 };
            table.push(format!("{} {}", model.name, which.label()), vec![c, u, red]);
        }
    }
    table.notes = "paper: coordinated <40 KB on every sub-layer, uncoordinated up to 250 KB \
                   (87% reduction)"
        .into();
    table
}

/// Fig. 13b: the cumulative coordination ablation ladder.
pub fn run_ablation(scale: Scale) -> Table {
    let model = scale.model(&ModelConfig::llama_7b());
    let cfg = scale.system();
    let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
    let mut table = Table::new(
        "fig13b",
        "mean request spread per merged address (us)",
        vec!["spread_us".into()],
    );
    for (name, opts) in CoordinationOpts::ladder() {
        let report = execute(
            &CaisStrategy::full()
                .with_coordination(name, opts)
                .with_merge_table(None),
            &dfg,
            &cfg,
        );
        let spread = report
            .mean_request_spread
            .map(|d| d.as_us_f64())
            .unwrap_or(0.0);
        table.push(name, vec![spread]);
    }
    table.notes = "paper: 35 us uncoordinated falling below 3 us with all mechanisms".into();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_shrinks_required_table() {
        let t = run_table_size(Scale::Smoke);
        for (label, v) in &t.rows {
            let (c, u) = (v[0], v[1]);
            assert!(
                c < u,
                "{label}: coordinated {c:.1} KB must need less than uncoordinated {u:.1} KB"
            );
        }
    }

    #[test]
    fn ablation_monotonically_tightens_spread() {
        let t = run_ablation(Scale::Smoke);
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!(
            last < first,
            "full coordination ({last:.2} us) must beat baseline ({first:.2} us)"
        );
    }
}
