//! Fig. 13 — merge-table sizing and the coordination ablation.
//!
//! (a) Minimal Merging-Table size needed to merge every mergeable
//! request, with and without merging-aware TB coordination: the paper
//! reports <40 KB/port coordinated vs. up to ~250 KB/port uncoordinated
//! (an 87% reduction). Measured here as the peak per-port occupancy of
//! an *unbounded* table.
//!
//! (b) The cumulative coordination ablation: average waiting time
//! between the earliest and latest request for the same address, from
//! ~35 µs uncoordinated down to <3 µs with all mechanisms.

use crate::runner::{Scale, Table};
use crate::sweep::{self, SweepJob};
use cais_core::strategies::DEFAULT_PACKET_BYTES;
use cais_core::{CaisStrategy, CoordinationOpts};
use cais_engine::strategy::execute;
use llm_workload::{sublayer, ModelConfig, SubLayer};

/// Runs both halves of the experiment.
pub fn run(scale: Scale, jobs: usize) -> Vec<Table> {
    vec![run_table_size(scale, jobs), run_ablation(scale, jobs)]
}

/// Fig. 13a: minimal required merge-table size per sub-layer. Two sweep
/// jobs (coordinated, uncoordinated) per model × sub-layer cell.
pub fn run_table_size(scale: Scale, jobs: usize) -> Table {
    let models: Vec<ModelConfig> = match scale {
        Scale::Paper => ModelConfig::table1(),
        Scale::Smoke => vec![Scale::Smoke.model(&ModelConfig::llama_7b())],
    };
    let sublayers: Vec<SubLayer> = match scale {
        Scale::Paper => SubLayer::ALL.to_vec(),
        Scale::Smoke => vec![SubLayer::L1],
    };
    // Peak occupancy is measured in simulator bytes; report it on the
    // paper's axis by converting through entry counts (entry = one
    // packet-granularity session; the paper's entries are 128 B).
    let to_paper_kb = |bytes: f64| bytes / (DEFAULT_PACKET_BYTES + 16) as f64 * 128.0 / 1024.0;
    let mut table = Table::new(
        "fig13a",
        "minimal merge-table size to merge all requests (paper-equivalent KB/port)",
        vec![
            "coordinated_kb".into(),
            "uncoordinated_kb".into(),
            "reduction_%".into(),
        ],
    );
    let cfg = scale.system();
    let cells: Vec<(&ModelConfig, SubLayer)> = models
        .iter()
        .flat_map(|m| sublayers.iter().map(move |w| (m, *w)))
        .collect();
    let manifest: Vec<SweepJob> = cells
        .iter()
        .flat_map(|(model, which)| {
            let mk = |coordinated: bool| {
                let (model, cfg, which) = ((*model).clone(), cfg.clone(), *which);
                let tag = if coordinated { "coord" } else { "uncoord" };
                SweepJob::new(
                    format!("{}/{}/{tag}", model.name, which.label()),
                    move || {
                        let dfg = sublayer(&model, cfg.tp(), which);
                        let mut strategy = CaisStrategy::full().with_merge_table(None);
                        if !coordinated {
                            strategy =
                                strategy.with_coordination("w/o-coord", CoordinationOpts::none());
                        }
                        execute(&strategy, &dfg, &cfg)
                    },
                )
            };
            [mk(true), mk(false)]
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig13a", &results);
    for (pair, (model, which)) in results.chunks(2).zip(&cells) {
        let occupancy = |r: &sweep::JobResult| {
            r.report()
                .map(|rep| rep.stat("cais.peak_port_occupancy").unwrap_or(0.0))
                .unwrap_or(f64::NAN)
        };
        let c = to_paper_kb(occupancy(&pair[0]));
        let u = to_paper_kb(occupancy(&pair[1]));
        let red = if u > 0.0 {
            (1.0 - c / u) * 100.0
        } else if u.is_nan() {
            f64::NAN
        } else {
            0.0
        };
        table.push(format!("{} {}", model.name, which.label()), vec![c, u, red]);
    }
    table.absorb_failures(&results);
    table.notes = "paper: coordinated <40 KB on every sub-layer, uncoordinated up to 250 KB \
                   (87% reduction)"
        .into();
    table
}

/// Fig. 13b: the cumulative coordination ablation ladder. One sweep job
/// per ladder rung.
pub fn run_ablation(scale: Scale, jobs: usize) -> Table {
    let model = scale.model(&ModelConfig::llama_7b());
    let cfg = scale.system();
    let mut table = Table::new(
        "fig13b",
        "mean request spread per merged address (us)",
        vec!["spread_us".into()],
    );
    let ladder = CoordinationOpts::ladder();
    let manifest: Vec<SweepJob> = ladder
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let (model, cfg) = (model.clone(), cfg.clone());
            SweepJob::new(*name, move || {
                let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
                let (name, opts) = CoordinationOpts::ladder().swap_remove(i);
                execute(
                    &CaisStrategy::full()
                        .with_coordination(name, opts)
                        .with_merge_table(None),
                    &dfg,
                    &cfg,
                )
            })
        })
        .collect();
    let results = sweep::run_jobs(manifest, jobs);
    sweep::log_timing("fig13b", &results);
    for (res, (name, _)) in results.iter().zip(&ladder) {
        let spread = res
            .report()
            .map(|r| r.mean_request_spread.map(|d| d.as_us_f64()).unwrap_or(0.0))
            .unwrap_or(f64::NAN);
        table.push(*name, vec![spread]);
    }
    table.absorb_failures(&results);
    table.notes = "paper: 35 us uncoordinated falling below 3 us with all mechanisms".into();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordination_shrinks_required_table() {
        let t = run_table_size(Scale::Smoke, 1);
        for (label, v) in &t.rows {
            let (c, u) = (v[0], v[1]);
            assert!(
                c < u,
                "{label}: coordinated {c:.1} KB must need less than uncoordinated {u:.1} KB"
            );
        }
    }

    #[test]
    fn ablation_monotonically_tightens_spread() {
        let t = run_ablation(Scale::Smoke, 1);
        let first = t.rows.first().unwrap().1[0];
        let last = t.rows.last().unwrap().1[0];
        assert!(
            last < first,
            "full coordination ({last:.2} us) must beat baseline ({first:.2} us)"
        );
    }
}
