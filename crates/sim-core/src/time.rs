//! Simulation time base.
//!
//! [`SimTime`] is an absolute instant and [`SimDuration`] a span, both in
//! integer picoseconds. Keeping the two distinct catches the classic
//! "added two timestamps" bug at compile time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;

/// An absolute simulation instant, in picoseconds since simulation start.
///
/// ```
/// use sim_core::SimTime;
/// let t = SimTime::from_us(2);
/// assert_eq!(t.as_ns(), 2_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// ```
/// use sim_core::SimDuration;
/// assert_eq!(SimDuration::from_ns(3) * 4, SimDuration::from_ns(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for comparisons.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Time as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is after self"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero when
    /// `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a span from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a span from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a span from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Span as fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Span as fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Ratio of `self` to `other` as `f64`; returns 0 when `other` is zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimTime::from_us(7).as_ns(), 7_000);
        assert_eq!(SimTime::from_ms(7).as_ps(), 7 * PS_PER_MS);
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + SimDuration::from_ns(50);
        assert_eq!(t.as_ns(), 150);
        assert_eq!(t.since(SimTime::from_ns(100)), SimDuration::from_ns(50));
        assert_eq!(SimDuration::from_ns(10) * 3, SimDuration::from_ns(30));
        assert_eq!(SimDuration::from_ns(30) / 3, SimDuration::from_ns(10));
    }

    #[test]
    #[should_panic(expected = "earlier instant is after self")]
    fn since_panics_when_reversed() {
        let _ = SimTime::from_ns(1).since(SimTime::from_ns(2));
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(
            SimTime::from_ns(1).saturating_since(SimTime::from_ns(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(SimDuration::from_ns(5).ratio(SimDuration::ZERO), 0.0);
        assert!((SimDuration::from_ns(5).ratio(SimDuration::from_ns(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
        assert_eq!(format!("{}", SimTime::from_us(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_ns(1500)), "1.500us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }
}
