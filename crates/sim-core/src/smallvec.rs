//! Inline small-vector storage: a `Vec`-like container that keeps up to
//! `N` elements inline and only touches the heap when it spills.
//!
//! Hot-path collections in the simulator (waiter lists, per-tick effect
//! buffers) are almost always tiny — one or two entries — but `Vec`
//! heap-allocates on the first push. [`SmallVec`] stores the common case
//! in place. Once a small vector spills it stays spilled (`clear` keeps
//! the heap buffer), so recycled scratch buffers retain their capacity.
//!
//! Hand-rolled because the workspace takes no external dependencies; the
//! API is the small subset the simulator needs (`push`, `clear`, slice
//! access via `Deref`, `Extend`).

use std::fmt;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;

/// A vector holding up to `N` elements inline before spilling to the
/// heap. See the module docs.
pub struct SmallVec<T, const N: usize> {
    /// Live inline element count; meaningless once spilled.
    len: usize,
    spilled: bool,
    inline: [MaybeUninit<T>; N],
    heap: Vec<T>,
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            len: 0,
            spilled: false,
            // SAFETY: an array of `MaybeUninit` is trivially "initialized".
            inline: unsafe { MaybeUninit::uninit().assume_init() },
            heap: Vec::new(),
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.len
        }
    }

    /// True when no elements are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `val`, spilling to the heap on overflow of the inline
    /// buffer.
    pub fn push(&mut self, val: T) {
        if !self.spilled {
            if self.len < N {
                self.inline[self.len].write(val);
                self.len += 1;
                return;
            }
            self.spill();
        }
        self.heap.push(val);
    }

    /// Removes the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.spilled {
            self.heap.pop()
        } else if self.len > 0 {
            self.len -= 1;
            // SAFETY: slot `len` was live until the decrement above.
            Some(unsafe { self.inline[self.len].as_ptr().read() })
        } else {
            None
        }
    }

    /// Drops all elements. A spilled vector keeps its heap capacity, so
    /// recycled buffers do not re-allocate.
    pub fn clear(&mut self) {
        if self.spilled {
            self.heap.clear();
        } else {
            let n = self.len;
            self.len = 0;
            // SAFETY: the first `n` inline slots were live; `len` is
            // zeroed first so a panic in a destructor cannot double-drop.
            unsafe {
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                    self.inline.as_mut_ptr() as *mut T,
                    n,
                ));
            }
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spilled {
            &self.heap
        } else {
            // SAFETY: the first `len` inline slots are initialized.
            unsafe { std::slice::from_raw_parts(self.inline.as_ptr() as *const T, self.len) }
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        if self.spilled {
            &mut self.heap
        } else {
            // SAFETY: the first `len` inline slots are initialized.
            unsafe { std::slice::from_raw_parts_mut(self.inline.as_mut_ptr() as *mut T, self.len) }
        }
    }

    /// Moves the inline elements onto the heap.
    #[cold]
    fn spill(&mut self) {
        debug_assert!(!self.spilled);
        self.heap.reserve(N * 2);
        let n = self.len;
        self.len = 0;
        // SAFETY: the first `n` inline slots are live; ownership moves to
        // the heap vec and `len` is zeroed so they are not dropped twice.
        unsafe {
            let src = self.inline.as_ptr() as *const T;
            for i in 0..n {
                self.heap.push(src.add(i).read());
            }
        }
        self.spilled = true;
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        out.extend(self.as_slice().iter().cloned());
        out
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<[T; M]> for SmallVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_under_capacity() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v, [0, 1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn spills_and_keeps_order() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(v.pop(), Some(9));
    }

    #[test]
    fn clear_and_take_work() {
        let mut v: SmallVec<String, 2> = SmallVec::new();
        v.push("a".into());
        v.push("b".into());
        v.push("c".into()); // spills
        let taken = std::mem::take(&mut v);
        assert_eq!(taken.len(), 3);
        assert!(v.is_empty());
        v.push("d".into());
        assert_eq!(v[0], "d");
    }

    #[test]
    fn drops_inline_elements() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 4> = SmallVec::new();
            v.push(probe.clone());
            v.push(probe.clone());
            assert_eq!(Rc::strong_count(&probe), 3);
        }
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn clone_and_iterate() {
        let mut v: SmallVec<u32, 3> = (0..3).collect();
        let w = v.clone();
        assert_eq!(v, w);
        let sum: u32 = (&v).into_iter().sum();
        assert_eq!(sum, 3);
        v.clear();
        assert!(v.is_empty());
        assert_eq!(w.len(), 3);
    }
}
