//! Bandwidth arithmetic.

use crate::time::SimDuration;
use std::fmt;

/// A link or memory bandwidth, stored as bytes per second.
///
/// Transfer-time arithmetic is done in `u128` picosecond space so that
/// multi-gigabyte transfers at terabyte-class rates neither overflow nor
/// lose precision.
///
/// ```
/// use sim_core::Bandwidth;
/// let bw = Bandwidth::gbps(100.0); // 100 GB/s
/// assert_eq!(bw.transfer_time(100).as_ns(), 1); // 100 B / 100 GB/s = 1 ns
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn bytes_per_sec(bytes_per_sec: f64) -> Bandwidth {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth { bytes_per_sec }
    }

    /// Creates a bandwidth from gigabytes per second (10^9 bytes).
    pub fn gbps(gb_per_sec: f64) -> Bandwidth {
        Bandwidth::bytes_per_sec(gb_per_sec * 1e9)
    }

    /// Bandwidth in bytes per second.
    pub fn as_bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Bandwidth in GB/s (10^9 bytes).
    pub fn as_gbps(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// Time to serialize `bytes` at this rate, rounded up to 1 ps minimum
    /// for nonzero transfers so events always make progress.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ps = (bytes as f64) * 1e12 / self.bytes_per_sec;
        SimDuration::from_ps((ps.ceil() as u64).max(1))
    }

    /// Bytes that can be moved in `dur` at this rate (truncating).
    pub fn bytes_in(self, dur: SimDuration) -> u64 {
        (self.bytes_per_sec * dur.as_secs_f64()) as u64
    }

    /// This bandwidth divided evenly `n` ways (e.g. striping across planes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(self, n: usize) -> Bandwidth {
        assert!(n > 0, "cannot split bandwidth zero ways");
        Bandwidth::bytes_per_sec(self.bytes_per_sec / n as f64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GB/s", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_basics() {
        let bw = Bandwidth::gbps(1.0);
        assert_eq!(bw.transfer_time(0), SimDuration::ZERO);
        assert_eq!(bw.transfer_time(1_000).as_ns(), 1_000);
        // Sub-ps transfers round up to 1 ps so progress is guaranteed.
        assert!(Bandwidth::gbps(10_000.0).transfer_time(1).as_ps() >= 1);
    }

    #[test]
    fn bytes_in_inverts_transfer_time() {
        let bw = Bandwidth::gbps(450.0);
        let t = bw.transfer_time(1 << 20);
        let b = bw.bytes_in(t);
        let err = (b as f64 - (1 << 20) as f64).abs() / (1 << 20) as f64;
        assert!(err < 1e-3, "round trip error {err}");
    }

    #[test]
    fn split_divides_rate() {
        let bw = Bandwidth::gbps(450.0).split(4);
        assert!((bw.as_gbps() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn large_transfer_does_not_overflow() {
        let bw = Bandwidth::gbps(900.0);
        let t = bw.transfer_time(16 * (1 << 30)); // 16 GiB
        assert!((t.as_ms_f64() - 19.088).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(0.0);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Bandwidth::gbps(112.5)), "112.5GB/s");
    }
}
