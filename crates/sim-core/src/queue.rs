//! Deterministic discrete-event queue.
//!
//! Internally a bucketed calendar queue: a time wheel of `N_BUCKETS`
//! buckets of `1 << DAY_SHIFT` picoseconds each, an occupancy bitmap to
//! jump to the next non-empty bucket in a few word scans, and a sorted
//! overflow heap for events beyond the wheel's window. The bucket under
//! the cursor is kept staged in a vector sorted descending by
//! `(time, seq)`, so `peek_time` is a field read and `pop` is a
//! `Vec::pop`. Pushes behind the cursor rewind it; pushes before the
//! window (possible only through deliberately out-of-order use) trigger
//! a full rebuild. The observable contract is identical to a binary
//! heap ordered by `(time, seq)`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the bucket width in picoseconds (8.192 ns per bucket).
const DAY_SHIFT: u32 = 13;
/// Number of wheel buckets; the window spans ~17 us. Sized so the
/// wheel covers the event horizon of a busy run (queue peaks sit in
/// the low thousands, clustered near the cursor) while keeping
/// construction and teardown of per-component queues cheap; rarer
/// far-future events (timers) ride the overflow heap.
const N_BUCKETS: usize = 1 << 11;
const DAY_MASK: u64 = N_BUCKETS as u64 - 1;

fn day_of(t: SimTime) -> u64 {
    t.as_ps() >> DAY_SHIFT
}

/// A priority queue of `(SimTime, E)` events with deterministic FIFO
/// ordering among events scheduled for the same instant.
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), 'x');
/// q.push(SimTime::from_ns(5), 'y');
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'x')));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Entries of the cursor day, sorted descending by `(time, seq)`:
    /// the earliest event is last. Non-empty whenever `len > 0`.
    staged: Vec<Entry<E>>,
    /// Day the staged entries belong to.
    cur_day: u64,
    /// Buckets hold days `[win_lo, win_lo + N_BUCKETS)`, at index
    /// `day & DAY_MASK`.
    win_lo: u64,
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket; set iff the bucket is non-empty.
    occ: Vec<u64>,
    /// Events at days `>= win_lo + N_BUCKETS`, earliest first.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    seq: u64,
    pops: u64,
    peak: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then the
        // lowest sequence number) surfaces first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            staged: Vec::new(),
            cur_day: 0,
            win_lo: 0,
            buckets: (0..N_BUCKETS).map(|_| Vec::new()).collect(),
            occ: vec![0u64; N_BUCKETS / 64],
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
            pops: 0,
            peak: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let e = Entry { time, seq, event };
        self.len += 1;
        self.peak = self.peak.max(self.len);
        if self.len == 1 {
            // Empty queue: re-anchor the window on this event.
            self.win_lo = day_of(time);
            self.cur_day = self.win_lo;
            self.staged.push(e);
            return;
        }
        let day = day_of(time);
        if day == self.cur_day {
            let i = self
                .staged
                .partition_point(|x| (x.time, x.seq) > (time, seq));
            self.staged.insert(i, e);
        } else if day >= self.win_lo + N_BUCKETS as u64 {
            self.overflow.push(e);
        } else if day > self.cur_day {
            self.bucket_insert(e, day);
        } else if day >= self.win_lo {
            // Rewind: the event precedes the staged day. Unstage it and
            // restart the cursor on the new day.
            let prev = self.cur_day;
            let b = (prev & DAY_MASK) as usize;
            std::mem::swap(&mut self.buckets[b], &mut self.staged);
            self.occ[b / 64] |= 1 << (b % 64);
            self.cur_day = day;
            self.bucket_insert(e, day);
            self.restage();
        } else {
            // Before the window entirely: rebuild around the new minimum.
            self.rebuild(e);
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.staged.pop()?;
        self.len -= 1;
        self.pops += 1;
        if self.staged.is_empty() && self.len > 0 {
            self.restage();
        }
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.staged.last().map(|e| e.time)
    }

    /// Removes the earliest event only if it is scheduled at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.staged.clear();
        for w in 0..self.occ.len() {
            let mut word = self.occ[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.buckets[w * 64 + bit].clear();
                word &= word - 1;
            }
            self.occ[w] = 0;
        }
        self.overflow.clear();
        self.len = 0;
    }

    /// Total events popped over the queue's lifetime (perf accounting).
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// High-water mark of pending events (perf accounting).
    pub fn peak_len(&self) -> usize {
        self.peak
    }

    fn bucket_insert(&mut self, e: Entry<E>, day: u64) {
        debug_assert!(day >= self.cur_day && day < self.win_lo + N_BUCKETS as u64);
        let b = (day & DAY_MASK) as usize;
        self.buckets[b].push(e);
        self.occ[b / 64] |= 1 << (b % 64);
    }

    /// Re-establishes the staged-day invariant after the cursor day ran
    /// dry (or moved): finds the next non-empty bucket — sliding the
    /// window over the overflow heap if the wheel is exhausted — and
    /// stages it, sorted.
    fn restage(&mut self) {
        debug_assert!(self.staged.is_empty() && self.len > 0);
        loop {
            if let Some(day) = self.next_occupied_day() {
                self.cur_day = day;
                let b = (day & DAY_MASK) as usize;
                std::mem::swap(&mut self.buckets[b], &mut self.staged);
                self.occ[b / 64] &= !(1 << (b % 64));
                self.staged
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
                return;
            }
            // Wheel exhausted: everything pending is in the overflow.
            // Slide the window to start at its earliest day.
            let top = self.overflow.peek().expect("len > 0 but nothing pending");
            self.win_lo = day_of(top.time);
            self.cur_day = self.win_lo;
            let win_end = self.win_lo + N_BUCKETS as u64;
            while let Some(e) = self.overflow.peek() {
                if day_of(e.time) >= win_end {
                    break;
                }
                let e = self.overflow.pop().expect("peeked");
                let day = day_of(e.time);
                self.bucket_insert(e, day);
            }
        }
    }

    /// First day in `[cur_day, win_lo + N_BUCKETS)` whose bucket is
    /// non-empty, via the occupancy bitmap.
    fn next_occupied_day(&self) -> Option<u64> {
        let win_end = self.win_lo + N_BUCKETS as u64;
        let mut day = self.cur_day;
        while day < win_end {
            let b = (day & DAY_MASK) as usize;
            let bit = (b % 64) as u32;
            let word = self.occ[b / 64] >> bit;
            if word != 0 {
                let cand = day + word.trailing_zeros() as u64;
                return (cand < win_end).then_some(cand);
            }
            day += 64 - bit as u64;
        }
        None
    }

    /// Re-anchors the whole structure on a push before the window (only
    /// reachable by popping forward and then pushing into the past).
    fn rebuild(&mut self, e: Entry<E>) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len);
        all.push(e);
        all.append(&mut self.staged);
        for w in 0..self.occ.len() {
            let mut word = self.occ[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                all.append(&mut self.buckets[w * 64 + bit]);
                word &= word - 1;
            }
            self.occ[w] = 0;
        }
        all.extend(self.overflow.drain());
        let min_day = all
            .iter()
            .map(|x| day_of(x.time))
            .min()
            .expect("rebuild with at least one entry");
        self.win_lo = min_day;
        self.cur_day = min_day;
        let win_end = min_day + N_BUCKETS as u64;
        for x in all {
            let day = day_of(x.time);
            if day == min_day {
                self.staged.push(x);
            } else if day < win_end {
                self.bucket_insert(x, day);
            } else {
                self.overflow.push(x);
            }
        }
        self.staged
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.time, e.seq)));
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(20), 'b');
        assert_eq!(q.pop_due(SimTime::from_ns(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_ns(10)),
            Some((SimTime::from_ns(10), 'a'))
        );
        assert_eq!(q.pop_due(SimTime::from_ns(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn events_beyond_window_slide_in_order() {
        // Spread events over many windows (the wheel covers ~67 us) and
        // mix in same-bucket neighbours; pops must be globally sorted.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..500)
            .map(|i: u64| (i * 7_919_333) % 10_000_000) // up to 10 ms, in ps
            .collect();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(*t), i);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_ps())).collect();
        assert_eq!(popped, sorted);
        assert_eq!(q.pops(), 500);
        assert_eq!(q.peak_len(), 500);
    }

    #[test]
    fn push_into_the_past_after_pops_still_orders() {
        // Exercises the rewind and rebuild paths: pop far forward, then
        // push behind the cursor (and before the window).
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(500), 'z');
        q.push(SimTime::from_ns(10), 'a');
        assert_eq!(q.pop().map(|(_, e)| e), Some('a'));
        // Behind the cursor but inside the window.
        q.push(SimTime::from_us(499), 'y');
        // Far before the window start.
        q.push(SimTime::from_ns(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['b', 'y', 'z']);
    }

    /// The original binary-heap implementation, kept as the ordering
    /// oracle for the calendar queue.
    struct ReferenceQueue {
        heap: BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>>,
        seq: u64,
    }

    impl ReferenceQueue {
        fn new() -> Self {
            ReferenceQueue {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, t: SimTime, v: u32) {
            self.heap.push(std::cmp::Reverse((t.as_ps(), self.seq, v)));
            self.seq += 1;
        }
        fn pop(&mut self) -> Option<(u64, u64, u32)> {
            self.heap.pop().map(|std::cmp::Reverse(x)| x)
        }
    }

    #[test]
    fn matches_reference_heap_under_random_interleavings() {
        use crate::rng::JitterRng;
        for seed in 0..8u64 {
            let mut rng = JitterRng::seed_from(0xCA15 ^ seed);
            let mut q = EventQueue::new();
            let mut r = ReferenceQueue::new();
            let mut last = SimTime::ZERO;
            for step in 0..4_000u32 {
                if rng.next_below(3) < 2 {
                    // Push: cluster near the last popped time, with
                    // occasional same-instant repeats and far-future
                    // outliers to cross the wheel window.
                    let t = match rng.next_below(10) {
                        0 => last,
                        1..=6 => last + crate::time::SimDuration::from_ps(rng.next_below(50_000)),
                        7 | 8 => {
                            last + crate::time::SimDuration::from_ps(rng.next_below(500_000_000))
                        }
                        _ => SimTime::from_ps(rng.next_below(1_000_000_000)),
                    };
                    q.push(t, step);
                    r.push(t, step);
                } else {
                    let got = q.pop();
                    let want = r.pop();
                    assert_eq!(
                        got.map(|(t, v)| (t.as_ps(), v)),
                        want.map(|(t, _, v)| (t, v)),
                        "seed {seed} step {step}"
                    );
                    if let Some((t, _)) = got {
                        last = t;
                    }
                }
                assert_eq!(q.len(), r.heap.len(), "seed {seed} step {step}");
                assert_eq!(
                    q.peek_time().map(|t| t.as_ps()),
                    r.heap.peek().map(|e| e.0 .0)
                );
            }
            // Drain both; the full streams must agree.
            while let Some(want) = r.pop() {
                let got = q.pop().expect("calendar queue ran dry early");
                assert_eq!((got.0.as_ps(), got.1), (want.0, want.2));
            }
            assert!(q.pop().is_none());
        }
    }
}
