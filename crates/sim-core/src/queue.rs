//! Deterministic discrete-event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A priority queue of `(SimTime, E)` events with deterministic FIFO
/// ordering among events scheduled for the same instant.
///
/// ```
/// use sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), 'x');
/// q.push(SimTime::from_ns(5), 'y');
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'x')));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), 'y')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then the
        // lowest sequence number) surfaces first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes the earliest event only if it is scheduled at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30), 3);
        q.push(SimTime::from_ns(10), 1);
        q.push(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ns(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), 'a');
        q.push(SimTime::from_ns(20), 'b');
        assert_eq!(q.pop_due(SimTime::from_ns(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_ns(10)),
            Some((SimTime::from_ns(10), 'a'))
        );
        assert_eq!(q.pop_due(SimTime::from_ns(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
    }
}
