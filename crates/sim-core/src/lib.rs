//! Discrete-event simulation core for the CAIS reproduction.
//!
//! This crate provides the time base, deterministic event queue, identifier
//! newtypes, bandwidth arithmetic and statistics collectors shared by every
//! simulator layer (interconnect, GPU, in-switch computing).
//!
//! # Design notes
//!
//! * Time is kept in integer **picoseconds** ([`SimTime`]). NVLink-class
//!   links serialize a 16 B flit in ~0.14 ns at 112.5 GB/s, so nanosecond
//!   resolution would alias; picoseconds keep all transfer-time arithmetic
//!   exact enough while `u64` still covers ~213 days of simulated time.
//! * All event ordering is deterministic: ties at the same timestamp are
//!   broken by a monotonically increasing sequence number, never by hash or
//!   allocation order.
//! * No global state and no wall-clock access anywhere in simulation
//!   paths; randomness is always an explicitly seeded [`rng::JitterRng`]
//!   owned by the component that needs it. Three observe-only exceptions
//!   are documented in place: the label interner ([`intern`]), the
//!   feature-gated self-profiler ([`profile`]), and the conservation
//!   auditor ([`audit`]). None of them can feed a value back into
//!   simulation state.
//!
//! # Example
//!
//! ```
//! use sim_core::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_ns(10), "b");
//! q.push(SimTime::from_ns(5), "a");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_ns(5), "a"));
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod bandwidth;
pub mod fault;
pub mod ids;
pub mod intern;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod slab;
pub mod smallvec;
pub mod stats;
pub mod time;

pub use audit::{AuditConfig, AuditPhase, AuditProbe, AuditReport, EventRing, LedgerViolation};
pub use bandwidth::Bandwidth;
pub use fault::{
    DegradeSpec, DownSpec, FaultPlan, MergeFaultSpec, RetxConfig, StragglerSpec, WindowSchedule,
};
pub use ids::{
    Addr, DenseMap, DenseSet, FastHash, GpuId, GroupId, IdIndex, KernelId, PlaneId, TbId, TileId,
};
pub use intern::Symbol;
pub use profile::{prof_scope, Subsystem};
pub use queue::EventQueue;
pub use slab::{Slab, SlotHandle};
pub use smallvec::SmallVec;
pub use time::{SimDuration, SimTime};
