//! Statistics collectors used by every simulator layer.

use crate::time::{SimDuration, SimTime};

/// Running scalar summary: count, sum, min, max, mean.
///
/// ```
/// use sim_core::stats::Accumulator;
/// let mut acc = Accumulator::new();
/// acc.add(1.0);
/// acc.add(3.0);
/// assert_eq!(acc.mean(), 2.0);
/// assert_eq!(acc.max(), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Tracks the busy time of a serial resource (a link direction, an SM slot)
/// so utilization can be reported over any observation window.
///
/// Intervals are accumulated as they complete; overlapping intervals are the
/// caller's bug and are rejected in debug builds via the monotonicity check.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: SimDuration,
    last_end: SimTime,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> BusyTracker {
        BusyTracker::default()
    }

    /// Records that the resource was busy on `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the interval overlaps a previously recorded
    /// one, i.e. `start < last_end`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        debug_assert!(
            start >= self.last_end,
            "BusyTracker intervals must not overlap: start {start} < last_end {}",
            self.last_end
        );
        self.busy += end.since(start);
        self.last_end = end;
    }

    /// Total busy time recorded so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// End of the last recorded interval.
    pub fn last_end(&self) -> SimTime {
        self.last_end
    }

    /// Utilization over `[0, horizon)`; 0 when the horizon is empty.
    pub fn utilization(&self, horizon: SimDuration) -> f64 {
        self.busy.ratio(horizon)
    }
}

/// Fixed-bucket utilization-over-time series (paper Fig. 16).
///
/// Busy intervals are smeared across the buckets they intersect; each bucket
/// then reports `busy_in_bucket / bucket_width`.
#[derive(Debug, Clone)]
pub struct UtilizationSeries {
    bucket: SimDuration,
    busy_ps: Vec<u64>,
}

impl UtilizationSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> UtilizationSeries {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        UtilizationSeries {
            bucket,
            busy_ps: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        self.bucket
    }

    /// Records a busy interval `[start, end)`.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let bw = self.bucket.as_ps();
        let (s, e) = (start.as_ps(), end.as_ps());
        let first = (s / bw) as usize;
        let last = ((e - 1) / bw) as usize;
        if self.busy_ps.len() <= last {
            self.busy_ps.resize(last + 1, 0);
        }
        for b in first..=last {
            let b_start = b as u64 * bw;
            let b_end = b_start + bw;
            self.busy_ps[b] += e.min(b_end) - s.max(b_start);
        }
    }

    /// Utilization per bucket, each in `[0, 1]`.
    pub fn samples(&self) -> Vec<f64> {
        let bw = self.bucket.as_ps() as f64;
        self.busy_ps.iter().map(|&b| b as f64 / bw).collect()
    }

    /// Mean utilization over buckets `[0, n)` where `n` covers `horizon`.
    pub fn mean_until(&self, horizon: SimTime) -> f64 {
        let n = (horizon.as_ps().div_ceil(self.bucket.as_ps())) as usize;
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self.busy_ps.iter().take(n).sum();
        total as f64 / (n as u64 * self.bucket.as_ps()) as f64
    }
}

/// Geometric mean of positive values; 0 when empty.
///
/// The paper reports all cross-model speedups as geometric means.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|v| {
            assert!(*v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_summary() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        a.add(2.0);
        a.add(4.0);
        a.add(6.0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12.0);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.min(), 2.0);
        assert_eq!(a.max(), 6.0);
    }

    #[test]
    fn busy_tracker_utilization() {
        let mut b = BusyTracker::new();
        b.record(SimTime::from_ns(0), SimTime::from_ns(30));
        b.record(SimTime::from_ns(50), SimTime::from_ns(70));
        assert_eq!(b.busy_time(), SimDuration::from_ns(50));
        assert!((b.utilization(SimDuration::from_ns(100)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "must not overlap")]
    fn busy_tracker_rejects_overlap() {
        let mut b = BusyTracker::new();
        b.record(SimTime::from_ns(0), SimTime::from_ns(10));
        b.record(SimTime::from_ns(5), SimTime::from_ns(15));
    }

    #[test]
    fn utilization_series_smears_across_buckets() {
        let mut s = UtilizationSeries::new(SimDuration::from_ns(10));
        // Busy [5, 25): half of bucket 0, all of bucket 1, half of bucket 2.
        s.record(SimTime::from_ns(5), SimTime::from_ns(25));
        let samples = s.samples();
        assert_eq!(samples.len(), 3);
        assert!((samples[0] - 0.5).abs() < 1e-12);
        assert!((samples[1] - 1.0).abs() < 1e-12);
        assert!((samples[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_series_mean() {
        let mut s = UtilizationSeries::new(SimDuration::from_ns(10));
        s.record(SimTime::from_ns(0), SimTime::from_ns(10));
        // Over two buckets (20 ns horizon) the mean is 0.5.
        assert!((s.mean_until(SimTime::from_ns(20)) - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_until(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_series_ignores_empty_interval() {
        let mut s = UtilizationSeries::new(SimDuration::from_ns(10));
        s.record(SimTime::from_ns(5), SimTime::from_ns(5));
        assert!(s.samples().is_empty());
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
