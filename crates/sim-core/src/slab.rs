//! Generation-tagged slab arena: recycled slots with handles that can
//! never alias a later occupant.
//!
//! Hot paths (merge-table sessions, retransmission state) create and
//! destroy many short-lived records. A [`Slab`] keeps them in one
//! contiguous buffer with a free list, so steady-state insert/remove does
//! not touch the heap. Each slot carries a generation counter, bumped on
//! every removal; a [`SlotHandle`] stores the generation it was minted
//! with, so a stale handle held across a recycle simply resolves to
//! `None` instead of silently reading the new occupant.
//!
//! Slot reuse order is LIFO on the free list and therefore a pure
//! function of the insert/remove sequence — deterministic across runs.

/// A generation-tagged reference into a [`Slab`].
///
/// Deliberately implements neither `Ord` nor `Hash`: slot indices depend
/// on allocation order, so ordering or hashing by handle would smuggle
/// arena layout into simulation results.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlotHandle {
    idx: u32,
    gen: u32,
}

impl SlotHandle {
    /// The raw slot index (for capacity accounting / diagnostics only).
    pub fn index(self) -> usize {
        self.idx as usize
    }
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// A slab arena with generation-tagged handles. See the module docs.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("len", &self.len)
            .field("capacity", &self.slots.len())
            .finish()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Slab<T> {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `val`, reusing a free slot when one exists.
    pub fn insert(&mut self, val: T) -> SlotHandle {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none());
            slot.val = Some(val);
            SlotHandle { idx, gen: slot.gen }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                val: Some(val),
            });
            SlotHandle { idx, gen: 0 }
        }
    }

    /// The value behind `h`, or `None` when `h` is stale (its slot was
    /// removed, and possibly recycled, since the handle was minted).
    pub fn get(&self, h: SlotHandle) -> Option<&T> {
        self.slots
            .get(h.idx as usize)
            .filter(|s| s.gen == h.gen)
            .and_then(|s| s.val.as_ref())
    }

    /// Mutable access to the value behind `h`; `None` when stale.
    pub fn get_mut(&mut self, h: SlotHandle) -> Option<&mut T> {
        self.slots
            .get_mut(h.idx as usize)
            .filter(|s| s.gen == h.gen)
            .and_then(|s| s.val.as_mut())
    }

    /// Removes and returns the value behind `h`, bumping the slot's
    /// generation so `h` (and any copy of it) goes stale. `None` when the
    /// handle is already stale.
    pub fn remove(&mut self, h: SlotHandle) -> Option<T> {
        let slot = self.slots.get_mut(h.idx as usize)?;
        if slot.gen != h.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(h.idx);
        self.len -= 1;
        Some(val)
    }

    /// Drops every live value and recycles all slots. Generations keep
    /// advancing, so handles from before the clear stay stale.
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.val.take().is_some() {
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(i as u32);
            }
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recycled_slot_does_not_alias() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        // Same physical slot, different generation.
        assert_eq!(a.index(), b.index());
        assert_eq!(slab.get(a), None, "stale handle must not see new value");
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn reuse_order_is_lifo() {
        let mut slab = Slab::with_capacity(4);
        let h: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(h[1]);
        slab.remove(h[3]);
        assert_eq!(slab.insert(10).index(), h[3].index());
        assert_eq!(slab.insert(11).index(), h[1].index());
    }

    /// Property test: across thousands of seeded random insert/remove
    /// interleavings (the shape of merge-session and retransmission
    /// churn), a live handle always resolves to exactly the value it was
    /// minted for and a removed handle never resolves again — even after
    /// its slot is recycled many times.
    #[test]
    fn randomized_recycling_never_aliases_handles() {
        use crate::rng::JitterRng;
        let mut rng = JitterRng::seed_from(0xCA15_5EED);
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<(SlotHandle, u64)> = Vec::new();
        let mut stale: Vec<SlotHandle> = Vec::new();
        let mut next_val = 0u64;
        for step in 0..20_000u64 {
            let insert = live.is_empty() || rng.next_below(100) < 55;
            if insert {
                let h = slab.insert(next_val);
                // A recycled slot must never hand back a handle equal to
                // one that was retired from the same slot.
                assert!(
                    stale.iter().all(|&s| s != h),
                    "step {step}: recycled handle aliases a retired one"
                );
                live.push((h, next_val));
                next_val += 1;
            } else {
                let i = rng.next_below(live.len() as u64) as usize;
                let (h, v) = live.swap_remove(i);
                assert_eq!(slab.remove(h), Some(v), "step {step}");
                assert_eq!(slab.remove(h), None, "step {step}: double remove");
                stale.push(h);
            }
            // Spot-check one live and one stale handle each step; the
            // full sweep below catches anything the sampling missed.
            if let Some(&(h, v)) = live.get(rng.next_below(live.len().max(1) as u64) as usize) {
                assert_eq!(slab.get(h), Some(&v), "step {step}: live handle lost");
            }
            if !stale.is_empty() {
                let s = stale[rng.next_below(stale.len() as u64) as usize];
                assert_eq!(slab.get(s), None, "step {step}: stale handle resolved");
            }
        }
        assert_eq!(slab.len(), live.len());
        for &(h, v) in &live {
            assert_eq!(slab.get(h), Some(&v));
        }
        for &s in &stale {
            assert_eq!(slab.get(s), None);
        }
    }

    #[test]
    fn clear_invalidates_all_handles() {
        let mut slab = Slab::new();
        let h: Vec<_> = (0..3).map(|i| slab.insert(i)).collect();
        slab.clear();
        assert!(slab.is_empty());
        for &hh in &h {
            assert_eq!(slab.get(hh), None);
        }
        let fresh = slab.insert(9);
        assert_eq!(slab.get(fresh), Some(&9));
    }
}
