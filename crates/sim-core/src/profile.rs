//! Feature-gated self-profiler: per-subsystem wall time and allocation
//! counters, scoped by lightweight RAII guards on the simulator hot paths.
//!
//! # Zero cost when off
//!
//! The whole module is driven by the `profiler` cargo feature. When the
//! feature is **off** (the default), [`prof_scope`] returns a zero-sized
//! guard with no `Drop` impl, [`report`] returns an empty vector and the
//! [`CountingAllocator`] is a transparent pass-through — the optimizer
//! erases every call site. When the feature is **on**, each guard stamps
//! a monotonic clock and the thread's allocation counters at scope entry
//! and exit.
//!
//! # Scope semantics
//!
//! Scopes attribute **self time**: entering a nested scope flushes the
//! elapsed interval to the enclosing subsystem first, so the per-subsystem
//! wall times are disjoint and sum to the instrumented total. `calls`
//! counts scope entries. Allocation deltas are attributed the same way,
//! from the thread-local counters maintained by [`CountingAllocator`]
//! (install it with `#[global_allocator]` in the profiling binary;
//! without it the allocation columns read zero).
//!
//! # Determinism
//!
//! This is one of two deliberate exceptions to the crate's "no global
//! state, no wall clock" rule (the other is [`crate::intern`]). The
//! profiler only *observes* the simulation — it never feeds a value back
//! into simulation state — so enabling it cannot change any result. A
//! golden-table test in `cais-harness` pins that property.
//!
//! Counters are **per thread**. A parallel sweep reports whichever worker
//! thread calls [`report`]; the intended use is the single-threaded
//! `cais-bench` / `cais-experiments --profile` paths.

use std::fmt;

/// Hot-path subsystems instrumented with [`prof_scope`] guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Subsystem {
    /// Top-level engine event loop (`SystemSim::run`), excluding the
    /// nested scopes below.
    EngineLoop,
    /// The engine's effect/delivery fixpoint drain.
    DrainEffects,
    /// `GpuSim::advance`: thread-block scheduling and phase stepping.
    GpuAdvance,
    /// `Fabric::advance`: link serving and network event dispatch.
    FabricAdvance,
    /// In-switch logic callbacks (`on_packet` / `on_timer`).
    SwitchLogic,
    /// Merge-table operations inside the CAIS switch logic.
    MergeTable,
}

impl Subsystem {
    /// Every subsystem, in report order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::EngineLoop,
        Subsystem::DrainEffects,
        Subsystem::GpuAdvance,
        Subsystem::FabricAdvance,
        Subsystem::SwitchLogic,
        Subsystem::MergeTable,
    ];

    /// Stable snake_case label used in tables and `BENCH_sim.json`.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::EngineLoop => "engine_loop",
            Subsystem::DrainEffects => "drain_effects",
            Subsystem::GpuAdvance => "gpu_advance",
            Subsystem::FabricAdvance => "fabric_advance",
            Subsystem::SwitchLogic => "switch_logic",
            Subsystem::MergeTable => "merge_table",
        }
    }

    #[cfg_attr(not(feature = "profiler"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Subsystem::EngineLoop => 0,
            Subsystem::DrainEffects => 1,
            Subsystem::GpuAdvance => 2,
            Subsystem::FabricAdvance => 3,
            Subsystem::SwitchLogic => 4,
            Subsystem::MergeTable => 5,
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of the profiler report: self-time and allocation counters for
/// a single [`Subsystem`] on the calling thread.
#[derive(Clone, Copy, Debug)]
pub struct SubsystemReport {
    /// Which subsystem this row describes.
    pub subsystem: Subsystem,
    /// Number of scope entries.
    pub calls: u64,
    /// Self wall time in nanoseconds (time inside this scope but outside
    /// any nested scope).
    pub wall_ns: u64,
    /// Heap allocations attributed to this scope's self time. Zero unless
    /// the [`CountingAllocator`] is installed.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Reports whether the profiler was compiled in (`profiler` feature).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "profiler")
}

/// Global allocator wrapper that maintains per-thread allocation counters
/// for the profiler. A transparent pass-through to [`std::alloc::System`]
/// when the `profiler` feature is off.
///
/// Install in the profiling binary:
///
/// ```ignore
/// #[cfg(feature = "profiler")]
/// #[global_allocator]
/// static ALLOC: sim_core::profile::CountingAllocator =
///     sim_core::profile::CountingAllocator;
/// ```
pub struct CountingAllocator;

#[cfg(not(feature = "profiler"))]
mod imp {
    use super::{CountingAllocator, SubsystemReport};
    use std::alloc::{GlobalAlloc, Layout, System};

    /// RAII profiling scope. Zero-sized no-op in this configuration.
    #[must_use = "the scope is measured until the guard drops"]
    pub struct ProfScope {
        _priv: (),
    }

    #[inline(always)]
    pub(super) fn scope(_sys: super::Subsystem) -> ProfScope {
        ProfScope { _priv: () }
    }

    pub(super) fn report_rows() -> Vec<SubsystemReport> {
        Vec::new()
    }

    pub(super) fn reset_rows() {}

    // SAFETY: pure pass-through to the system allocator.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

#[cfg(feature = "profiler")]
mod imp {
    use super::{CountingAllocator, Subsystem, SubsystemReport};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    const N: usize = Subsystem::ALL.len();

    #[derive(Clone, Copy, Default)]
    struct Row {
        calls: u64,
        wall_ns: u64,
        allocs: u64,
        alloc_bytes: u64,
    }

    struct State {
        rows: [Row; N],
        /// Indices of the currently open scopes, outermost first.
        stack: Vec<usize>,
        /// Monotonic stamp of the most recent scope boundary.
        epoch: Option<Instant>,
        /// Thread allocation counters at the most recent boundary.
        alloc_mark: (u64, u64),
    }

    impl State {
        const fn new() -> State {
            State {
                rows: [Row {
                    calls: 0,
                    wall_ns: 0,
                    allocs: 0,
                    alloc_bytes: 0,
                }; N],
                stack: Vec::new(),
                epoch: None,
                alloc_mark: (0, 0),
            }
        }

        /// Attributes the interval since the last boundary to the scope on
        /// top of the stack and starts a new interval.
        fn flush(&mut self, now: Instant) {
            let marks = (ALLOCS.get(), ALLOC_BYTES.get());
            if let (Some(epoch), Some(&top)) = (self.epoch, self.stack.last()) {
                let row = &mut self.rows[top];
                row.wall_ns += now.duration_since(epoch).as_nanos() as u64;
                row.allocs += marks.0 - self.alloc_mark.0;
                row.alloc_bytes += marks.1 - self.alloc_mark.1;
            }
            self.epoch = Some(now);
            self.alloc_mark = marks;
        }
    }

    thread_local! {
        static STATE: RefCell<State> = const { RefCell::new(State::new()) };
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    }

    /// RAII profiling scope: measures self time (and allocation deltas)
    /// for one subsystem until dropped.
    #[must_use = "the scope is measured until the guard drops"]
    pub struct ProfScope {
        _priv: (),
    }

    pub(super) fn scope(sys: Subsystem) -> ProfScope {
        STATE.with_borrow_mut(|st| {
            st.flush(Instant::now());
            st.rows[sys.index()].calls += 1;
            st.stack.push(sys.index());
        });
        ProfScope { _priv: () }
    }

    impl Drop for ProfScope {
        fn drop(&mut self) {
            STATE.with_borrow_mut(|st| {
                st.flush(Instant::now());
                st.stack.pop();
            });
        }
    }

    pub(super) fn report_rows() -> Vec<SubsystemReport> {
        STATE.with_borrow(|st| {
            Subsystem::ALL
                .iter()
                .map(|&sys| {
                    let row = st.rows[sys.index()];
                    SubsystemReport {
                        subsystem: sys,
                        calls: row.calls,
                        wall_ns: row.wall_ns,
                        allocs: row.allocs,
                        alloc_bytes: row.alloc_bytes,
                    }
                })
                .collect()
        })
    }

    pub(super) fn reset_rows() {
        STATE.with_borrow_mut(|st| {
            st.rows = [Row::default(); N];
            let now = Instant::now();
            st.epoch = st.epoch.map(|_| now);
            st.alloc_mark = (ALLOCS.get(), ALLOC_BYTES.get());
        });
    }

    #[inline]
    fn count(bytes: usize) {
        // `try_with` so late allocations during TLS teardown stay safe.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
    }

    // SAFETY: defers all allocation to the system allocator; the counter
    // updates touch only const-initialized thread-local `Cell`s, which
    // never allocate.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            count(layout.size());
            unsafe { System.alloc_zeroed(layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            count(new_size);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }
}

pub use imp::ProfScope;

/// Opens a profiling scope for `sys`; the scope ends when the returned
/// guard drops. A zero-sized no-op unless the `profiler` feature is on.
#[inline(always)]
pub fn prof_scope(sys: Subsystem) -> ProfScope {
    imp::scope(sys)
}

/// Snapshot of the calling thread's per-subsystem counters, in
/// [`Subsystem::ALL`] order. Empty when the profiler is compiled out.
pub fn report() -> Vec<SubsystemReport> {
    imp::report_rows()
}

/// Clears the calling thread's counters (for between-iteration resets in
/// benchmarks). A no-op when the profiler is compiled out.
pub fn reset() {
    imp::reset_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_reports_nothing() {
        if !enabled() {
            let _guard = prof_scope(Subsystem::EngineLoop);
            assert!(report().is_empty());
            reset();
        }
    }

    #[cfg(feature = "profiler")]
    #[test]
    fn nested_scopes_attribute_self_time() {
        reset();
        {
            let _outer = prof_scope(Subsystem::EngineLoop);
            std::hint::black_box(vec![0u8; 64]);
            {
                let _inner = prof_scope(Subsystem::GpuAdvance);
                std::hint::black_box(vec![0u8; 64]);
            }
        }
        let rows = report();
        let get = |sys: Subsystem| rows.iter().find(|r| r.subsystem == sys).unwrap().to_owned();
        assert_eq!(get(Subsystem::EngineLoop).calls, 1);
        assert_eq!(get(Subsystem::GpuAdvance).calls, 1);
        assert_eq!(get(Subsystem::MergeTable).calls, 0);
        reset();
        assert!(report().iter().all(|r| r.calls == 0 && r.wall_ns == 0));
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Subsystem::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            [
                "engine_loop",
                "drain_effects",
                "gpu_advance",
                "fabric_advance",
                "switch_logic",
                "merge_table",
            ]
        );
    }
}
