//! Identifier newtypes used across the simulator layers.
//!
//! Using distinct types for GPU, switch-plane, kernel, thread-block, tile and
//! TB-group identifiers prevents index-mixup bugs that plague simulators
//! written around bare `usize` everywhere.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A GPU endpoint in the multi-GPU system (0-based).
    GpuId, u16, "gpu"
);
id_type!(
    /// One NVSwitch plane; a DGX-H100 has four, each connecting all GPUs.
    PlaneId, u16, "plane"
);
id_type!(
    /// A launched kernel instance (unique within one simulation run).
    KernelId, u32, "k"
);
id_type!(
    /// A thread block instance (unique within one simulation run).
    TbId, u64, "tb"
);
id_type!(
    /// A logical data tile (unit of producer/consumer dependency and of
    /// remote fetch/merge; globally unique within a run).
    TileId, u64, "tile"
);
id_type!(
    /// A CAIS TB-group: the set of TBs across GPUs that access the same data
    /// region with CAIS-tagged instructions.
    GroupId, u32, "grp"
);

/// A global memory address in the unified multi-GPU address space.
///
/// The top bits encode the *home GPU* that physically owns the backing
/// memory; the switch merge unit and deterministic routing both key off
/// this address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// Number of low bits reserved for the per-GPU offset (1 TiB per GPU).
const ADDR_OFFSET_BITS: u32 = 40;

impl Addr {
    /// Builds an address homed on `gpu` at byte `offset` within that GPU.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in the per-GPU offset field.
    pub fn new(gpu: GpuId, offset: u64) -> Addr {
        assert!(
            offset < (1u64 << ADDR_OFFSET_BITS),
            "address offset {offset:#x} exceeds per-GPU space"
        );
        Addr(((gpu.0 as u64) << ADDR_OFFSET_BITS) | offset)
    }

    /// The GPU that physically owns this address.
    pub fn home_gpu(self) -> GpuId {
        GpuId((self.0 >> ADDR_OFFSET_BITS) as u16)
    }

    /// Byte offset within the home GPU's memory.
    pub fn offset(self) -> u64 {
        self.0 & ((1u64 << ADDR_OFFSET_BITS) - 1)
    }

    /// Address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if advancing crosses out of the home GPU's address window.
    // Not `std::ops::Add`: the boundary assert makes this partial, and
    // operator syntax would hide that.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Addr {
        let a = Addr(self.0 + bytes);
        assert_eq!(
            a.home_gpu(),
            self.home_gpu(),
            "address arithmetic crossed a GPU boundary"
        );
        a
    }

    /// Deterministic switch-plane hash used for merging convergence
    /// (Sec. III-A-5 of the paper): all requests for the same address must
    /// traverse the same plane so they meet the same merge unit.
    pub fn plane(self, n_planes: usize) -> PlaneId {
        debug_assert!(n_planes > 0);
        // Multiplicative (Fibonacci) hash taking the *top* product bits:
        // strided allocations (tile- or MB-aligned offsets) must still
        // spread evenly across planes.
        let h = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PlaneId(((h as u128 * n_planes as u128) >> 64) as u16)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.home_gpu(), self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        assert_eq!(format!("{}", GpuId(3)), "gpu3");
        assert_eq!(TbId(42).index(), 42);
        assert_eq!(GroupId::from(7), GroupId(7));
    }

    #[test]
    fn addr_encodes_home_gpu() {
        let a = Addr::new(GpuId(5), 0x1234);
        assert_eq!(a.home_gpu(), GpuId(5));
        assert_eq!(a.offset(), 0x1234);
        assert_eq!(a.add(0x10).offset(), 0x1244);
    }

    #[test]
    fn addr_plane_is_deterministic_and_in_range() {
        for off in [0u64, 128, 4096, 1 << 20, (1 << 30) + 640] {
            let a = Addr::new(GpuId(2), off);
            let p = a.plane(4);
            assert_eq!(p, a.plane(4), "same address must map to same plane");
            assert!(p.index() < 4);
        }
    }

    #[test]
    fn plane_hash_spreads_strided_allocations() {
        // Tile-, packet- and MB-aligned strides must all spread across
        // planes within 2x of uniform (regression test: a weak hash once
        // put every MB-aligned chunk on one plane).
        for stride in [128u64, 8 << 10, 32 << 10, 1 << 20] {
            let mut counts = [0usize; 4];
            for gpu in 0..8u16 {
                for j in 0..64u64 {
                    let a = Addr::new(GpuId(gpu), j * stride);
                    counts[a.plane(4).index()] += 1;
                }
            }
            let total: usize = counts.iter().sum();
            for (p, c) in counts.iter().enumerate() {
                assert!(
                    *c * 4 >= total / 2 && *c * 4 <= total * 2,
                    "stride {stride}: plane {p} got {c}/{total}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds per-GPU space")]
    fn addr_offset_overflow_panics() {
        let _ = Addr::new(GpuId(0), 1 << 41);
    }

    #[test]
    #[should_panic(expected = "crossed a GPU boundary")]
    fn addr_add_cannot_cross_gpus() {
        let a = Addr::new(GpuId(0), (1 << 40) - 4);
        let _ = a.add(8);
    }
}
