//! Identifier newtypes used across the simulator layers, plus the dense
//! ID-indexed collections the hot paths use instead of hash maps.
//!
//! Using distinct types for GPU, switch-plane, kernel, thread-block, tile and
//! TB-group identifiers prevents index-mixup bugs that plague simulators
//! written around bare `usize` everywhere. Because every ID is allocated
//! densely from zero by the engine's `IdAlloc`, state keyed by an ID can
//! live in a flat vector ([`DenseMap`], [`DenseSet`]) with O(1) access and
//! deterministic index-order iteration — no hashing, no iteration-order
//! hazards.

use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::marker::PhantomData;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw index value.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl IdIndex for $name {
            fn index(self) -> usize {
                self.0 as usize
            }
            fn from_index(i: usize) -> Self {
                $name(i as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

/// An identifier that is a dense index: convertible to and from `usize`
/// without loss. Implemented by every ID newtype in this module, letting
/// [`DenseMap`] and [`DenseSet`] key directly off the typed IDs.
pub trait IdIndex: Copy {
    /// The raw index value.
    fn index(self) -> usize;
    /// The ID with raw index `i`.
    fn from_index(i: usize) -> Self;
}

id_type!(
    /// A GPU endpoint in the multi-GPU system (0-based).
    GpuId, u16, "gpu"
);
id_type!(
    /// One NVSwitch plane; a DGX-H100 has four, each connecting all GPUs.
    PlaneId, u16, "plane"
);
id_type!(
    /// A launched kernel instance (unique within one simulation run).
    KernelId, u32, "k"
);
id_type!(
    /// A thread block instance (unique within one simulation run).
    TbId, u64, "tb"
);
id_type!(
    /// A logical data tile (unit of producer/consumer dependency and of
    /// remote fetch/merge; globally unique within a run).
    TileId, u64, "tile"
);
id_type!(
    /// A CAIS TB-group: the set of TBs across GPUs that access the same data
    /// region with CAIS-tagged instructions.
    GroupId, u32, "grp"
);

/// A global memory address in the unified multi-GPU address space.
///
/// The top bits encode the *home GPU* that physically owns the backing
/// memory; the switch merge unit and deterministic routing both key off
/// this address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// Number of low bits reserved for the per-GPU offset (1 TiB per GPU).
const ADDR_OFFSET_BITS: u32 = 40;

impl Addr {
    /// Builds an address homed on `gpu` at byte `offset` within that GPU.
    ///
    /// # Panics
    ///
    /// Panics if `offset` does not fit in the per-GPU offset field.
    pub fn new(gpu: GpuId, offset: u64) -> Addr {
        assert!(
            offset < (1u64 << ADDR_OFFSET_BITS),
            "address offset {offset:#x} exceeds per-GPU space"
        );
        Addr(((gpu.0 as u64) << ADDR_OFFSET_BITS) | offset)
    }

    /// The GPU that physically owns this address.
    pub fn home_gpu(self) -> GpuId {
        GpuId((self.0 >> ADDR_OFFSET_BITS) as u16)
    }

    /// Byte offset within the home GPU's memory.
    pub fn offset(self) -> u64 {
        self.0 & ((1u64 << ADDR_OFFSET_BITS) - 1)
    }

    /// Address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if advancing crosses out of the home GPU's address window.
    // Not `std::ops::Add`: the boundary assert makes this partial, and
    // operator syntax would hide that.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> Addr {
        let a = Addr(self.0 + bytes);
        assert_eq!(
            a.home_gpu(),
            self.home_gpu(),
            "address arithmetic crossed a GPU boundary"
        );
        a
    }

    /// Deterministic switch-plane hash used for merging convergence
    /// (Sec. III-A-5 of the paper): all requests for the same address must
    /// traverse the same plane so they meet the same merge unit.
    pub fn plane(self, n_planes: usize) -> PlaneId {
        debug_assert!(n_planes > 0);
        // Multiplicative (Fibonacci) hash taking the *top* product bits:
        // strided allocations (tile- or MB-aligned offsets) must still
        // spread evenly across planes.
        let h = self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        PlaneId(((h as u128 * n_planes as u128) >> 64) as u16)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.home_gpu(), self.offset())
    }
}

/// A map keyed by a dense ID, stored as `Vec<Option<T>>`.
///
/// Constant-time access with no hashing, and iteration in index order, so
/// it is deterministic by construction. Grows on insert; size it up front
/// with [`DenseMap::with_capacity`] when the ID universe is known.
///
/// ```
/// use sim_core::{DenseMap, TbId};
/// let mut m: DenseMap<TbId, u32> = DenseMap::new();
/// m.insert(TbId(3), 7);
/// assert_eq!(m.get(TbId(3)), Some(&7));
/// assert_eq!(m.len(), 1);
/// assert_eq!(m.remove(TbId(3)), Some(7));
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct DenseMap<I, T> {
    slots: Vec<Option<T>>,
    len: usize,
    _key: PhantomData<I>,
}

impl<I: IdIndex, T> DenseMap<I, T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with room for IDs `0..n` without regrowth.
    pub fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(n, || None);
        DenseMap {
            slots,
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `key`, if present.
    #[inline]
    pub fn get(&self, key: I) -> Option<&T> {
        self.slots.get(key.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access to the value for `key`, if present.
    #[inline]
    pub fn get_mut(&mut self, key: I) -> Option<&mut T> {
        self.slots.get_mut(key.index()).and_then(|s| s.as_mut())
    }

    /// True if `key` has a value.
    #[inline]
    pub fn contains_key(&self, key: I) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: I, value: T) -> Option<T> {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: I) -> Option<T> {
        let prev = self.slots.get_mut(key.index()).and_then(|s| s.take());
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Mutable access to the value at `key`, inserting `T::default()`
    /// first if absent (the `entry().or_default()` idiom).
    pub fn get_or_default(&mut self, key: I) -> &mut T
    where
        T: Default,
    {
        let i = key.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        if self.slots[i].is_none() {
            self.slots[i] = Some(T::default());
            self.len += 1;
        }
        self.slots[i].as_mut().expect("just ensured present")
    }

    /// Present entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = (I, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (I::from_index(i), v)))
    }

    /// Present keys in index order.
    pub fn keys(&self) -> impl Iterator<Item = I> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

impl<I: IdIndex, T> Default for DenseMap<I, T> {
    fn default() -> Self {
        DenseMap::new()
    }
}

/// A set of dense IDs, stored as a bitmap.
///
/// ```
/// use sim_core::{DenseSet, TbId};
/// let mut s: DenseSet<TbId> = DenseSet::new();
/// assert!(s.insert(TbId(70)));
/// assert!(!s.insert(TbId(70)));
/// assert!(s.contains(TbId(70)));
/// assert!(s.remove(TbId(70)));
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DenseSet<I> {
    words: Vec<u64>,
    len: usize,
    _key: PhantomData<I>,
}

impl<I: IdIndex> DenseSet<I> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DenseSet {
            words: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty set with room for IDs `0..n` without regrowth.
    pub fn with_capacity(n: usize) -> Self {
        DenseSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `key` is a member.
    #[inline]
    pub fn contains(&self, key: I) -> bool {
        let i = key.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Adds `key`; returns true if it was newly inserted.
    pub fn insert(&mut self, key: I) -> bool {
        let i = key.index();
        if i / 64 >= self.words.len() {
            self.words.resize(i / 64 + 1, 0);
        }
        let bit = 1 << (i % 64);
        let fresh = self.words[i / 64] & bit == 0;
        self.words[i / 64] |= bit;
        if fresh {
            self.len += 1;
        }
        fresh
    }

    /// Removes `key`; returns true if it was a member.
    pub fn remove(&mut self, key: I) -> bool {
        let i = key.index();
        let Some(w) = self.words.get_mut(i / 64) else {
            return false;
        };
        let bit = 1 << (i % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        if present {
            self.len -= 1;
        }
        present
    }
}

/// A fast, deterministic hasher for the maps that stay hash-based (keys
/// that are not dense indices, e.g. `(GpuId, Addr)` pairs).
///
/// `std`'s default SipHash is keyed per-process for DoS resistance the
/// simulator does not need; this Fibonacci-multiply mix is several times
/// cheaper and — being unkeyed — makes iteration order reproducible
/// across runs and platforms.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // Final avalanche so sequential keys spread across buckets.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(29) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
    fn write_u128(&mut self, v: u128) {
        self.write_u64(v as u64);
        self.write_u64((v >> 64) as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FastHasher`]; use as the `S` type
/// parameter of `HashMap`/`HashSet`.
pub type FastHash = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        assert_eq!(format!("{}", GpuId(3)), "gpu3");
        assert_eq!(TbId(42).index(), 42);
        assert_eq!(GroupId::from(7), GroupId(7));
    }

    #[test]
    fn addr_encodes_home_gpu() {
        let a = Addr::new(GpuId(5), 0x1234);
        assert_eq!(a.home_gpu(), GpuId(5));
        assert_eq!(a.offset(), 0x1234);
        assert_eq!(a.add(0x10).offset(), 0x1244);
    }

    #[test]
    fn addr_plane_is_deterministic_and_in_range() {
        for off in [0u64, 128, 4096, 1 << 20, (1 << 30) + 640] {
            let a = Addr::new(GpuId(2), off);
            let p = a.plane(4);
            assert_eq!(p, a.plane(4), "same address must map to same plane");
            assert!(p.index() < 4);
        }
    }

    #[test]
    fn plane_hash_spreads_strided_allocations() {
        // Tile-, packet- and MB-aligned strides must all spread across
        // planes within 2x of uniform (regression test: a weak hash once
        // put every MB-aligned chunk on one plane).
        for stride in [128u64, 8 << 10, 32 << 10, 1 << 20] {
            let mut counts = [0usize; 4];
            for gpu in 0..8u16 {
                for j in 0..64u64 {
                    let a = Addr::new(GpuId(gpu), j * stride);
                    counts[a.plane(4).index()] += 1;
                }
            }
            let total: usize = counts.iter().sum();
            for (p, c) in counts.iter().enumerate() {
                assert!(
                    *c * 4 >= total / 2 && *c * 4 <= total * 2,
                    "stride {stride}: plane {p} got {c}/{total}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds per-GPU space")]
    fn addr_offset_overflow_panics() {
        let _ = Addr::new(GpuId(0), 1 << 41);
    }

    #[test]
    #[should_panic(expected = "crossed a GPU boundary")]
    fn addr_add_cannot_cross_gpus() {
        let a = Addr::new(GpuId(0), (1 << 40) - 4);
        let _ = a.add(8);
    }
}
