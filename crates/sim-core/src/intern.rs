//! Global string interning for kernel / thread-block labels.
//!
//! Hot paths copy labels around (per-launch kernel spans, report rows);
//! interning turns each label into a copyable [`Symbol`] that resolves to
//! its string only at report time.
//!
//! # Determinism
//!
//! The interner is one of two deliberate exceptions to the crate's "no
//! global state" rule (the other is [`crate::profile`]). Symbol ids are
//! assigned in first-intern order, which can differ across runs when a
//! parallel sweep interns from several worker threads — so `Symbol`
//! intentionally implements **no `Ord` and no `Hash`**: it cannot be used
//! as a sort key or hash-map key, and simulation results can therefore
//! never depend on interning order. Comparisons against strings
//! ([`PartialEq<str>`]) and [`Display`](std::fmt::Display) go through the
//! resolved text, which is stable.
//!
//! Interned strings are leaked (never freed). Labels are a small, bounded
//! set per process (kernel names, table row labels), so the leak is a few
//! kilobytes at most.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A copyable handle to an interned string.
///
/// Construct via [`Symbol::new`] or any of the `From` impls; resolve with
/// [`Symbol::as_str`]. Two symbols are equal iff their strings are equal.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Symbol(u32);

#[derive(Default)]
struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

impl Interner {
    fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).map(|&id| Symbol(id))
    }

    /// Inserts an already-leaked string. Caller must have checked `lookup`
    /// under the same write lock.
    fn insert(&mut self, leaked: &'static str) -> Symbol {
        let id = self.strings.len() as u32;
        self.strings.push(leaked);
        self.map.insert(leaked, id);
        Symbol(id)
    }
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(Default::default)
}

impl Symbol {
    /// Interns `s`, returning its symbol. Fast path is a read-locked
    /// lookup; only the first sighting of a string takes the write lock.
    pub fn new(s: &str) -> Symbol {
        let lock = interner();
        if let Some(sym) = lock.read().unwrap().lookup(s) {
            return sym;
        }
        let mut w = lock.write().unwrap();
        // Re-check: another thread may have interned between the locks.
        if let Some(sym) = w.lookup(s) {
            return sym;
        }
        w.insert(Box::leak(s.to_owned().into_boxed_str()))
    }

    /// Interns an owned string without re-copying it on first sighting.
    pub fn from_owned(s: String) -> Symbol {
        let lock = interner();
        if let Some(sym) = lock.read().unwrap().lookup(&s) {
            return sym;
        }
        let mut w = lock.write().unwrap();
        if let Some(sym) = w.lookup(&s) {
            return sym;
        }
        w.insert(Box::leak(s.into_boxed_str()))
    }

    /// The interned text. O(1): an index into the intern table.
    pub fn as_str(self) -> &'static str {
        interner().read().unwrap().strings[self.0 as usize]
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::from_owned(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::new(s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let a = Symbol::new("attn_qk");
        let b = Symbol::from_owned("attn_qk".to_owned());
        let c: Symbol = "attn_qk".into();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.as_str(), "attn_qk");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::new("prod0"), Symbol::new("prod1"));
    }

    #[test]
    fn compares_against_str() {
        let s = Symbol::new("consumer");
        assert!(s == *"consumer");
        assert!(s == "consumer");
        assert!(s != "producer");
        assert_eq!(format!("{s}"), "consumer");
        assert_eq!(format!("{s:?}"), "\"consumer\"");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..64)
                        .map(|i| Symbol::new(&format!("ccy{}", (i + t) % 16)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &all {
            for s in syms {
                // Every symbol resolves back to the text it was made from.
                assert!(s.as_str().starts_with("ccy"));
            }
        }
        // Same text ⇒ same symbol across threads.
        assert_eq!(Symbol::new("ccy0"), all[0][0]);
    }
}
