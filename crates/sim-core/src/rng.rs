//! Deterministic pseudo-randomness for scheduling jitter.
//!
//! The simulator needs small amounts of randomness (per-GPU thread-block
//! dispatch jitter that models OS/clock drift across devices, Sec. II-D of
//! the paper). A tiny embedded SplitMix64/xoshiro256** keeps `sim-core`
//! dependency-free and guarantees identical streams on every platform.

use crate::time::SimDuration;

/// A small, fast, deterministic RNG (xoshiro256** seeded via SplitMix64).
///
/// ```
/// use sim_core::rng::JitterRng;
/// let mut a = JitterRng::seed_from(42);
/// let mut b = JitterRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct JitterRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl JitterRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> JitterRng {
        let mut sm = seed;
        JitterRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream for a sub-component (e.g. one GPU).
    pub fn fork(&mut self, stream: u64) -> JitterRng {
        JitterRng::seed_from(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the jitter magnitudes used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform duration in `[0, max)`.
    pub fn jitter(&mut self, max: SimDuration) -> SimDuration {
        SimDuration::from_ps(self.next_below(max.as_ps()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = JitterRng::seed_from(7);
        let mut b = JitterRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = JitterRng::seed_from(1);
        let mut b = JitterRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = JitterRng::seed_from(9);
        let mut root2 = JitterRng::seed_from(9);
        let mut f1 = root1.fork(0);
        let mut f2 = root2.fork(0);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut g1 = root1.fork(1);
        assert_ne!(f1.next_u64(), g1.next_u64());
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut r = JitterRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = JitterRng::seed_from(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn jitter_bounded() {
        let mut r = JitterRng::seed_from(5);
        let max = SimDuration::from_us(35);
        for _ in 0..1000 {
            assert!(r.jitter(max) < max);
        }
    }
}
