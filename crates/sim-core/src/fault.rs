//! Deterministic fault-injection plan.
//!
//! A [`FaultPlan`] describes every fault the simulator may inject into a
//! run: link bandwidth degradation windows, transient link-down windows,
//! per-packet drop/corruption, a straggling GPU, and merge-table entry
//! faults. The plan is pure configuration — each consuming layer forks its
//! own [`JitterRng`](crate::rng::JitterRng) stream from [`FaultPlan::seed`],
//! so identical seeds yield byte-identical fault timelines regardless of
//! worker count or host.
//!
//! The default plan injects nothing, and every consumer gates its fault
//! path on [`FaultPlan::is_active`] (or the relevant sub-spec being
//! `None`/zero), so a default plan is provably zero-cost to results: no RNG
//! stream is created and no timing arithmetic changes.

use crate::time::{SimDuration, SimTime};

/// Retransmission protocol parameters for faulted links.
///
/// A packet whose final segment is dropped (or corrupted) is detected at
/// the would-be delivery instant — modelling a NACK/timeout round — and
/// requeued at the head of its virtual channel after an exponential
/// backoff: `backoff_base * 2^(min(attempt-1, backoff_cap_exp))`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetxConfig {
    /// Backoff before the first retransmission.
    pub backoff_base: SimDuration,
    /// Exponent cap: backoff never exceeds `backoff_base << backoff_cap_exp`.
    pub backoff_cap_exp: u32,
    /// Retransmit budget per packet. A packet dropped more than this many
    /// times is force-delivered (so the simulation always terminates) and
    /// counted as a budget exhaustion, which the engine surfaces as a
    /// typed error at the end of the run.
    pub max_retries: u32,
}

impl Default for RetxConfig {
    fn default() -> Self {
        RetxConfig {
            backoff_base: SimDuration::from_ns(500),
            backoff_cap_exp: 6,
            max_retries: 8,
        }
    }
}

/// Periodic link bandwidth degradation windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradeSpec {
    /// Transfer-time multiplier inside a window (`2.0` = half bandwidth).
    /// Must be `>= 1.0`.
    pub factor: f64,
    /// Window period per link (phase is drawn per link from the fault RNG).
    pub period: SimDuration,
    /// Window length; must not exceed `period`.
    pub duration: SimDuration,
}

/// Periodic transient link-down windows.
#[derive(Debug, Clone, PartialEq)]
pub struct DownSpec {
    /// Window period per link (phase is drawn per link from the fault RNG).
    pub period: SimDuration,
    /// Outage length; must not exceed `period`.
    pub duration: SimDuration,
}

/// A single straggling GPU whose compute phases run slower.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerSpec {
    /// Index of the straggling GPU.
    pub gpu: usize,
    /// Compute-time multiplier (`1.5` = 50% slower). Must be `>= 1.0`.
    pub compute_factor: f64,
}

/// Merge-table entry faults (soft errors in switch SRAM).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeFaultSpec {
    /// Per-entry fault probability at each sweep tick.
    pub rate: f64,
    /// After this many entry faults on one port, the port degrades to the
    /// unmerged NVLS-style forwarding path instead of merging.
    pub degrade_threshold: u32,
}

/// Complete fault-injection plan for one simulation run.
///
/// `FaultPlan::default()` injects nothing and leaves every result
/// byte-identical to a run without the fault subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed for all fault RNG streams (forked per consumer).
    pub seed: u64,
    /// Per-packet drop probability on every link.
    pub drop_rate: f64,
    /// Per-packet corruption probability (detected at the receiver; takes
    /// the same retransmit path as a drop but is counted separately).
    pub corrupt_rate: f64,
    /// Periodic bandwidth degradation, if any.
    pub degrade: Option<DegradeSpec>,
    /// Periodic transient link outages, if any.
    pub link_down: Option<DownSpec>,
    /// One straggling GPU, if any.
    pub straggler: Option<StragglerSpec>,
    /// Merge-table entry faults, if any.
    pub merge_faults: Option<MergeFaultSpec>,
    /// Retransmission protocol parameters (only used when link faults are
    /// active).
    pub retx: RetxConfig,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA17,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            degrade: None,
            link_down: None,
            straggler: None,
            merge_faults: None,
            retx: RetxConfig::default(),
        }
    }
}

impl FaultPlan {
    /// True if any fault kind is configured.
    pub fn is_active(&self) -> bool {
        self.link_faults_active()
            || self.straggler.is_some()
            || self.merge_faults.as_ref().is_some_and(|m| m.rate > 0.0)
    }

    /// True if any link-level fault (drop, corruption, degradation or
    /// outage) is configured; gates construction of the fabric fault state.
    pub fn link_faults_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.degrade.is_some()
            || self.link_down.is_some()
    }

    /// Sets the root fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-packet drop probability.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the per-packet corruption probability.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Adds periodic bandwidth-degradation windows.
    pub fn with_degrade(mut self, spec: DegradeSpec) -> Self {
        self.degrade = Some(spec);
        self
    }

    /// Adds periodic link outages.
    pub fn with_link_down(mut self, spec: DownSpec) -> Self {
        self.link_down = Some(spec);
        self
    }

    /// Marks one GPU as a straggler.
    pub fn with_straggler(mut self, spec: StragglerSpec) -> Self {
        self.straggler = Some(spec);
        self
    }

    /// Adds merge-table entry faults.
    pub fn with_merge_faults(mut self, spec: MergeFaultSpec) -> Self {
        self.merge_faults = Some(spec);
        self
    }

    /// Sets the retransmission parameters.
    pub fn with_retx(mut self, retx: RetxConfig) -> Self {
        self.retx = retx;
        self
    }
}

/// A periodic window schedule in raw picoseconds, with a per-instance
/// phase so different links fault at different (but deterministic) times.
///
/// Window `k` covers `[phase + k*period, phase + k*period + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSchedule {
    period_ps: u64,
    duration_ps: u64,
    phase_ps: u64,
}

impl WindowSchedule {
    /// Builds a schedule. `duration` is clamped to `period` and a zero
    /// period disables the schedule (never active).
    pub fn new(period: SimDuration, duration: SimDuration, phase: SimDuration) -> Self {
        let period_ps = period.as_ps();
        WindowSchedule {
            period_ps,
            duration_ps: duration.as_ps().min(period_ps),
            phase_ps: phase.as_ps(),
        }
    }

    /// If `t` falls inside a window, returns the window's end instant.
    pub fn active_until(&self, t: SimTime) -> Option<SimTime> {
        if self.period_ps == 0 || self.duration_ps == 0 {
            return None;
        }
        let rel = t.as_ps().checked_sub(self.phase_ps)?;
        let into = rel % self.period_ps;
        if into < self.duration_ps {
            Some(SimTime::from_ps(t.as_ps() - into + self.duration_ps))
        } else {
            None
        }
    }

    /// True if `t` falls inside a window.
    pub fn is_active(&self, t: SimTime) -> bool {
        self.active_until(t).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        let p = FaultPlan::default();
        assert!(!p.is_active());
        assert!(!p.link_faults_active());
    }

    #[test]
    fn builders_activate_the_right_gates() {
        assert!(FaultPlan::default()
            .with_drop_rate(1e-3)
            .link_faults_active());
        assert!(FaultPlan::default()
            .with_corrupt_rate(1e-3)
            .link_faults_active());
        assert!(FaultPlan::default()
            .with_degrade(DegradeSpec {
                factor: 2.0,
                period: SimDuration::from_us(10),
                duration: SimDuration::from_us(1),
            })
            .link_faults_active());
        let straggle = FaultPlan::default().with_straggler(StragglerSpec {
            gpu: 3,
            compute_factor: 1.5,
        });
        assert!(straggle.is_active());
        assert!(!straggle.link_faults_active());
        // A merge-fault spec with zero rate stays inactive.
        let zero_merge = FaultPlan::default().with_merge_faults(MergeFaultSpec {
            rate: 0.0,
            degrade_threshold: 4,
        });
        assert!(!zero_merge.is_active());
    }

    #[test]
    fn window_schedule_covers_periodic_intervals() {
        let w = WindowSchedule::new(
            SimDuration::from_ns(100),
            SimDuration::from_ns(30),
            SimDuration::from_ns(10),
        );
        // Before the phase: inactive.
        assert!(!w.is_active(SimTime::from_ns(5)));
        // Window 0: [10, 40).
        assert_eq!(
            w.active_until(SimTime::from_ns(10)),
            Some(SimTime::from_ns(40))
        );
        assert_eq!(
            w.active_until(SimTime::from_ns(39)),
            Some(SimTime::from_ns(40))
        );
        assert!(!w.is_active(SimTime::from_ns(40)));
        assert!(!w.is_active(SimTime::from_ns(109)));
        // Window 1: [110, 140).
        assert_eq!(
            w.active_until(SimTime::from_ns(120)),
            Some(SimTime::from_ns(140))
        );
    }

    #[test]
    fn window_schedule_degenerate_cases() {
        let never = WindowSchedule::new(
            SimDuration::ZERO,
            SimDuration::from_ns(5),
            SimDuration::ZERO,
        );
        assert!(!never.is_active(SimTime::from_ns(3)));
        let zero_len = WindowSchedule::new(
            SimDuration::from_ns(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert!(!zero_len.is_active(SimTime::ZERO));
        // Duration longer than period clamps to always-on.
        let full = WindowSchedule::new(
            SimDuration::from_ns(10),
            SimDuration::from_ns(50),
            SimDuration::ZERO,
        );
        for ns in 0..30 {
            assert!(full.is_active(SimTime::from_ns(ns)));
        }
    }
}
