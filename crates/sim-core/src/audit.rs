//! Runtime conservation auditor: ledger checks, quiescence verification,
//! and bounded event forensics.
//!
//! Every subsystem that creates, transforms, or retires simulated objects
//! (packets on links, merge-table sessions, retransmission state) keeps
//! cheap always-compiled tallies — plain `u64` increments on paths that
//! already touch the counted object. This module supplies the machinery
//! that *checks* those tallies:
//!
//! * [`AuditProbe`] — a visitor each subsystem fills in: conservation
//!   ledgers (`expected` vs `actual`), raw counters for the forensic
//!   report, and quiescence requirements (values that must be zero once
//!   a run has drained).
//! * [`AuditReport`] — the forensic report built from a failed probe:
//!   every violated ledger with expected/actual, the full counter set,
//!   and the last N events from a bounded [`EventRing`].
//! * [`EventRing`] — a fixed-capacity ring of compact event records
//!   (`&'static str` tag plus three integers; nothing is formatted until
//!   a violation is being reported).
//!
//! # Gating
//!
//! Tallies are always compiled — they are a handful of integer adds on
//! paths dominated by queue and hash work. The *checks* and the ring
//! recording run only when auditing is enabled: at runtime via
//! [`set_force_enabled`] (the harness `--audit` flag), or by default in
//! builds with the `audit` cargo feature. Auditing observes and never
//! feeds a value back into simulation state, so results are byte-identical
//! with auditing off and on; CI pins this against the golden tables the
//! same way it pins the profiler (the second documented observe-only
//! exception — auditing is the third, see the crate docs).

use crate::time::SimTime;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide runtime switch flipped by the harness `--audit` flag.
static FORCE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Forces auditing on (or off) for subsequently constructed simulations,
/// regardless of the `audit` cargo feature. Observe-only by contract, so
/// flipping this mid-process can change which runs are *checked*, never
/// what they compute.
pub fn set_force_enabled(on: bool) {
    FORCE_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether newly constructed simulations audit by default: true in builds
/// with the `audit` cargo feature or after [`set_force_enabled`]`(true)`.
pub fn default_enabled() -> bool {
    cfg!(feature = "audit") || FORCE_ENABLED.load(Ordering::Relaxed)
}

/// Auditor configuration, carried by the engine's `SystemConfig`.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Run ledger checks and record forensics. Defaults to
    /// [`default_enabled`] at construction time.
    pub enabled: bool,
    /// Run a cadence check after at least this many fabric events since
    /// the previous check. Quiescence verification at end of run is
    /// unconditional (when `enabled`).
    pub cadence_events: u64,
    /// Capacity of the bounded event ring attached to forensic reports.
    pub ring_capacity: usize,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            enabled: default_enabled(),
            cadence_events: 8192,
            ring_capacity: 64,
        }
    }
}

/// One violated conservation ledger: the subsystem that owns it, the
/// ledger's name (its equation), and the mismatched sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerViolation {
    /// Owning subsystem (`"fabric"`, `"merge"`, `"nvls"`, `"engine"`).
    pub subsystem: &'static str,
    /// Ledger name, stating the checked equation.
    pub ledger: &'static str,
    /// What the ledger equation requires.
    pub expected: u64,
    /// What the tallies actually sum to.
    pub actual: u64,
    /// Free-form context (which port, which link, ...). Formatted only
    /// when the violation fires.
    pub detail: String,
}

impl fmt::Display for LedgerViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] ledger `{}`: expected {}, actual {}",
            self.subsystem, self.ledger, self.expected, self.actual
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Check phase a probe (and its report) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditPhase {
    /// Mid-run check at the configured event cadence: only invariants
    /// that hold at *any* event boundary are asserted.
    Cadence,
    /// End-of-run verification: every queue drained, every slab empty,
    /// no orphaned retransmission state. Runs on the success path too.
    Quiescence,
}

impl AuditPhase {
    fn label(self) -> &'static str {
        match self {
            AuditPhase::Cadence => "cadence",
            AuditPhase::Quiescence => "quiescence",
        }
    }
}

/// Visitor the auditor hands to each subsystem. Subsystems report their
/// ledgers and counters; the probe accumulates violations.
#[derive(Debug)]
pub struct AuditProbe {
    phase: AuditPhase,
    violations: Vec<LedgerViolation>,
    counters: Vec<(&'static str, u64)>,
}

impl AuditProbe {
    /// A probe for the given check phase.
    pub fn new(phase: AuditPhase) -> AuditProbe {
        AuditProbe {
            phase,
            violations: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// True for the end-of-run quiescence pass; subsystems gate their
    /// "everything drained" requirements on this.
    pub fn is_quiescence(&self) -> bool {
        self.phase == AuditPhase::Quiescence
    }

    /// Records a raw counter for the forensic report (always recorded,
    /// violation or not).
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.counters.push((name, value));
    }

    /// Checks a conservation ledger; a mismatch becomes a violation.
    pub fn ledger(
        &mut self,
        subsystem: &'static str,
        ledger: &'static str,
        expected: u64,
        actual: u64,
    ) {
        self.ledger_with(subsystem, ledger, expected, actual, String::new);
    }

    /// Like [`AuditProbe::ledger`], with lazily formatted context that is
    /// only evaluated when the ledger is actually violated.
    pub fn ledger_with(
        &mut self,
        subsystem: &'static str,
        ledger: &'static str,
        expected: u64,
        actual: u64,
        detail: impl FnOnce() -> String,
    ) {
        if expected != actual {
            self.violations.push(LedgerViolation {
                subsystem,
                ledger,
                expected,
                actual,
                detail: detail(),
            });
        }
    }

    /// Quiescence requirement: `actual` must be zero.
    pub fn require_zero(&mut self, subsystem: &'static str, ledger: &'static str, actual: u64) {
        self.ledger(subsystem, ledger, 0, actual);
    }

    /// True when any ledger check failed so far.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }

    /// The violations accumulated so far.
    pub fn violations(&self) -> &[LedgerViolation] {
        &self.violations
    }

    /// Consumes the probe into a forensic report, attaching the current
    /// sim time and the rendered tail of the event ring.
    pub fn into_report(self, now: SimTime, recent_events: Vec<String>) -> AuditReport {
        AuditReport {
            phase: self.phase,
            now,
            violations: self.violations,
            counters: self.counters,
            recent_events,
        }
    }
}

/// The forensic report carried by an `AuditViolation` error (and, minus
/// the violations, attachable to deadlock diagnostics): every violated
/// ledger, the complete per-subsystem counter set, and the last N events.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Which check phase fired.
    pub phase: AuditPhase,
    /// Sim time at which the check ran.
    pub now: SimTime,
    /// Every violated ledger, in subsystem visit order.
    pub violations: Vec<LedgerViolation>,
    /// All counters reported during the probe, violated or not.
    pub counters: Vec<(&'static str, u64)>,
    /// Rendered tail of the event ring, oldest first.
    pub recent_events: Vec<String>,
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit {} check failed at {} with {} violation(s):",
            self.phase.label(),
            self.now,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "    {name} = {value}")?;
            }
        }
        if !self.recent_events.is_empty() {
            writeln!(
                f,
                "  last {} event(s), oldest first:",
                self.recent_events.len()
            )?;
            for e in &self.recent_events {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// A compact event record: a static tag plus up to three integers, so
/// recording is two stores and nothing is formatted until a violation is
/// being rendered.
#[derive(Debug, Clone, Copy)]
pub struct RingEntry {
    /// When the event fired.
    pub time: SimTime,
    /// Static event tag (`"link.free"`, `"arrive.gpu"`, ...).
    pub what: &'static str,
    /// First operand (packet id, link index, ... — tag-dependent).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// Fixed-capacity ring buffer of [`RingEntry`]s. The auditor keeps one
/// per fabric; deadlock and audit reports render its tail.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<RingEntry>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    cap: usize,
    total: u64,
}

impl EventRing {
    /// A ring holding the last `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            next: 0,
            cap,
            total: 0,
        }
    }

    /// Records one event, evicting the oldest once full.
    #[inline]
    pub fn record(&mut self, time: SimTime, what: &'static str, a: u64, b: u64) {
        let entry = RingEntry { time, what, a, b };
        if self.buf.len() < self.cap {
            self.buf.push(entry);
        } else {
            self.buf[self.next] = entry;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Renders the retained events oldest-first.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.buf.len());
        let start = if self.buf.len() < self.cap {
            0
        } else {
            self.next
        };
        for i in 0..self.buf.len() {
            let e = &self.buf[(start + i) % self.buf.len()];
            out.push(format!("{} {} a={} b={}", e.time, e.what, e.a, e.b));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_accumulates_only_mismatches() {
        let mut p = AuditProbe::new(AuditPhase::Cadence);
        p.counter("x.total", 7);
        p.ledger("fabric", "balanced", 3, 3);
        assert!(!p.has_violations());
        p.ledger_with("merge", "sessions", 5, 4, || "port (0,1)".into());
        assert!(p.has_violations());
        let v = &p.violations()[0];
        assert_eq!(v.subsystem, "merge");
        assert_eq!(v.ledger, "sessions");
        assert_eq!((v.expected, v.actual), (5, 4));
        assert_eq!(v.detail, "port (0,1)");
    }

    #[test]
    fn quiescence_probe_requires_zero() {
        let mut p = AuditProbe::new(AuditPhase::Quiescence);
        assert!(p.is_quiescence());
        p.require_zero("nvls", "open_sessions", 0);
        assert!(!p.has_violations());
        p.require_zero("nvls", "open_sessions", 2);
        assert!(p.has_violations());
    }

    #[test]
    fn report_names_subsystem_and_ledger() {
        let mut p = AuditProbe::new(AuditPhase::Quiescence);
        p.counter("fabric.pkt_enqueued", 10);
        p.ledger("fabric", "enqueued == served + queued", 10, 9);
        let report = p.into_report(SimTime::from_ns(42), vec!["e1".into()]);
        let text = report.to_string();
        assert!(text.contains("[fabric]"), "{text}");
        assert!(text.contains("enqueued == served + queued"), "{text}");
        assert!(text.contains("expected 10, actual 9"), "{text}");
        assert!(text.contains("fabric.pkt_enqueued = 10"), "{text}");
        assert!(text.contains("e1"), "{text}");
    }

    #[test]
    fn ring_keeps_last_n_oldest_first() {
        let mut r = EventRing::new(3);
        for i in 0..5u64 {
            r.record(SimTime::from_ns(i), "ev", i, 100 + i);
        }
        assert_eq!(r.total_recorded(), 5);
        let rendered = r.render();
        assert_eq!(rendered.len(), 3);
        assert!(rendered[0].contains("a=2"), "{rendered:?}");
        assert!(rendered[2].contains("a=4"), "{rendered:?}");
    }

    #[test]
    fn ring_under_capacity_renders_in_order() {
        let mut r = EventRing::new(8);
        r.record(SimTime::ZERO, "first", 1, 0);
        r.record(SimTime::from_ns(1), "second", 2, 0);
        let rendered = r.render();
        assert_eq!(rendered.len(), 2);
        assert!(rendered[0].contains("first"));
        assert!(rendered[1].contains("second"));
    }
}
