//! Logical dataflow graphs of tensor-parallel transformer computation.

use std::fmt;

/// Index of a node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Collective operation kinds appearing in tensor parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    /// Sum partial tensors across GPUs; every GPU gets the full result.
    AllReduce,
    /// Concatenate per-GPU shards; every GPU gets the full tensor.
    AllGather,
    /// Sum partials and leave each GPU with its own shard.
    ReduceScatter,
}

/// What a node computes.
///
/// Compute nodes carry **per-GPU** dimensions (after TP partitioning);
/// collective nodes carry the **full logical tensor** shape being
/// communicated.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Dense GEMM: per-GPU `m x k @ k x n`.
    Gemm {
        /// Rows of the activation operand.
        m: u64,
        /// Output columns (per-GPU shard width for column-parallel).
        n: u64,
        /// Contraction dimension.
        k: u64,
    },
    /// The softmax(QK^T)V attention core; communication-free under TP by
    /// head partitioning, so only aggregate cost matters.
    AttentionCore {
        /// Per-GPU FLOPs.
        flops: f64,
        /// Per-GPU HBM traffic in bytes.
        bytes: u64,
    },
    /// Row-wise LayerNorm over a per-GPU `[rows, cols]` slab.
    LayerNorm {
        /// Per-GPU rows (sequence-sharded under SP).
        rows: u64,
        /// Columns (hidden dimension).
        cols: u64,
    },
    /// Dropout / residual-add style elementwise work.
    Elementwise {
        /// Per-GPU rows.
        rows: u64,
        /// Columns.
        cols: u64,
        /// FLOPs per element (small).
        flops_per_elem: f64,
    },
    /// An inter-GPU collective over a `[rows, cols]` logical tensor.
    Collective {
        /// The collective.
        kind: CollKind,
        /// Full-tensor rows.
        rows: u64,
        /// Full-tensor cols.
        cols: u64,
    },
}

/// One dataflow node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Stable name used by reports and sub-layer extraction
    /// ("attn.proj", "ffn.fc1", "mlp.rs", ...).
    pub name: String,
    /// The operation.
    pub kind: NodeKind,
    /// Nodes whose outputs this node consumes.
    pub deps: Vec<NodeId>,
}

/// Errors from [`Dfg::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references a dependency that does not exist.
    DanglingDep {
        /// The offending node.
        node: NodeId,
        /// The missing dependency.
        dep: NodeId,
    },
    /// A node depends on itself or a later node (graphs must be built in
    /// topological order).
    ForwardDep {
        /// The offending node.
        node: NodeId,
        /// The forward dependency.
        dep: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingDep { node, dep } => {
                write!(f, "node {node} depends on nonexistent node {dep}")
            }
            GraphError::ForwardDep { node, dep } => {
                write!(
                    f,
                    "node {node} depends on later node {dep} (not topological)"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A dataflow graph for one GPU's share of a tensor-parallel program.
///
/// Nodes are stored in topological order by construction: a node may only
/// depend on earlier nodes. [`Dfg::validate`] checks this invariant.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
    /// Bytes per tensor element.
    pub elem_bytes: u64,
}

impl Dfg {
    /// Creates an empty graph with the given element width.
    pub fn new(elem_bytes: u64) -> Dfg {
        Dfg {
            nodes: Vec::new(),
            elem_bytes,
        }
    }

    /// Appends a node; returns its id.
    pub fn add(&mut self, name: impl Into<String>, kind: NodeKind, deps: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.into(),
            kind,
            deps,
        });
        id
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids in topological order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Finds the first node with the given name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.ids()
            .filter(|&c| self.node(c).deps.contains(&id))
            .collect()
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (i, node) in self.nodes.iter().enumerate() {
            for &dep in &node.deps {
                if dep.0 >= self.nodes.len() {
                    return Err(GraphError::DanglingDep {
                        node: NodeId(i),
                        dep,
                    });
                }
                if dep.0 >= i {
                    return Err(GraphError::ForwardDep {
                        node: NodeId(i),
                        dep,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total per-GPU compute FLOPs.
    pub fn total_flops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Gemm { m, n, k } => 2.0 * (*m as f64) * (*n as f64) * (*k as f64),
                NodeKind::AttentionCore { flops, .. } => *flops,
                NodeKind::LayerNorm { rows, cols } => 8.0 * (*rows as f64) * (*cols as f64),
                NodeKind::Elementwise {
                    rows,
                    cols,
                    flops_per_elem,
                } => (*rows as f64) * (*cols as f64) * flops_per_elem,
                NodeKind::Collective { .. } => 0.0,
            })
            .sum()
    }

    /// Total full-tensor bytes moved by collectives (algorithmic volume,
    /// before any transport multiplier).
    pub fn total_collective_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Collective { rows, cols, .. } => rows * cols * self.elem_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of collectives of a given kind.
    pub fn collective_count(&self, kind: CollKind) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(&n.kind, NodeKind::Collective { kind: k, .. } if *k == kind))
            .count()
    }

    /// Appends all of `other`'s nodes, chaining `other`'s roots onto
    /// `tail` (typically the last node of `self`). Returns the id offset
    /// applied to `other`'s nodes.
    pub fn append(&mut self, other: &Dfg, tail: Option<NodeId>) -> usize {
        let offset = self.nodes.len();
        for node in &other.nodes {
            let mut deps: Vec<NodeId> = node.deps.iter().map(|d| NodeId(d.0 + offset)).collect();
            if deps.is_empty() {
                if let Some(t) = tail {
                    deps.push(t);
                }
            }
            self.nodes.push(Node {
                name: node.name.clone(),
                kind: node.kind.clone(),
                deps,
            });
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm(m: u64, n: u64, k: u64) -> NodeKind {
        NodeKind::Gemm { m, n, k }
    }

    #[test]
    fn build_and_validate() {
        let mut g = Dfg::new(2);
        let a = g.add("a", gemm(4, 4, 4), vec![]);
        let b = g.add(
            "rs",
            NodeKind::Collective {
                kind: CollKind::ReduceScatter,
                rows: 4,
                cols: 4,
            },
            vec![a],
        );
        let _c = g.add("c", gemm(4, 4, 4), vec![b]);
        assert!(g.validate().is_ok());
        assert_eq!(g.len(), 3);
        assert_eq!(g.find("rs"), Some(NodeId(1)));
        assert_eq!(g.consumers(a), vec![NodeId(1)]);
    }

    #[test]
    fn validation_catches_dangling() {
        let mut g = Dfg::new(2);
        g.add("a", gemm(1, 1, 1), vec![NodeId(5)]);
        assert!(matches!(g.validate(), Err(GraphError::DanglingDep { .. })));
    }

    #[test]
    fn validation_catches_forward_dep() {
        let mut g = Dfg::new(2);
        g.add("a", gemm(1, 1, 1), vec![NodeId(0)]);
        assert!(matches!(g.validate(), Err(GraphError::ForwardDep { .. })));
    }

    #[test]
    fn totals() {
        let mut g = Dfg::new(2);
        let a = g.add("a", gemm(10, 20, 30), vec![]);
        g.add(
            "ar",
            NodeKind::Collective {
                kind: CollKind::AllReduce,
                rows: 10,
                cols: 20,
            },
            vec![a],
        );
        assert_eq!(g.total_flops(), 2.0 * 10.0 * 20.0 * 30.0);
        assert_eq!(g.total_collective_bytes(), 10 * 20 * 2);
        assert_eq!(g.collective_count(CollKind::AllReduce), 1);
        assert_eq!(g.collective_count(CollKind::AllGather), 0);
    }

    #[test]
    fn append_chains_roots() {
        let mut g = Dfg::new(2);
        let a = g.add("a", gemm(1, 1, 1), vec![]);
        let mut h = Dfg::new(2);
        h.add("b", gemm(2, 2, 2), vec![]);
        let off = g.append(&h, Some(a));
        assert_eq!(off, 1);
        assert_eq!(g.node(NodeId(1)).deps, vec![a]);
        assert!(g.validate().is_ok());
    }
}
