//! Transformer-layer dataflow builders under tensor parallelism.

use crate::graph::{CollKind, Dfg, NodeId, NodeKind};
use crate::models::ModelConfig;

/// Tensor-parallel partitioning scheme (paper Fig. 1a/1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpMode {
    /// Megatron basic TP: column-parallel then row-parallel GEMMs with an
    /// AllReduce (`f`/`f̄`) at each block boundary.
    BasicTp,
    /// TP with sequence parallelism: activations are sequence-sharded
    /// outside the blocks; `g`/`ḡ` become ReduceScatter/AllGather and
    /// LayerNorm/dropout run on shards.
    SeqPar,
}

/// Which pass of training to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward only (also the communication-heavy prefill phase of
    /// inference the paper evaluates).
    Forward,
    /// Backward only.
    Backward,
    /// Forward followed by backward (one training step of the layer).
    Training,
}

fn coll(kind: CollKind, rows: u64, cols: u64) -> NodeKind {
    NodeKind::Collective { kind, rows, cols }
}

fn gemm(m: u64, n: u64, k: u64) -> NodeKind {
    NodeKind::Gemm { m, n, k }
}

/// Per-GPU attention-core cost (softmax(QK^T)V over local heads).
fn attn_core(cfg: &ModelConfig, p: u64, backward: bool) -> NodeKind {
    let t = cfg.tokens();
    // QK^T and AV are each 2*T*S*(H/p) FLOPs over the local heads.
    let mut flops = 4.0 * t as f64 * cfg.seq_len as f64 * (cfg.hidden / p) as f64;
    // Score matrix traffic: B * heads/p * S^2 elements, written + read.
    let mut bytes =
        2 * cfg.batch * (cfg.heads / p).max(1) * cfg.seq_len * cfg.seq_len * cfg.elem_bytes;
    if backward {
        flops *= 2.0;
        bytes *= 2;
    }
    NodeKind::AttentionCore { flops, bytes }
}

/// Builds one transformer layer's dataflow graph for one GPU of a
/// `p`-way tensor-parallel group.
///
/// Node names are stable (`attn.qkv`, `ffn.rs`, `bwd.ffn.fc1_dx`, ...)
/// so strategies and experiments can locate structure by name.
///
/// # Panics
///
/// Panics if the model dimensions are not divisible by `p`.
pub fn transformer_layer(cfg: &ModelConfig, p: u64, mode: TpMode, pass: Pass) -> Dfg {
    assert!(p >= 1, "need at least one GPU");
    assert!(
        cfg.hidden.is_multiple_of(p)
            && cfg.ffn_hidden.is_multiple_of(p)
            && cfg.heads.is_multiple_of(p),
        "model dims must divide the TP degree {p}"
    );
    let mut g = Dfg::new(cfg.elem_bytes);
    let tail = match pass {
        Pass::Forward | Pass::Training => Some(build_forward(&mut g, cfg, p, mode, None)),
        Pass::Backward => None,
    };
    if matches!(pass, Pass::Backward | Pass::Training) {
        build_backward(&mut g, cfg, p, mode, tail);
    }
    debug_assert!(g.validate().is_ok());
    g
}

/// Builds a stack of `layers` transformer layers chained end to end —
/// the unit for multi-layer experiments. Under CAIS the cross-layer
/// boundaries are exactly the L2/L4 sub-layer patterns, so fusion spans
/// layers.
///
/// # Panics
///
/// Panics if `layers == 0` or the model dims don't divide `p`.
pub fn transformer_stack(cfg: &ModelConfig, p: u64, mode: TpMode, pass: Pass, layers: u64) -> Dfg {
    assert!(layers > 0, "need at least one layer");
    let mut g = transformer_layer(cfg, p, mode, pass);
    for _ in 1..layers {
        let next = transformer_layer(cfg, p, mode, pass);
        let tail = NodeId(g.len() - 1);
        g.append(&next, Some(tail));
    }
    debug_assert!(g.validate().is_ok());
    g
}

fn build_forward(
    g: &mut Dfg,
    cfg: &ModelConfig,
    p: u64,
    mode: TpMode,
    input: Option<NodeId>,
) -> NodeId {
    let t = cfg.tokens();
    let h = cfg.hidden;
    let f = cfg.ffn_hidden;
    let deps = |x: Option<NodeId>| x.map(|d| vec![d]).unwrap_or_default();

    match mode {
        TpMode::BasicTp => {
            let ln1 = g.add("ln1", NodeKind::LayerNorm { rows: t, cols: h }, deps(input));
            let qkv = g.add("attn.qkv", gemm(t, 3 * h / p, h), vec![ln1]);
            let core = g.add("attn.core", attn_core(cfg, p, false), vec![qkv]);
            let proj = g.add("attn.proj", gemm(t, h, h / p), vec![core]);
            let ar1 = g.add("attn.ar", coll(CollKind::AllReduce, t, h), vec![proj]);
            let add1 = g.add(
                "add1",
                NodeKind::Elementwise {
                    rows: t,
                    cols: h,
                    flops_per_elem: 2.0,
                },
                vec![ar1],
            );
            let ln2 = g.add("ln2", NodeKind::LayerNorm { rows: t, cols: h }, vec![add1]);
            let fc1 = g.add("ffn.fc1", gemm(t, f / p, h), vec![ln2]);
            let gelu = g.add(
                "ffn.gelu",
                NodeKind::Elementwise {
                    rows: t,
                    cols: f / p,
                    flops_per_elem: 8.0,
                },
                vec![fc1],
            );
            let fc2 = g.add("ffn.fc2", gemm(t, h, f / p), vec![gelu]);
            let ar2 = g.add("ffn.ar", coll(CollKind::AllReduce, t, h), vec![fc2]);
            g.add(
                "add2",
                NodeKind::Elementwise {
                    rows: t,
                    cols: h,
                    flops_per_elem: 2.0,
                },
                vec![ar2],
            )
        }
        TpMode::SeqPar => {
            let ln1 = g.add(
                "ln1",
                NodeKind::LayerNorm {
                    rows: t / p,
                    cols: h,
                },
                deps(input),
            );
            let ag1 = g.add("attn.ag", coll(CollKind::AllGather, t, h), vec![ln1]);
            let qkv = g.add("attn.qkv", gemm(t, 3 * h / p, h), vec![ag1]);
            let core = g.add("attn.core", attn_core(cfg, p, false), vec![qkv]);
            let proj = g.add("attn.proj", gemm(t, h, h / p), vec![core]);
            let rs1 = g.add("attn.rs", coll(CollKind::ReduceScatter, t, h), vec![proj]);
            let add1 = g.add(
                "add1",
                NodeKind::Elementwise {
                    rows: t / p,
                    cols: h,
                    flops_per_elem: 2.0,
                },
                vec![rs1],
            );
            let ln2 = g.add(
                "ln2",
                NodeKind::LayerNorm {
                    rows: t / p,
                    cols: h,
                },
                vec![add1],
            );
            let ag2 = g.add("ffn.ag", coll(CollKind::AllGather, t, h), vec![ln2]);
            let fc1 = g.add("ffn.fc1", gemm(t, f / p, h), vec![ag2]);
            let gelu = g.add(
                "ffn.gelu",
                NodeKind::Elementwise {
                    rows: t,
                    cols: f / p,
                    flops_per_elem: 8.0,
                },
                vec![fc1],
            );
            let fc2 = g.add("ffn.fc2", gemm(t, h, f / p), vec![gelu]);
            let rs2 = g.add("ffn.rs", coll(CollKind::ReduceScatter, t, h), vec![fc2]);
            g.add(
                "add2",
                NodeKind::Elementwise {
                    rows: t / p,
                    cols: h,
                    flops_per_elem: 2.0,
                },
                vec![rs2],
            )
        }
    }
}

fn build_backward(
    g: &mut Dfg,
    cfg: &ModelConfig,
    p: u64,
    mode: TpMode,
    input: Option<NodeId>,
) -> NodeId {
    let t = cfg.tokens();
    let h = cfg.hidden;
    let f = cfg.ffn_hidden;
    let deps = |x: Option<NodeId>| x.map(|d| vec![d]).unwrap_or_default();
    let sharded_rows = match mode {
        TpMode::BasicTp => t,
        TpMode::SeqPar => t / p,
    };

    // ---- FFN backward (reverse of forward order) ----
    let dadd2 = g.add(
        "bwd.add2",
        NodeKind::Elementwise {
            rows: sharded_rows,
            cols: h,
            flops_per_elem: 2.0,
        },
        deps(input),
    );
    // Under SP, the incoming sharded gradient must be gathered before the
    // row-parallel fc2 backward (ḡ = AllGather in backward).
    let dfc2_in = match mode {
        TpMode::SeqPar => g.add("bwd.ffn.ag", coll(CollKind::AllGather, t, h), vec![dadd2]),
        TpMode::BasicTp => dadd2,
    };
    let dfc2_dx = g.add("bwd.ffn.fc2_dx", gemm(t, f / p, h), vec![dfc2_in]);
    let _dfc2_dw = g.add("bwd.ffn.fc2_dw", gemm(f / p, h, t), vec![dfc2_in]);
    let dgelu = g.add(
        "bwd.ffn.gelu",
        NodeKind::Elementwise {
            rows: t,
            cols: f / p,
            flops_per_elem: 8.0,
        },
        vec![dfc2_dx],
    );
    let dfc1_dx = g.add("bwd.ffn.fc1_dx", gemm(t, h, f / p), vec![dgelu]);
    let _dfc1_dw = g.add("bwd.ffn.fc1_dw", gemm(h, f / p, t), vec![dgelu]);
    // Column-parallel fc1 backward produces a partial full gradient:
    // f̄ = AllReduce (basic) or g = ReduceScatter (SP).
    let dffn_out = match mode {
        TpMode::BasicTp => g.add("bwd.ffn.ar", coll(CollKind::AllReduce, t, h), vec![dfc1_dx]),
        TpMode::SeqPar => g.add(
            "bwd.ffn.rs",
            coll(CollKind::ReduceScatter, t, h),
            vec![dfc1_dx],
        ),
    };
    let dln2 = g.add(
        "bwd.ln2",
        NodeKind::LayerNorm {
            rows: sharded_rows,
            cols: h,
        },
        vec![dffn_out],
    );

    // ---- Attention backward ----
    let dattn_in = match mode {
        TpMode::SeqPar => g.add("bwd.attn.ag", coll(CollKind::AllGather, t, h), vec![dln2]),
        TpMode::BasicTp => dln2,
    };
    let dproj_dx = g.add("bwd.attn.proj_dx", gemm(t, h / p, h), vec![dattn_in]);
    let _dproj_dw = g.add("bwd.attn.proj_dw", gemm(h / p, h, t), vec![dattn_in]);
    let dcore = g.add("bwd.attn.core", attn_core(cfg, p, true), vec![dproj_dx]);
    let dqkv_dx = g.add("bwd.attn.qkv_dx", gemm(t, h, 3 * h / p), vec![dcore]);
    let _dqkv_dw = g.add("bwd.attn.qkv_dw", gemm(h, 3 * h / p, t), vec![dcore]);
    let dattn_out = match mode {
        TpMode::BasicTp => g.add(
            "bwd.attn.ar",
            coll(CollKind::AllReduce, t, h),
            vec![dqkv_dx],
        ),
        TpMode::SeqPar => g.add(
            "bwd.attn.rs",
            coll(CollKind::ReduceScatter, t, h),
            vec![dqkv_dx],
        ),
    };
    g.add(
        "bwd.ln1",
        NodeKind::LayerNorm {
            rows: sharded_rows,
            cols: h,
        },
        vec![dattn_out],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama() -> ModelConfig {
        ModelConfig::llama_7b()
    }

    #[test]
    fn basic_tp_forward_has_two_allreduces() {
        let g = transformer_layer(&llama(), 8, TpMode::BasicTp, Pass::Forward);
        g.validate().unwrap();
        assert_eq!(g.collective_count(CollKind::AllReduce), 2);
        assert_eq!(g.collective_count(CollKind::AllGather), 0);
        assert_eq!(g.collective_count(CollKind::ReduceScatter), 0);
    }

    #[test]
    fn sp_forward_has_two_ag_two_rs() {
        let g = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        assert_eq!(g.collective_count(CollKind::AllGather), 2);
        assert_eq!(g.collective_count(CollKind::ReduceScatter), 2);
        assert_eq!(g.collective_count(CollKind::AllReduce), 0);
    }

    #[test]
    fn sp_training_collective_volume_matches_basic() {
        // AR is algorithmically RS + AG over the same tensor, so the
        // *logical* tensor volume of SP (8 collectives over [T, H]) is
        // double Basic's (4 AllReduces over [T, H]) while moving the same
        // bytes once lowered. Here we just pin the counts.
        let sp = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Training);
        assert_eq!(sp.collective_count(CollKind::AllGather), 4);
        assert_eq!(sp.collective_count(CollKind::ReduceScatter), 4);
        let basic = transformer_layer(&llama(), 8, TpMode::BasicTp, Pass::Training);
        assert_eq!(basic.collective_count(CollKind::AllReduce), 4);
    }

    #[test]
    fn backward_has_roughly_double_gemm_flops() {
        let fwd = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        let bwd = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Backward);
        let ratio = bwd.total_flops() / fwd.total_flops();
        assert!(
            (1.6..=2.4).contains(&ratio),
            "backward/forward flop ratio {ratio}"
        );
    }

    #[test]
    fn training_is_forward_plus_backward() {
        let f = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        let b = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Backward);
        let t = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Training);
        assert_eq!(t.len(), f.len() + b.len());
        assert!((t.total_flops() - f.total_flops() - b.total_flops()).abs() < 1.0);
    }

    #[test]
    fn per_gpu_flops_shrink_with_tp_degree() {
        let g8 = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        let g4 = transformer_layer(&llama(), 4, TpMode::SeqPar, Pass::Forward);
        assert!(g4.total_flops() > 1.5 * g8.total_flops());
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_dims_panic() {
        let _ = transformer_layer(&llama(), 7, TpMode::SeqPar, Pass::Forward);
    }

    #[test]
    fn stack_chains_layers() {
        let g = transformer_stack(&llama(), 8, TpMode::SeqPar, Pass::Forward, 3);
        let single = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        assert_eq!(g.len(), 3 * single.len());
        g.validate().unwrap();
        // Layer 2's first node depends on layer 1's last node.
        let boundary = g.node(crate::graph::NodeId(single.len()));
        assert_eq!(boundary.deps, vec![crate::graph::NodeId(single.len() - 1)]);
        assert_eq!(
            g.collective_count(CollKind::AllGather),
            3 * single.collective_count(CollKind::AllGather)
        );
    }

    #[test]
    fn names_are_stable() {
        let g = transformer_layer(&llama(), 8, TpMode::SeqPar, Pass::Forward);
        for name in ["ln1", "attn.ag", "attn.qkv", "attn.rs", "ffn.fc1", "ffn.rs"] {
            assert!(g.find(name).is_some(), "missing node {name}");
        }
    }
}
