//! The four communication-intensive sub-layers of the paper (Fig. 12).
//!
//! Each is a GEMM-RS → LayerNorm → AG-GEMM chain crossing a block
//! boundary, which is exactly the pattern the CAIS graph-level dataflow
//! optimizer fuses into one pipeline:
//!
//! * **L1** — output projection → LN → first FFN layer (forward)
//! * **L2** — second FFN layer → LN → input (QKV) projection (forward)
//! * **L3** — first FFN layer → LN → output projection (backward)
//! * **L4** — input projection → LN → second FFN layer (backward)

use crate::graph::{CollKind, Dfg, NodeKind};
use crate::models::ModelConfig;

/// One of the paper's four sub-layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubLayer {
    /// Output projection → LN → first FFN layer (forward).
    L1,
    /// Second FFN layer → LN → input projection (forward).
    L2,
    /// First FFN layer → LN → output projection (backward).
    L3,
    /// Input projection → LN → second FFN layer (backward).
    L4,
}

impl SubLayer {
    /// All four, in paper order.
    pub const ALL: [SubLayer; 4] = [SubLayer::L1, SubLayer::L2, SubLayer::L3, SubLayer::L4];

    /// Paper label ("L1".."L4").
    pub fn label(self) -> &'static str {
        match self {
            SubLayer::L1 => "L1",
            SubLayer::L2 => "L2",
            SubLayer::L3 => "L3",
            SubLayer::L4 => "L4",
        }
    }
}

/// Builds the sub-layer's dataflow graph for a `p`-way TP group under
/// sequence parallelism.
///
/// Every sub-layer has the shape
/// `GEMM (partial [T, H]) → ReduceScatter → LayerNorm (shard) → AllGather → GEMM`,
/// with GEMM dimensions taken from the surrounding transformer structure.
///
/// # Panics
///
/// Panics if the model dimensions are not divisible by `p`.
pub fn sublayer(cfg: &ModelConfig, p: u64, which: SubLayer) -> Dfg {
    assert!(
        cfg.hidden.is_multiple_of(p) && cfg.ffn_hidden.is_multiple_of(p),
        "model dims must divide the TP degree {p}"
    );
    let t = cfg.tokens();
    let h = cfg.hidden;
    let f = cfg.ffn_hidden;

    // (producer m,n,k) -> RS -> LN -> AG -> (consumer m,n,k)
    let (pname, pg, cname, cg) = match which {
        // attn.proj: [T,H/p]x[H/p,H]; ffn.fc1: [T,H]x[H,F/p]
        SubLayer::L1 => ("attn.proj", (t, h, h / p), "ffn.fc1", (t, f / p, h)),
        // ffn.fc2: [T,F/p]x[F/p,H]; next layer qkv: [T,H]x[H,3H/p]
        SubLayer::L2 => ("ffn.fc2", (t, h, f / p), "attn.qkv", (t, 3 * h / p, h)),
        // bwd fc1 dX: [T,F/p]x[F/p,H] partial; bwd proj dX: [T,H]x[H,H/p]
        SubLayer::L3 => (
            "bwd.ffn.fc1_dx",
            (t, h, f / p),
            "bwd.attn.proj_dx",
            (t, h / p, h),
        ),
        // bwd qkv dX: [T,3H/p]x[3H/p,H] partial; bwd fc2 dX: [T,H]x[H,F/p]
        SubLayer::L4 => (
            "bwd.attn.qkv_dx",
            (t, h, 3 * h / p),
            "bwd.ffn.fc2_dx",
            (t, f / p, h),
        ),
    };

    let mut g = Dfg::new(cfg.elem_bytes);
    let prod = g.add(
        pname,
        NodeKind::Gemm {
            m: pg.0,
            n: pg.1,
            k: pg.2,
        },
        vec![],
    );
    let rs = g.add(
        "rs",
        NodeKind::Collective {
            kind: CollKind::ReduceScatter,
            rows: t,
            cols: h,
        },
        vec![prod],
    );
    let ln = g.add(
        "ln",
        NodeKind::LayerNorm {
            rows: t / p,
            cols: h,
        },
        vec![rs],
    );
    let ag = g.add(
        "ag",
        NodeKind::Collective {
            kind: CollKind::AllGather,
            rows: t,
            cols: h,
        },
        vec![ln],
    );
    let _cons = g.add(
        cname,
        NodeKind::Gemm {
            m: cg.0,
            n: cg.1,
            k: cg.2,
        },
        vec![ag],
    );
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CollKind;

    #[test]
    fn all_sublayers_have_rs_ln_ag_shape() {
        let cfg = ModelConfig::llama_7b();
        for which in SubLayer::ALL {
            let g = sublayer(&cfg, 8, which);
            g.validate().unwrap();
            assert_eq!(g.len(), 5, "{}", which.label());
            assert_eq!(g.collective_count(CollKind::ReduceScatter), 1);
            assert_eq!(g.collective_count(CollKind::AllGather), 1);
            assert!(g.find("rs").is_some());
            assert!(g.find("ag").is_some());
        }
    }

    #[test]
    fn l1_dimensions() {
        let cfg = ModelConfig::llama_7b();
        let g = sublayer(&cfg, 8, SubLayer::L1);
        let prod = g.node(g.find("attn.proj").unwrap());
        match &prod.kind {
            NodeKind::Gemm { m, n, k } => {
                assert_eq!((*m, *n, *k), (9216, 4096, 512));
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let cons = g.node(g.find("ffn.fc1").unwrap());
        match &cons.kind {
            NodeKind::Gemm { m, n, k } => {
                assert_eq!((*m, *n, *k), (9216, 1408, 4096));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SubLayer::L3.label(), "L3");
        assert_eq!(SubLayer::ALL.len(), 4);
    }
}
