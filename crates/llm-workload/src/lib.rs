//! LLM tensor-parallel workload model.
//!
//! Provides the paper's evaluation workloads (Table I) as explicit
//! dataflow graphs: transformer layers partitioned with **Basic TP**
//! (Megatron-style, AllReduce at each block boundary) or **TP with
//! Sequence Parallelism** (ReduceScatter + AllGather with sharded
//! LayerNorm), for forward and backward passes, plus the four
//! communication-intensive sub-layers L1–L4 the paper studies in Figs.
//! 12–16.
//!
//! The graphs are *logical*: nodes carry per-GPU compute dimensions and
//! full-tensor collective sizes. Execution strategies (the `baselines` and
//! `cais-core` crates) lower them into thread-block grids and fabric
//! traffic.
//!
//! # Example
//!
//! ```
//! use llm_workload::{ModelConfig, TpMode, Pass, transformer_layer};
//!
//! let model = ModelConfig::llama_7b();
//! let dfg = transformer_layer(&model, 8, TpMode::SeqPar, Pass::Forward);
//! assert!(dfg.validate().is_ok());
//! // A TP+SP forward layer has 2 AllGathers and 2 ReduceScatters.
//! assert_eq!(dfg.collective_count(llm_workload::CollKind::AllGather), 2);
//! assert_eq!(dfg.collective_count(llm_workload::CollKind::ReduceScatter), 2);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod models;
pub mod sublayer;
pub mod transformer;

pub use graph::{CollKind, Dfg, GraphError, Node, NodeId, NodeKind};
pub use models::ModelConfig;
pub use sublayer::{sublayer, SubLayer};
pub use transformer::{transformer_layer, transformer_stack, Pass, TpMode};
