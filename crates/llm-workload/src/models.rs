//! Model configurations (paper Table I and Table II).

/// A transformer model configuration.
///
/// The paper evaluates scaled-down variants: matrix dimensions are halved
/// relative to the full-size models, matching a half-SM GPU (validated in
/// its Table II). The Table I presets here are those halved configs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Short display name.
    pub name: &'static str,
    /// Hidden dimension (d_model).
    pub hidden: u64,
    /// FFN intermediate dimension.
    pub ffn_hidden: u64,
    /// Attention heads.
    pub heads: u64,
    /// Sequence length.
    pub seq_len: u64,
    /// Batch size (sequences).
    pub batch: u64,
    /// Transformer layers (used to scale per-layer results end-to-end).
    pub layers: u64,
    /// Bytes per element (BF16/FP16 = 2).
    pub elem_bytes: u64,
}

impl ModelConfig {
    /// Mega-GPT-4B (Table I).
    pub fn mega_gpt_4b() -> ModelConfig {
        ModelConfig {
            name: "Mega-GPT-4B",
            hidden: 2048,
            ffn_hidden: 8192,
            heads: 24,
            seq_len: 1024,
            batch: 16,
            layers: 24,
            elem_bytes: 2,
        }
    }

    /// Mega-GPT-8B (Table I).
    pub fn mega_gpt_8b() -> ModelConfig {
        ModelConfig {
            name: "Mega-GPT-8B",
            hidden: 3072,
            ffn_hidden: 12288,
            heads: 32,
            seq_len: 1024,
            batch: 12,
            layers: 32,
            elem_bytes: 2,
        }
    }

    /// LLaMA-7B (Table I; the half-scale config of the Table II "Full"
    /// setup).
    pub fn llama_7b() -> ModelConfig {
        ModelConfig {
            name: "LLaMA-7B",
            hidden: 4096,
            ffn_hidden: 11264,
            heads: 32,
            seq_len: 3072,
            batch: 3,
            layers: 32,
            elem_bytes: 2,
        }
    }

    /// The Table II "Full" validation setup (matrix dims doubled, run on a
    /// full 132-SM GPU).
    pub fn llama_full_scale() -> ModelConfig {
        ModelConfig {
            name: "LLaMA-Full",
            hidden: 8192,
            ffn_hidden: 22528,
            heads: 64,
            ..ModelConfig::llama_7b()
        }
    }

    /// All three Table I workloads.
    pub fn table1() -> Vec<ModelConfig> {
        vec![
            ModelConfig::mega_gpt_4b(),
            ModelConfig::mega_gpt_8b(),
            ModelConfig::llama_7b(),
        ]
    }

    /// Tokens per microbatch (`batch * seq_len`).
    pub fn tokens(&self) -> u64 {
        self.batch * self.seq_len
    }

    /// Bytes of one full activation tensor `[tokens, hidden]`.
    pub fn activation_bytes(&self) -> u64 {
        self.tokens() * self.hidden * self.elem_bytes
    }

    /// Head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn head_dim(&self) -> u64 {
        assert!(
            self.hidden.is_multiple_of(self.heads),
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// A copy with the hidden/FFN dimensions scaled by `num/den`
    /// (used by the Fig. 17 scalability sweep, which grows the model with
    /// the GPU count).
    pub fn scale_hidden(&self, num: u64, den: u64) -> ModelConfig {
        ModelConfig {
            hidden: self.hidden * num / den,
            ffn_hidden: self.ffn_hidden * num / den,
            heads: (self.heads * num / den).max(1),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = ModelConfig::table1();
        assert_eq!(t.len(), 3);
        let llama = &t[2];
        assert_eq!(llama.hidden, 4096);
        assert_eq!(llama.ffn_hidden, 11264);
        assert_eq!(llama.heads, 32);
        assert_eq!(llama.seq_len, 3072);
        assert_eq!(llama.batch, 3);
    }

    #[test]
    fn derived_sizes() {
        let m = ModelConfig::llama_7b();
        assert_eq!(m.tokens(), 9216);
        assert_eq!(m.activation_bytes(), 9216 * 4096 * 2);
        assert_eq!(m.head_dim(), 128);
    }

    #[test]
    fn full_scale_doubles_dims() {
        let half = ModelConfig::llama_7b();
        let full = ModelConfig::llama_full_scale();
        assert_eq!(full.hidden, 2 * half.hidden);
        assert_eq!(full.ffn_hidden, 2 * half.ffn_hidden);
        assert_eq!(full.heads, 2 * half.heads);
        assert_eq!(full.seq_len, half.seq_len);
    }

    #[test]
    fn scale_hidden_scales_proportionally() {
        let m = ModelConfig::llama_7b().scale_hidden(2, 1);
        assert_eq!(m.hidden, 8192);
        assert_eq!(m.ffn_hidden, 22528);
        assert_eq!(m.heads, 64);
    }
}
