//! CAIS execution strategies: lowering dataflow graphs into
//! compute-aware in-switch programs.
//!
//! Three published variants plus ablation knobs:
//!
//! * **CAIS** — full system: merge unit + TB coordination + graph-level
//!   dataflow optimizer + traffic control.
//! * **CAIS-Partial** — no traffic control (Figs. 15–16).
//! * **CAIS-Base** — compute-aware ISA and merge unit only: collectives
//!   are still folded into compute kernels as `red.cais`/`ld.cais`, but
//!   operators execute as isolated phases with coarse barriers, requests
//!   are uncoordinated, and there is no asymmetric overlap.
//!
//! # Lowering scheme
//!
//! A fused pipeline `GEMM → RS/AR → (LN…)* → [AG] → GEMM` becomes:
//!
//! * producer GEMM TBs compute an output tile and `red.cais` it (split
//!   into switch-packet-sized pieces) toward the row's shard owner;
//! * middle TBs on the owner run per row band as soon as that band's
//!   reduction tiles land, then notify the other GPUs with an empty
//!   write;
//! * consumer GEMM TBs launch per row band as soon as the band is
//!   notified; non-owners `ld.cais` the band's operand tiles (merged in
//!   the switch: one fetch, `p - 1` replies), owners read locally.
//!
//! Producer and consumer kernels are in flight simultaneously, so the
//! reduce-heavy upstream and load-heavy downstream traffic overlap —
//! the paper's asymmetric kernel overlapping.

use crate::coordination::{coordinate_row, CoordinationOpts};
use crate::dataflow::{self, Stage};
use crate::index::Expr;
use crate::logic::CaisLogic;
use crate::merge::MergeConfig;
use cais_engine::{
    lower::GemmLowering, ExecReport, IdAlloc, Msg, PlannedKernel, Program, SimError, Strategy,
    SystemConfig, SystemSim,
};
use gpu_sim::{KernelCost, KernelDesc, MemOp, MemOpKind, Phase, ReadyPolicy, TbDesc};
use llm_workload::{CollKind, Dfg, NodeId, NodeKind};
use noc_sim::SwitchLogic;
use sim_core::{GpuId, KernelId, SimDuration, TileId};
use std::cell::RefCell;
use std::collections::HashMap;

/// Published CAIS variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaisVariant {
    /// Full CAIS.
    Full,
    /// No traffic control.
    Partial,
    /// No coordination, no dataflow optimizer.
    Base,
}

/// The paper's Merging Table provisioning: 320 entries per port (40 KB at
/// its 128 B line granularity). The *entry count* is the architectural
/// parameter; the byte capacity follows the merge granularity, so at this
/// simulator's coarser packets the same 320 entries hold more bytes.
pub const MERGE_TABLE_ENTRIES: u64 = 320;

/// Default `red.cais` split granularity (simulation packet size standing
/// in for the hardware's 128 B lines; see DESIGN.md).
pub const DEFAULT_PACKET_BYTES: u64 = 8 * 1024;

/// The CAIS strategy with ablation knobs.
///
/// ```no_run
/// use cais_core::CaisStrategy;
/// use cais_engine::{strategy::execute, SystemConfig};
/// use llm_workload::{sublayer, ModelConfig, SubLayer};
///
/// let cfg = SystemConfig::dgx_h100();
/// let dfg = sublayer(&ModelConfig::llama_7b(), cfg.tp(), SubLayer::L1);
/// let report = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
/// println!("end-to-end: {}", report.total);
/// ```
#[derive(Debug)]
pub struct CaisStrategy {
    name: String,
    coordination: CoordinationOpts,
    /// Graph-level dataflow optimizer on/off (TB-level fusion and
    /// asymmetric overlap vs. coarse per-operator barriers).
    fused: bool,
    /// Separate virtual channels for load vs. reduction traffic.
    traffic_control: bool,
    /// Merging-table capacity per port; `None` = derive from
    /// [`MERGE_TABLE_ENTRIES`] at the current packet granularity,
    /// `Some(None)` = unbounded, `Some(Some(b))` = explicit bytes.
    merge_table_bytes: Option<Option<u64>>,
    /// Merge-entry forward-progress timeout.
    timeout: SimDuration,
    /// Split granularity for `red.cais` traffic (switch packet size).
    cais_packet_bytes: u64,
    /// Throttle-credit override for ablations (`Some(None)` disables
    /// throttling even when the coordination option is on).
    credits_override: Option<Option<usize>>,
    /// Filled during lowering; consumed by `switch_logic`.
    group_expected: RefCell<HashMap<sim_core::GroupId, u32>>,
}

impl CaisStrategy {
    /// Builds one of the published variants.
    pub fn new(variant: CaisVariant) -> CaisStrategy {
        let (name, coordination, fused, traffic_control) = match variant {
            CaisVariant::Full => ("CAIS", CoordinationOpts::full(), true, true),
            CaisVariant::Partial => ("CAIS-Partial", CoordinationOpts::full(), true, false),
            CaisVariant::Base => ("CAIS-Base", CoordinationOpts::none(), false, false),
        };
        CaisStrategy {
            name: name.to_string(),
            coordination,
            fused,
            traffic_control,
            merge_table_bytes: None,
            timeout: SimDuration::from_us(30),
            cais_packet_bytes: DEFAULT_PACKET_BYTES,
            credits_override: None,
            group_expected: RefCell::new(HashMap::new()),
        }
    }

    /// Full CAIS.
    pub fn full() -> CaisStrategy {
        CaisStrategy::new(CaisVariant::Full)
    }

    /// CAIS without traffic control.
    pub fn partial() -> CaisStrategy {
        CaisStrategy::new(CaisVariant::Partial)
    }

    /// CAIS-Base.
    pub fn base() -> CaisStrategy {
        CaisStrategy::new(CaisVariant::Base)
    }

    /// Overrides the coordination mechanisms (Fig. 13b ablation ladder).
    pub fn with_coordination(mut self, name: &str, opts: CoordinationOpts) -> CaisStrategy {
        self.coordination = opts;
        self.name = format!("CAIS[{name}]");
        self
    }

    /// Overrides the merging-table capacity in bytes (`None` = unbounded;
    /// used by the Fig. 13a/14 sweeps). Without this override the table
    /// holds [`MERGE_TABLE_ENTRIES`] packet-sized sessions per port, the
    /// paper's 320-entry provisioning at the simulator's granularity.
    pub fn with_merge_table(mut self, bytes: Option<u64>) -> CaisStrategy {
        self.merge_table_bytes = Some(bytes);
        self
    }

    /// The byte capacity the merge table will use (per port).
    pub fn merge_table_capacity(&self) -> Option<u64> {
        match self.merge_table_bytes {
            Some(explicit) => explicit,
            None => Some(MERGE_TABLE_ENTRIES * (self.cais_packet_bytes + 16)),
        }
    }

    /// Overrides the forward-progress timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> CaisStrategy {
        self.timeout = timeout;
        self
    }

    /// Overrides the `red.cais` split granularity (design-space ablation).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn with_packet_bytes(mut self, bytes: u64) -> CaisStrategy {
        assert!(bytes > 0, "packet size must be positive");
        self.cais_packet_bytes = bytes;
        self
    }

    /// Overrides the per-plane throttle credits (`None` = unthrottled).
    pub fn with_credits(mut self, credits: Option<usize>) -> CaisStrategy {
        self.credits_override = Some(credits);
        self
    }

    fn shard_owner(&self, mi: u64, n_mb: u64, p: u64) -> GpuId {
        GpuId(((mi * p) / n_mb) as u16)
    }
}

/// Mutable lowering state threaded through the per-stage routines.
struct LowerCtx<'a> {
    cfg: &'a SystemConfig,
    ids: IdAlloc,
    low: GemmLowering,
    prog: Program,
    /// Last stage's output kernel per GPU (local chaining).
    prev_local: Vec<Option<KernelId>>,
    /// Last stage's output kernels on all GPUs (global barriers).
    prev_all: Vec<KernelId>,
}

impl<'a> LowerCtx<'a> {
    fn p(&self) -> usize {
        self.cfg.n_gpus
    }

    fn after_for(&self, gpu: usize, fused: bool) -> Vec<KernelId> {
        if fused {
            self.prev_local[gpu].into_iter().collect()
        } else {
            self.prev_all.clone()
        }
    }

    fn push_kernel(
        &mut self,
        gpu: usize,
        name: &str,
        tbs: Vec<TbDesc>,
        after: Vec<KernelId>,
        auto_ready: bool,
    ) -> KernelId {
        let kid = self.ids.kernel();
        let mut desc = KernelDesc::new(kid, name.to_string(), tbs);
        desc.tbs_auto_ready = auto_ready;
        self.prog.push(PlannedKernel {
            gpu: GpuId(gpu as u16),
            desc,
            after,
        });
        kid
    }

    fn set_stage_output(&mut self, per_gpu: Vec<KernelId>) {
        self.prev_all = per_gpu.clone();
        for (g, k) in per_gpu.into_iter().enumerate() {
            self.prev_local[g] = Some(k);
        }
    }
}

impl Strategy for CaisStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn tune(&self, cfg: &mut SystemConfig) {
        if self.coordination.grouping {
            cfg.gpu.ready_policy = ReadyPolicy::GroupOrdered;
        }
        cfg.fabric.traffic_control = self.traffic_control;
        if self.coordination.throttling {
            cfg.cais_credits_per_plane = Some(64);
        }
        if let Some(credits) = self.credits_override {
            cfg.cais_credits_per_plane = credits;
        }
    }

    fn lower(&self, dfg: &Dfg, cfg: &SystemConfig) -> Program {
        self.group_expected.borrow_mut().clear();
        let plan = dataflow::plan(dfg);
        let mut ctx = LowerCtx {
            cfg,
            ids: IdAlloc::new(cfg.n_gpus),
            low: GemmLowering::new(KernelCost::new(&cfg.gpu), cfg.tile, dfg.elem_bytes),
            prog: Program::new(),
            prev_local: vec![None; cfg.n_gpus],
            prev_all: Vec::new(),
        };
        for stage in &plan.stages {
            match stage {
                Stage::Node(id) => self.lower_node(&mut ctx, dfg, *id),
                Stage::GatherGemm { gather, consumer } => {
                    self.lower_gather_gemm(&mut ctx, dfg, *gather, *consumer)
                }
                Stage::Pipeline {
                    producer,
                    reduce,
                    middle,
                    gather,
                    consumer,
                } => self.lower_pipeline(
                    &mut ctx, dfg, *producer, *reduce, middle, *gather, *consumer,
                ),
            }
        }
        let prog = ctx.prog;
        debug_assert!(prog.validate().is_ok());
        prog
    }

    fn switch_logic(&self, cfg: &SystemConfig) -> Box<dyn SwitchLogic<Msg>> {
        Box::new(self.build_logic(cfg))
    }

    fn run(&self, cfg: SystemConfig, program: Program) -> Result<ExecReport, SimError> {
        // Concrete `CaisLogic` so the fabric's per-packet dispatch
        // monomorphizes instead of going through `Box<dyn SwitchLogic>`.
        let logic = self.build_logic(&cfg);
        SystemSim::new(cfg, program, logic).run()
    }
}

impl CaisStrategy {
    /// Builds the in-switch merge logic for `cfg`, shared by the boxed
    /// [`Strategy::switch_logic`] path and the monomorphized
    /// [`Strategy::run`] override.
    fn build_logic(&self, cfg: &SystemConfig) -> CaisLogic {
        let (entry_fault_rate, degrade_threshold) = match &cfg.faults.merge_faults {
            Some(mf) => (mf.rate, mf.degrade_threshold),
            None => (0.0, u32::MAX),
        };
        let merge_cfg = MergeConfig {
            n_gpus: cfg.n_gpus,
            table_bytes_per_port: self.merge_table_capacity(),
            entry_overhead_bytes: 16,
            timeout: self.timeout,
            entry_fault_rate,
            degrade_threshold,
        };
        CaisLogic::new(cfg.n_gpus, merge_cfg)
            .with_group_expected(self.group_expected.borrow().clone())
            .with_fault_seed(cfg.faults.seed)
    }

    /// A plain (non-fused) node: one kernel per GPU.
    fn lower_node(&self, ctx: &mut LowerCtx, dfg: &Dfg, id: NodeId) {
        let node = dfg.node(id);
        if let NodeKind::Collective { kind, rows, cols } = &node.kind {
            self.lower_standalone_collective(ctx, dfg, &node.name, *kind, *rows, *cols);
            return;
        }
        let mut out = Vec::with_capacity(ctx.p());
        for g in 0..ctx.p() {
            let kid = ctx.ids.kernel();
            let desc = ctx.low.plain_compute_kernel(
                &mut ctx.ids,
                kid,
                &node.name,
                GpuId(g as u16),
                &node.kind,
                ctx.cfg.gpu.sm_count,
            );
            let after = ctx.after_for(g, self.fused);
            ctx.prog.push(PlannedKernel {
                gpu: GpuId(g as u16),
                desc,
                after,
            });
            out.push(kid);
        }
        ctx.set_stage_output(out);
    }

    /// Fallback: a collective with no fusable neighbours, still executed
    /// with CAIS memory semantics but as its own kernel.
    fn lower_standalone_collective(
        &self,
        ctx: &mut LowerCtx,
        dfg: &Dfg,
        name: &str,
        kind: CollKind,
        rows: u64,
        cols: u64,
    ) {
        let p = ctx.p() as u64;
        let elem = dfg.elem_bytes;
        let bytes_full = rows * cols * elem;
        let shard = bytes_full / p;
        let pkt = self.cais_packet_bytes;
        let mut per_gpu_tbs: Vec<Vec<TbDesc>> = (0..ctx.p()).map(|_| Vec::new()).collect();
        match kind {
            CollKind::ReduceScatter | CollKind::AllReduce => {
                // Every GPU pushes its partial of every shard via red.cais;
                // for AllReduce each GPU then ld.cais-gathers the rest.
                for s in 0..p {
                    let owner = GpuId(s as u16);
                    for (ci, (off, len)) in cais_engine::lower::chunk_ranges(shard, pkt)
                        .into_iter()
                        .enumerate()
                    {
                        let addr = ctx.ids.addr(owner, len);
                        let _ = off;
                        let tile = ctx.ids.tile();
                        ctx.prog.tile_expected.insert(tile, p as u32);
                        let mut row: Vec<TbDesc> = (0..ctx.p())
                            .map(|_g| TbDesc {
                                id: ctx.ids.tb(),
                                order_key: (s * 4096 + ci as u64) * 4,
                                group: None,
                                pre_launch_sync: false,
                                phases: vec![
                                    Phase::Compute(SimDuration::from_ns(200)),
                                    Phase::IssueMem {
                                        ops: vec![MemOp {
                                            kind: MemOpKind::RemoteReduce,
                                            addr,
                                            bytes: len,
                                            cais: true,
                                            tile: Some(tile),
                                        }],
                                        wait: false,
                                    },
                                ],
                            })
                            .collect();
                        {
                            let mut refs: Vec<&mut TbDesc> = row.iter_mut().collect();
                            if let Some(grp) = coordinate_row(
                                &mut ctx.ids,
                                &self.coordination,
                                &mut refs,
                                &Expr::mul(Expr::BlockIdx, Expr::Const(pkt as i64)),
                            ) {
                                self.group_expected.borrow_mut().insert(grp, ctx.p() as u32);
                            }
                        }
                        for (g, tb) in row.into_iter().enumerate() {
                            per_gpu_tbs[g].push(tb);
                        }
                        // Owner-side waiter so the kernel completes when
                        // the reduction lands; gatherers for AllReduce.
                        let wid = ctx.ids.tb();
                        per_gpu_tbs[owner.index()].push(TbDesc {
                            id: wid,
                            order_key: (s * 4096 + ci as u64) * 4 + 1,
                            group: None,
                            pre_launch_sync: false,
                            phases: vec![Phase::Compute(SimDuration::from_ns(100))],
                        });
                        ctx.prog.tb_ready_deps.insert(wid, vec![tile]);
                        if kind == CollKind::AllReduce {
                            for (g, gpu_tbs) in per_gpu_tbs.iter_mut().enumerate() {
                                if g == owner.index() {
                                    continue;
                                }
                                let lid = ctx.ids.tb();
                                let gtile = ctx.ids.tile();
                                gpu_tbs.push(TbDesc {
                                    id: lid,
                                    order_key: (s * 4096 + ci as u64) * 4 + 2,
                                    group: None,
                                    pre_launch_sync: false,
                                    phases: vec![Phase::IssueMem {
                                        ops: vec![MemOp {
                                            kind: MemOpKind::RemoteLoad,
                                            addr,
                                            bytes: len,
                                            cais: true,
                                            tile: Some(gtile),
                                        }],
                                        wait: true,
                                    }],
                                });
                                ctx.prog.tb_ready_deps.insert(lid, vec![tile]);
                            }
                        }
                    }
                }
            }
            CollKind::AllGather => {
                for s in 0..p {
                    let owner = GpuId(s as u16);
                    for (ci, (_off, len)) in cais_engine::lower::chunk_ranges(shard, pkt)
                        .into_iter()
                        .enumerate()
                    {
                        let addr = ctx.ids.addr(owner, len);
                        let tile = ctx.ids.tile();
                        for (g, gpu_tbs) in per_gpu_tbs.iter_mut().enumerate() {
                            if g == owner.index() {
                                continue;
                            }
                            let lid = ctx.ids.tb();
                            gpu_tbs.push(TbDesc {
                                id: lid,
                                order_key: s * 4096 + ci as u64,
                                group: None,
                                pre_launch_sync: false,
                                phases: vec![Phase::IssueMem {
                                    ops: vec![MemOp {
                                        kind: MemOpKind::RemoteLoad,
                                        addr,
                                        bytes: len,
                                        cais: true,
                                        tile: Some(tile),
                                    }],
                                    wait: true,
                                }],
                            });
                            ctx.prog.tb_ready_deps.insert(lid, vec![]);
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(ctx.p());
        for (g, tbs) in per_gpu_tbs.into_iter().enumerate() {
            let after = ctx.after_for(g, false);
            // Dependency-gated kernels need every TB in the ready map
            // (an absent entry would never become dispatchable).
            for tb in &tbs {
                ctx.prog.tb_ready_deps.entry(tb.id).or_default();
            }
            let kid = ctx.push_kernel(g, &format!("coll.{name}"), tbs, after, false);
            out.push(kid);
        }
        ctx.set_stage_output(out);
    }

    /// AllGather feeding a GEMM: gathered operand rows are pulled with
    /// `ld.cais` by the consuming GEMM's thread blocks.
    fn lower_gather_gemm(&self, ctx: &mut LowerCtx, dfg: &Dfg, gather: NodeId, consumer: NodeId) {
        let NodeKind::Gemm { m, n, k } = dfg.node(consumer).kind else {
            panic!("GatherGemm consumer must be a GEMM");
        };
        let name = dfg.node(consumer).name.clone();
        let _ = gather;
        // Remote reads require the producer data to exist on every GPU:
        // global barrier on the previous stage (the communication-centric
        // boundary CAIS cannot remove without tiles from the producer).
        let after_all = ctx.prev_all.clone();
        let out = self.emit_ag_gemm_kernels(ctx, &name, m, n, k, None, after_all);
        ctx.set_stage_output(out);
    }

    /// The fused pipeline.
    #[allow(clippy::too_many_arguments)]
    fn lower_pipeline(
        &self,
        ctx: &mut LowerCtx,
        dfg: &Dfg,
        producer: NodeId,
        reduce: NodeId,
        middle: &[NodeId],
        gather: Option<NodeId>,
        consumer: Option<NodeId>,
    ) {
        let p = ctx.p() as u64;
        let elem = dfg.elem_bytes;
        let tile = ctx.cfg.tile;
        let NodeKind::Gemm {
            m: pm,
            n: pn,
            k: pk,
        } = dfg.node(producer).kind
        else {
            panic!("pipeline producer must be a GEMM");
        };
        let NodeKind::Collective { rows, cols, .. } = dfg.node(reduce).kind else {
            panic!("pipeline reduce must be a collective");
        };
        debug_assert_eq!((pm, pn), (rows, cols), "producer output feeds the reduce");

        let n_mb = rows.div_ceil(tile);
        let n_nb = cols.div_ceil(tile);
        let tile_bytes = tile * tile * elem;
        let n_sub = tile_bytes.div_ceil(self.cais_packet_bytes).max(1);

        // ---- producer GEMM with red.cais epilogue --------------------
        // Reduction tile per (mi, ni) at the shard owner; addresses are
        // identical from every GPU (gpu-invariant), hence mergeable.
        let mut red_tiles: Vec<Vec<TileId>> = Vec::with_capacity(n_mb as usize);
        let mut red_addrs = Vec::with_capacity(n_mb as usize);
        for mi in 0..n_mb {
            let owner = self.shard_owner(mi, n_mb, p);
            let mut row_tiles = Vec::with_capacity(n_nb as usize);
            let mut row_addrs = Vec::with_capacity(n_nb as usize);
            for _ni in 0..n_nb {
                let t = ctx.ids.tile();
                ctx.prog.tile_expected.insert(t, (n_sub * p) as u32);
                row_tiles.push(t);
                row_addrs.push(ctx.ids.addr(owner, tile_bytes));
            }
            red_tiles.push(row_tiles);
            red_addrs.push(row_addrs);
        }

        let mut producer_tbs: Vec<Vec<TbDesc>> = (0..ctx.p()).map(|_| Vec::new()).collect();
        for mi in 0..n_mb {
            let m_len = tile.min(rows - mi * tile);
            for ni in 0..n_nb {
                let n_len = tile.min(cols - ni * tile);
                let t_compute = ctx.low.gemm_tb_time(m_len, n_len, pk);
                let addr = red_addrs[mi as usize][ni as usize];
                let rtile = red_tiles[mi as usize][ni as usize];
                let ops: Vec<MemOp> = (0..n_sub)
                    .map(|si| {
                        let off = si * self.cais_packet_bytes;
                        let len = self.cais_packet_bytes.min(tile_bytes - off);
                        MemOp {
                            kind: MemOpKind::RemoteReduce,
                            addr: addr.add(off),
                            bytes: len,
                            cais: true,
                            tile: Some(rtile),
                        }
                    })
                    .collect();
                let mut row: Vec<TbDesc> = (0..ctx.p())
                    .map(|_g| TbDesc {
                        id: ctx.ids.tb(),
                        order_key: mi * n_nb + ni,
                        group: None,
                        pre_launch_sync: false,
                        phases: vec![
                            Phase::Compute(t_compute),
                            Phase::IssueMem {
                                ops: ops.clone(),
                                wait: false,
                            },
                        ],
                    })
                    .collect();
                {
                    let mut refs: Vec<&mut TbDesc> = row.iter_mut().collect();
                    if let Some(grp) = coordinate_row(
                        &mut ctx.ids,
                        &self.coordination,
                        &mut refs,
                        &Expr::mul(Expr::BlockIdx, Expr::Const(tile_bytes as i64)),
                    ) {
                        self.group_expected.borrow_mut().insert(grp, ctx.p() as u32);
                    }
                }
                for (g, tb) in row.into_iter().enumerate() {
                    producer_tbs[g].push(tb);
                }
            }
        }
        let producer_name = format!("gemm.{}", dfg.node(producer).name);
        let mut producer_kids = Vec::with_capacity(ctx.p());
        for (g, tbs) in producer_tbs.into_iter().enumerate() {
            let after = ctx.after_for(g, self.fused);
            producer_kids.push(ctx.push_kernel(g, &producer_name, tbs, after, true));
        }

        // ---- middle (shard-local LN / elementwise) -------------------
        // One fused kernel per GPU over its row bands; per-band tiles
        // gate the consumer. Fine-grained mode: a band runs as soon as
        // its reductions land. Base mode: bands wait for everything.
        let mid_time_per_row: SimDuration = middle
            .iter()
            .map(|id| match &dfg.node(*id).kind {
                NodeKind::LayerNorm { cols, .. } => ctx.low.cost.elementwise(*cols, elem, 8.0),
                NodeKind::Elementwise {
                    cols,
                    flops_per_elem,
                    ..
                } => ctx.low.cost.elementwise(*cols, elem, *flops_per_elem),
                other => panic!("unsupported middle op {other:?}"),
            })
            .sum();

        let mut mid_tiles: Vec<TileId> = Vec::with_capacity(n_mb as usize);
        for _ in 0..n_mb {
            mid_tiles.push(ctx.ids.tile());
        }
        // Coarse (CAIS-Base) gating: a GPU's middle TBs wait for every
        // reduction tile of the bands *it owns* (reduction tiles only
        // materialize at their owner).
        let mut owned_red_tiles: Vec<Vec<TileId>> = vec![Vec::new(); ctx.p()];
        for mi in 0..n_mb {
            let owner = self.shard_owner(mi, n_mb, p);
            owned_red_tiles[owner.index()].extend(red_tiles[mi as usize].iter().copied());
        }

        let mut mid_tbs: Vec<Vec<TbDesc>> = (0..ctx.p()).map(|_| Vec::new()).collect();
        let has_middle_work = !middle.is_empty() || gather.is_some() || consumer.is_some();
        if has_middle_work {
            for mi in 0..n_mb {
                let owner = self.shard_owner(mi, n_mb, p);
                let m_len = tile.min(rows - mi * tile);
                let notify_ops: Vec<MemOp> = (0..ctx.p())
                    .filter(|g| *g != owner.index())
                    .map(|g| MemOp {
                        kind: MemOpKind::RemoteWrite,
                        addr: ctx.ids.addr(GpuId(g as u16), 8),
                        bytes: 8,
                        cais: false,
                        tile: Some(mid_tiles[mi as usize]),
                    })
                    .collect();
                let tb = TbDesc {
                    id: ctx.ids.tb(),
                    order_key: mi,
                    group: None,
                    pre_launch_sync: false,
                    phases: vec![
                        Phase::Compute(mid_time_per_row * m_len),
                        Phase::SignalTile(mid_tiles[mi as usize]),
                        Phase::IssueMem {
                            ops: notify_ops,
                            wait: false,
                        },
                    ],
                };
                let deps = if self.fused {
                    red_tiles[mi as usize].clone()
                } else {
                    owned_red_tiles[owner.index()].clone()
                };
                ctx.prog.tb_ready_deps.insert(tb.id, deps);
                mid_tbs[owner.index()].push(tb);
            }
        }
        let mid_name = if middle.is_empty() {
            "fused.mid".to_string()
        } else {
            format!(
                "fused.mid.{}",
                middle
                    .iter()
                    .map(|id| dfg.node(*id).name.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            )
        };
        let mut mid_kids = Vec::with_capacity(ctx.p());
        if has_middle_work {
            for (g, tbs) in mid_tbs.into_iter().enumerate() {
                let after = if self.fused {
                    // Launched alongside the producer; tiles gate TBs.
                    ctx.prev_local[g].into_iter().collect()
                } else {
                    // Coarse phase boundary: all producers done everywhere.
                    producer_kids.clone()
                };
                mid_kids.push(ctx.push_kernel(g, &mid_name, tbs, after, false));
            }
        }

        // ---- consumer GEMM (AG side) ---------------------------------
        if let Some(consumer) = consumer {
            let NodeKind::Gemm { m, n, k } = dfg.node(consumer).kind else {
                panic!("pipeline consumer must be a GEMM");
            };
            let _ = gather;
            let name = dfg.node(consumer).name.clone();
            let after = if self.fused {
                (0..ctx.p())
                    .map(|g| ctx.prev_local[g])
                    .collect::<Vec<_>>()
                    .into_iter()
                    .flatten()
                    .collect()
            } else {
                mid_kids.clone()
            };
            let out = self.emit_ag_gemm_kernels(ctx, &name, m, n, k, Some(&mid_tiles), after);
            ctx.set_stage_output(out);
        } else if !mid_kids.is_empty() {
            ctx.set_stage_output(mid_kids);
        } else {
            ctx.set_stage_output(producer_kids);
        }
    }

    /// Emits per-GPU AG-GEMM kernels: row bands are owned by their shard
    /// GPU; non-owners `ld.cais` the band's operand tiles (merged at the
    /// switch), owners read locally. `band_gate[mi]`, when given, is the
    /// per-band readiness tile (present locally on every GPU via the
    /// middle stage's notification writes).
    #[allow(clippy::too_many_arguments)]
    fn emit_ag_gemm_kernels(
        &self,
        ctx: &mut LowerCtx,
        name: &str,
        m: u64,
        n: u64,
        k: u64,
        band_gate: Option<&[TileId]>,
        after: Vec<KernelId>,
    ) -> Vec<KernelId> {
        let p = ctx.p() as u64;
        let tile = ctx.cfg.tile;
        let elem = ctx.low.elem;
        let n_mb = m.div_ceil(tile);
        let n_nb = n.div_ceil(tile);
        let n_kb = k.div_ceil(tile);
        let tile_bytes = tile * tile * elem;

        // Operand tiles of the gathered matrix: one address + TileId per
        // (mi, kt), shared by every GPU (the TileDirectory tracks
        // presence per GPU; the merge unit sees identical addresses).
        let mut op_tiles: Vec<Vec<(sim_core::Addr, TileId)>> = Vec::with_capacity(n_mb as usize);
        for mi in 0..n_mb {
            let owner = self.shard_owner(mi, n_mb, p);
            let mut row = Vec::with_capacity(n_kb as usize);
            for _kt in 0..n_kb {
                row.push((ctx.ids.addr(owner, tile_bytes), ctx.ids.tile()));
            }
            op_tiles.push(row);
        }

        let mut tbs: Vec<Vec<TbDesc>> = (0..ctx.p()).map(|_| Vec::new()).collect();
        for mi in 0..n_mb {
            let owner = self.shard_owner(mi, n_mb, p);
            let m_len = tile.min(m - mi * tile);
            // Coordination row: the designated fetchers (nj == 0) of the
            // p - 1 non-owner GPUs.
            let mut fetcher_row: Vec<TbDesc> = Vec::new();
            for ni in 0..n_nb {
                let n_len = tile.min(n - ni * tile);
                let t_compute = ctx.low.gemm_tb_time(m_len, n_len, k);
                for (g, gpu_tbs) in tbs.iter_mut().enumerate() {
                    let id = ctx.ids.tb();
                    let mut phases = Vec::new();
                    let mut deps = match band_gate {
                        Some(gate) => {
                            if self.fused {
                                vec![gate[mi as usize]]
                            } else {
                                gate.to_vec()
                            }
                        }
                        None => vec![],
                    };
                    if g != owner.index() {
                        if ni == 0 {
                            // Designated fetcher: issues the band's
                            // `ld.cais` operand loads.
                            let ops: Vec<MemOp> = op_tiles[mi as usize]
                                .iter()
                                .map(|(addr, t)| MemOp {
                                    kind: MemOpKind::RemoteLoad,
                                    addr: *addr,
                                    bytes: tile_bytes,
                                    cais: true,
                                    tile: Some(*t),
                                })
                                .collect();
                            phases.push(Phase::IssueMem { ops, wait: true });
                        } else {
                            // Siblings reuse the fetched band through the
                            // L2 (tile directory). Gate *dispatch* on the
                            // operand tiles rather than blocking in-slot:
                            // a sibling holding an SM slot while its
                            // band's fetcher is still queued can starve
                            // the fetchers outright at scale.
                            deps.extend(op_tiles[mi as usize].iter().map(|(_, t)| *t));
                        }
                    }
                    phases.push(Phase::Compute(t_compute));
                    let tb = TbDesc {
                        id,
                        order_key: mi * n_nb + ni,
                        group: None,
                        pre_launch_sync: false,
                        phases,
                    };
                    ctx.prog.tb_ready_deps.insert(id, deps);
                    if ni == 0 && g != owner.index() {
                        fetcher_row.push(tb);
                    } else {
                        gpu_tbs.push(tb);
                    }
                }
            }
            if !fetcher_row.is_empty() {
                {
                    let mut refs: Vec<&mut TbDesc> = fetcher_row.iter_mut().collect();
                    if let Some(grp) = coordinate_row(
                        &mut ctx.ids,
                        &self.coordination,
                        &mut refs,
                        &Expr::mul(Expr::BlockIdx, Expr::Const(tile_bytes as i64)),
                    ) {
                        // The owner reads locally and never syncs.
                        self.group_expected
                            .borrow_mut()
                            .insert(grp, (ctx.p() - 1) as u32);
                    }
                }
                // Distribute the fetcher TBs back to their GPUs (they were
                // built in GPU order, owner skipped).
                let mut it = fetcher_row.into_iter();
                for (g, gpu_tbs) in tbs.iter_mut().enumerate() {
                    if g != owner.index() {
                        gpu_tbs.push(it.next().expect("one fetcher per non-owner"));
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(ctx.p());
        for (g, mut kernel_tbs) in tbs.into_iter().enumerate() {
            kernel_tbs.sort_by_key(|tb| tb.order_key);
            out.push(ctx.push_kernel(g, &format!("gemm.{name}"), kernel_tbs, after.clone(), false));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_engine::strategy::execute;
    use llm_workload::{sublayer, ModelConfig, SubLayer};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = 4;
        cfg.n_planes = 2;
        cfg.fabric = noc_sim::FabricConfig::default_for(4, 2);
        cfg.gpu.launch_skew = SimDuration::from_us(5);
        cfg
    }

    fn small_model() -> ModelConfig {
        ModelConfig {
            hidden: 1024,
            ffn_hidden: 2048,
            heads: 8,
            seq_len: 512,
            batch: 1,
            ..ModelConfig::llama_7b()
        }
    }

    #[test]
    fn full_cais_runs_a_sublayer() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let report = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
        assert!(report.total > SimDuration::from_us(10));
        // Merging happened.
        assert!(report.stat("cais.loads_merged").unwrap_or(0.0) > 0.0);
        assert!(report.stat("cais.reduce_contribs").unwrap_or(0.0) > 0.0);
        // Sync table fired.
        assert!(report.stat("cais.sync_releases").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn base_is_slower_than_full() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let full = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
        let base = execute(&CaisStrategy::base(), &dfg, &cfg).expect("run completes");
        assert!(
            base.total > full.total,
            "base {} vs full {}",
            base.total,
            full.total
        );
    }

    #[test]
    fn coordination_reduces_request_spread() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let coord = execute(&CaisStrategy::full().with_merge_table(None), &dfg, &cfg)
            .expect("run completes");
        let uncoord = execute(&CaisStrategy::base().with_merge_table(None), &dfg, &cfg)
            .expect("run completes");
        let s_coord = coord.mean_request_spread.expect("spread recorded");
        let s_uncoord = uncoord.mean_request_spread.expect("spread recorded");
        assert!(
            s_coord < s_uncoord,
            "coordinated spread {s_coord} must beat uncoordinated {s_uncoord}"
        );
    }

    #[test]
    fn merged_loads_cut_traffic_vs_unmerged_count() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let report = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
        let reqs = report.stat("cais.load_requests").unwrap();
        let merged = report.stat("cais.loads_merged").unwrap();
        // With p=4, up to 2 of every 3 requests merge.
        assert!(merged / reqs > 0.4, "merge ratio too low: {merged}/{reqs}");
    }

    #[test]
    fn merge_faults_degrade_gracefully() {
        // Aggressive entry faults with an instant degrade threshold: the
        // run must still complete (no deadlock, no stall), with ports
        // falling back to the unmerged NVLS-style path.
        let mut cfg = small_cfg();
        cfg.faults.merge_faults = Some(sim_core::MergeFaultSpec {
            rate: 1.0,
            degrade_threshold: 1,
        });
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let report =
            execute(&CaisStrategy::full(), &dfg, &cfg).expect("degraded run still completes");
        assert!(
            report.stat("cais.entry_faults").unwrap_or(0.0) > 0.0,
            "sweep ticks injected faults"
        );
        assert!(
            report.stat("cais.degraded_ports").unwrap_or(0.0) > 0.0,
            "fault pressure degraded at least one port"
        );
    }

    #[test]
    fn variant_names() {
        assert_eq!(CaisStrategy::full().name(), "CAIS");
        assert_eq!(CaisStrategy::partial().name(), "CAIS-Partial");
        assert_eq!(CaisStrategy::base().name(), "CAIS-Base");
        let abl = CaisStrategy::full().with_coordination("x", CoordinationOpts::none());
        assert_eq!(abl.name(), "CAIS[x]");
    }
}
