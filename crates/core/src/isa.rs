//! The CAIS PTX-level instruction extension (paper Fig. 4).
//!
//! CAIS extends the load and reduction instruction formats with a 1-bit
//! **CAIS flag** that marks a memory request as eligible for in-switch
//! merging. The flag travels with the request packet; everything else in
//! the instruction is unchanged, so existing computation semantics are
//! untouched. This module models the instruction encoding so the
//! lowering pipeline has a concrete artifact to emit and the tests can
//! pin the wire format.

use sim_core::Addr;
use std::fmt;

/// Width of the size field (log2 of access size, 128 B .. 32 MiB).
const SIZE_BITS: u32 = 18;
/// Bit position of the CAIS eligibility flag.
const CAIS_FLAG_BIT: u32 = 63;
/// Bit position of the opcode bit (0 = load, 1 = reduction).
const OP_BIT: u32 = 62;

/// A CAIS-extended memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaisInstr {
    /// `ld.cais` — pull-mode remote read, mergeable at the switch.
    Ld {
        /// Target global address.
        addr: Addr,
        /// Access size in bytes.
        bytes: u64,
    },
    /// `red.cais` — push-mode reduction contribution, mergeable at the
    /// switch.
    Red {
        /// Accumulation address.
        addr: Addr,
        /// Contribution size in bytes.
        bytes: u64,
    },
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The CAIS flag was not set: not a CAIS instruction.
    NotCais,
    /// Size field does not round-trip (value too large at encode time).
    BadSize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::NotCais => write!(f, "CAIS flag bit not set"),
            DecodeError::BadSize => write!(f, "size field out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl CaisInstr {
    /// The instruction's target address.
    pub fn addr(self) -> Addr {
        match self {
            CaisInstr::Ld { addr, .. } | CaisInstr::Red { addr, .. } => addr,
        }
    }

    /// The access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            CaisInstr::Ld { bytes, .. } | CaisInstr::Red { bytes, .. } => bytes,
        }
    }

    /// PTX-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CaisInstr::Ld { .. } => "ld.cais",
            CaisInstr::Red { .. } => "red.cais",
        }
    }

    /// Encodes into the 64-bit auxiliary descriptor word: CAIS flag,
    /// opcode, size field and the low address bits that fit.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the size-field range.
    pub fn encode(self) -> u64 {
        let bytes = self.bytes();
        assert!(
            bytes > 0 && bytes < (1u64 << SIZE_BITS),
            "access size {bytes} outside encodable range"
        );
        let op = match self {
            CaisInstr::Ld { .. } => 0u64,
            CaisInstr::Red { .. } => 1u64,
        };
        let addr_field = self.addr().0 & ((1u64 << 44) - 1);
        (1u64 << CAIS_FLAG_BIT) | (op << OP_BIT) | ((bytes) << 44) | addr_field
    }

    /// Decodes a descriptor word (inverse of [`CaisInstr::encode`] for
    /// addresses that fit the 44-bit field).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::NotCais`] when the flag bit is clear.
    pub fn decode(word: u64) -> Result<CaisInstr, DecodeError> {
        if word >> CAIS_FLAG_BIT == 0 {
            return Err(DecodeError::NotCais);
        }
        let bytes = (word >> 44) & ((1u64 << SIZE_BITS) - 1);
        if bytes == 0 {
            return Err(DecodeError::BadSize);
        }
        let addr = Addr((word) & ((1u64 << 44) - 1));
        Ok(if (word >> OP_BIT) & 1 == 0 {
            CaisInstr::Ld { addr, bytes }
        } else {
            CaisInstr::Red { addr, bytes }
        })
    }
}

impl fmt::Display for CaisInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}], {}B",
            self.mnemonic(),
            self.addr(),
            self.bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::GpuId;

    #[test]
    fn encode_decode_round_trip() {
        for instr in [
            CaisInstr::Ld {
                addr: Addr::new(GpuId(3), 0x4_0000),
                bytes: 32 * 1024,
            },
            CaisInstr::Red {
                addr: Addr::new(GpuId(7), 0x80),
                bytes: 128,
            },
        ] {
            let word = instr.encode();
            assert_eq!(CaisInstr::decode(word), Ok(instr));
        }
    }

    #[test]
    fn non_cais_word_rejected() {
        assert_eq!(CaisInstr::decode(0x1234), Err(DecodeError::NotCais));
    }

    #[test]
    fn mnemonics_and_display() {
        let ld = CaisInstr::Ld {
            addr: Addr::new(GpuId(0), 0),
            bytes: 128,
        };
        assert_eq!(ld.mnemonic(), "ld.cais");
        assert!(format!("{ld}").starts_with("ld.cais"));
        let red = CaisInstr::Red {
            addr: Addr::new(GpuId(0), 0),
            bytes: 128,
        };
        assert_eq!(red.mnemonic(), "red.cais");
    }

    #[test]
    #[should_panic(expected = "outside encodable range")]
    fn oversized_access_panics() {
        let _ = CaisInstr::Ld {
            addr: Addr::new(GpuId(0), 0),
            bytes: 1 << 20,
        }
        .encode();
    }

    #[test]
    fn flag_bit_is_the_top_bit() {
        let w = CaisInstr::Ld {
            addr: Addr::new(GpuId(0), 0),
            bytes: 128,
        }
        .encode();
        assert_eq!(w >> 63, 1, "CAIS flag must be bit 63");
    }
}
