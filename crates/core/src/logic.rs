//! The CAIS switch logic: merge unit + Group Sync Table wired into the
//! fabric's [`SwitchLogic`] hook.

use crate::merge::{MergeAction, MergeConfig, MergeStats, MergeUnit, Waiter};
use crate::sync::GroupSyncTable;
use cais_engine::Msg;
use noc_sim::{Packet, SwitchCtx, SwitchLogic};
use sim_core::profile::{prof_scope, Subsystem};
use sim_core::rng::JitterRng;
use sim_core::{FastHash, GpuId, GroupId, PlaneId, SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// In-switch behaviour for CAIS programs.
///
/// * `ld.cais` / `red.cais` traffic goes through the [`MergeUnit`];
/// * `SyncReq` goes through the [`GroupSyncTable`], broadcasting a
///   release once every participant registered;
/// * merged reduction completions return throttle credits to the
///   contributing GPUs;
/// * everything else (notification writes, plain loads) is forwarded.
#[derive(Debug)]
pub struct CaisLogic {
    merge: MergeUnit,
    sync: GroupSyncTable,
    n_gpus: usize,
    sweep_interval: SimDuration,
    timer_armed: HashSet<PlaneId, FastHash>,
    /// Entry-fault RNG; `None` (the default) means no injection and no
    /// draws, keeping fault-free runs byte-identical. Armed by
    /// [`CaisLogic::with_fault_seed`] when the merge config's
    /// `entry_fault_rate` is nonzero.
    fault_rng: Option<JitterRng>,
    /// Recycled merge-action buffer, so per-packet handling does not
    /// allocate.
    scratch: Vec<MergeAction>,
}

impl CaisLogic {
    /// Builds the logic for `n_gpus` with the given merge configuration.
    pub fn new(n_gpus: usize, merge_cfg: MergeConfig) -> CaisLogic {
        CaisLogic {
            merge: MergeUnit::new(merge_cfg),
            sync: GroupSyncTable::new(n_gpus, HashMap::new()),
            n_gpus,
            sweep_interval: SimDuration::from_us(20),
            timer_armed: HashSet::default(),
            fault_rng: None,
            scratch: Vec::new(),
        }
    }

    /// Arms deterministic merge-entry fault injection from the fault
    /// plan's root seed. A no-op when the merge config's fault rate is
    /// zero, so fault-free runs never construct (or draw from) the stream.
    ///
    /// Arming also tightens the sweep cadence: merge sessions typically
    /// live for a few microseconds, so the regular 20 µs timeout sweep
    /// would alias with session lifetimes and sample an empty table. The
    /// finer cadence only affects faulted runs (timeout eviction still
    /// honours the configured timeout threshold).
    pub fn with_fault_seed(mut self, seed: u64) -> CaisLogic {
        if self.merge.entry_fault_rate() > 0.0 {
            self.fault_rng = Some(JitterRng::seed_from(seed ^ 0x03A8_1E57_CA15_FA17));
            self.sweep_interval = self.sweep_interval.min(SimDuration::from_us(1));
        }
        self
    }

    /// Overrides expected participants for specific groups.
    pub fn with_group_expected(mut self, expected: HashMap<GroupId, u32>) -> CaisLogic {
        self.sync = GroupSyncTable::new(self.n_gpus, expected);
        self
    }

    /// Merge-unit statistics.
    pub fn merge_stats(&self) -> &MergeStats {
        self.merge.stats()
    }

    /// Test-only ledger corruption: skews the merge unit's session-open
    /// tally so audit tests can prove a broken counter is caught.
    #[doc(hidden)]
    pub fn audit_poke_sessions_opened(&mut self) {
        self.merge.audit_poke_sessions_opened();
    }

    fn apply(&mut self, actions: &mut Vec<MergeAction>, ctx: &mut SwitchCtx<Msg>) {
        for action in actions.drain(..) {
            match action {
                MergeAction::ForwardLoad {
                    waiter,
                    addr,
                    bytes,
                } => ctx.emit(
                    waiter.requester,
                    addr.home_gpu(),
                    Msg::LoadReq {
                        addr,
                        bytes,
                        requester: waiter.requester,
                        tb: waiter.tb,
                        tile: waiter.tile,
                        cais: true,
                    },
                ),
                MergeAction::RespondLoad {
                    waiter,
                    addr,
                    bytes,
                } => ctx.emit(
                    addr.home_gpu(),
                    waiter.requester,
                    Msg::LoadResp {
                        addr,
                        bytes,
                        requester: waiter.requester,
                        tb: waiter.tb,
                        tile: waiter.tile,
                    },
                ),
                MergeAction::FlushReduce {
                    addr,
                    bytes,
                    contribs,
                    tile,
                } => ctx.emit(
                    addr.home_gpu(),
                    addr.home_gpu(),
                    Msg::Reduce {
                        addr,
                        bytes,
                        src: addr.home_gpu(),
                        contribs,
                        tile,
                        cais: true,
                    },
                ),
                MergeAction::GrantCredit { gpu } => {
                    ctx.emit(gpu, gpu, Msg::CreditGrant { credits: 1 })
                }
            }
        }
    }

    fn arm_timer(&mut self, now: SimTime, ctx: &mut SwitchCtx<Msg>) {
        let plane = ctx.plane();
        if self.merge.has_entries_on(plane) && self.timer_armed.insert(plane) {
            ctx.set_timer(now + self.sweep_interval, plane.0 as u64);
        }
    }
}

impl SwitchLogic<Msg> for CaisLogic {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<Msg>, ctx: &mut SwitchCtx<Msg>) {
        let plane = ctx.plane();
        match pkt.payload {
            Msg::LoadReq {
                addr,
                bytes,
                requester,
                tb,
                tile,
                cais: true,
            } => {
                let mut out = std::mem::take(&mut self.scratch);
                {
                    let _prof = prof_scope(Subsystem::MergeTable);
                    self.merge.on_load_req(
                        now,
                        plane,
                        addr,
                        bytes,
                        Waiter {
                            requester,
                            tb,
                            tile,
                        },
                        &mut out,
                    );
                }
                self.apply(&mut out, ctx);
                self.scratch = out;
                self.arm_timer(now, ctx);
            }
            Msg::LoadResp { addr, bytes, .. } => {
                let mut out = std::mem::take(&mut self.scratch);
                let consumed = {
                    let _prof = prof_scope(Subsystem::MergeTable);
                    self.merge.on_load_resp(now, plane, addr, bytes, &mut out)
                };
                if consumed {
                    self.apply(&mut out, ctx);
                } else {
                    ctx.forward(pkt);
                }
                self.scratch = out;
            }
            Msg::Reduce {
                addr,
                bytes,
                src,
                contribs,
                tile,
                cais: true,
            } => {
                let mut out = std::mem::take(&mut self.scratch);
                {
                    let _prof = prof_scope(Subsystem::MergeTable);
                    self.merge
                        .on_reduce(now, plane, addr, bytes, src, contribs, tile, &mut out);
                }
                self.apply(&mut out, ctx);
                self.scratch = out;
                self.arm_timer(now, ctx);
            }
            Msg::SyncReq { group, gpu, kind } => {
                if self.sync.register(now, group, gpu, kind) {
                    for g in 0..self.n_gpus {
                        ctx.emit(gpu, GpuId(g as u16), Msg::SyncRel { group, kind });
                    }
                }
            }
            _ => ctx.forward(pkt),
        }
    }

    fn on_timer(&mut self, now: SimTime, key: u64, ctx: &mut SwitchCtx<Msg>) {
        let plane = PlaneId(key as u16);
        self.timer_armed.remove(&plane);
        let mut out = std::mem::take(&mut self.scratch);
        let remain = {
            let _prof = prof_scope(Subsystem::MergeTable);
            if let Some(rng) = &mut self.fault_rng {
                self.merge.inject_entry_faults(now, plane, rng, &mut out);
            }
            self.merge.sweep(now, plane, &mut out)
        };
        self.apply(&mut out, ctx);
        self.scratch = out;
        if remain && self.timer_armed.insert(plane) {
            ctx.set_timer(now + self.sweep_interval, key);
        }
    }

    fn audit_probe(&self, probe: &mut sim_core::AuditProbe) {
        self.merge.audit_probe(probe);
        probe.counter("cais.sync_open_groups", self.sync.open_groups() as u64);
        probe.counter("cais.sync_releases", self.sync.releases());
        if probe.is_quiescence() {
            probe.require_zero(
                "sync",
                "quiescence: no groups still waiting for participants",
                self.sync.open_groups() as u64,
            );
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        let m = self.merge.stats();
        vec![
            ("cais.load_requests".into(), m.load_requests as f64),
            ("cais.loads_merged".into(), m.loads_merged as f64),
            ("cais.loads_forwarded".into(), m.loads_forwarded as f64),
            ("cais.reduce_contribs".into(), m.reduce_contribs as f64),
            ("cais.reduce_flushes".into(), m.reduce_flushes as f64),
            ("cais.evictions_lru".into(), m.evictions_lru as f64),
            ("cais.evictions_timeout".into(), m.evictions_timeout as f64),
            ("cais.bypasses".into(), m.bypasses as f64),
            (
                "cais.peak_port_occupancy".into(),
                m.peak_port_occupancy as f64,
            ),
            ("cais.peak_reduce_bytes".into(), m.peak_reduce_bytes as f64),
            ("cais.peak_load_bytes".into(), m.peak_load_bytes as f64),
            ("cais.mean_spread_us".into(), m.mean_spread().as_us_f64()),
            ("cais.entry_faults".into(), m.entry_faults as f64),
            ("cais.degraded_ports".into(), m.degraded_ports as f64),
            ("cais.degraded_bypasses".into(), m.degraded_bypasses as f64),
            ("cais.sync_releases".into(), self.sync.releases() as f64),
            (
                "cais.sync_mean_wait_us".into(),
                self.sync.mean_wait().as_us_f64(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Fabric, FabricConfig};
    use sim_core::{Addr, TbId, TileId};

    fn fabric(n: usize) -> Fabric<Msg, CaisLogic> {
        Fabric::new(
            FabricConfig::default_for(n, 1),
            CaisLogic::new(n, MergeConfig::paper_default(n)),
        )
    }

    #[test]
    fn cais_loads_merge_end_to_end() {
        let n = 4;
        let mut f = fabric(n);
        let addr = Addr::new(GpuId(3), 0);
        // Three requesters (gpu0..2) ask for the same remote tile.
        for g in 0..3u16 {
            f.inject(
                SimTime::from_ns(g as u64 * 50),
                GpuId(g),
                GpuId(3),
                PlaneId(0),
                Msg::LoadReq {
                    addr,
                    bytes: 4096,
                    requester: GpuId(g),
                    tb: TbId(g as u64),
                    tile: Some(TileId(g as u64)),
                    cais: true,
                },
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        // Exactly one forwarded request reaches the home GPU.
        let reqs: Vec<_> = d
            .iter()
            .filter(|x| matches!(x.payload, Msg::LoadReq { .. }))
            .collect();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].dst, GpuId(3));
        // Simulate the home GPU's memory response.
        f.inject(
            f.now(),
            GpuId(3),
            GpuId(0),
            PlaneId(0),
            Msg::LoadResp {
                addr,
                bytes: 4096,
                requester: GpuId(0),
                tb: TbId(0),
                tile: Some(TileId(0)),
            },
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        let resps: Vec<_> = d
            .iter()
            .filter(|x| matches!(x.payload, Msg::LoadResp { .. }))
            .collect();
        assert_eq!(resps.len(), 3, "all three requesters served");
        let stats = f.logic().stats();
        let merged = stats
            .iter()
            .find(|(k, _)| k == "cais.loads_merged")
            .unwrap()
            .1;
        assert_eq!(merged, 2.0);
    }

    #[test]
    fn cais_reductions_merge_and_grant_credits() {
        let n = 4;
        let mut f = fabric(n);
        let addr = Addr::new(GpuId(0), 0x800);
        for g in 1..4u16 {
            f.inject(
                SimTime::from_ns(g as u64 * 100),
                GpuId(g),
                GpuId(0),
                PlaneId(0),
                Msg::Reduce {
                    addr,
                    bytes: 2048,
                    src: GpuId(g),
                    contribs: 1,
                    tile: Some(TileId(5)),
                    cais: true,
                },
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        let reduces: Vec<_> = d
            .iter()
            .filter(|x| matches!(x.payload, Msg::Reduce { .. }))
            .collect();
        assert_eq!(reduces.len(), 1, "one merged write to the home GPU");
        assert!(
            matches!(reduces[0].payload, Msg::Reduce { contribs: 3, .. }),
            "merged contribution count"
        );
        let credits = d
            .iter()
            .filter(|x| matches!(x.payload, Msg::CreditGrant { .. }))
            .count();
        assert_eq!(credits, 3);
    }

    #[test]
    fn sync_table_broadcasts_release() {
        let n = 3;
        let mut f = fabric(n);
        for g in 0..3u16 {
            f.inject(
                SimTime::from_ns(g as u64 * 200),
                GpuId(g),
                GpuId(g),
                PlaneId(0),
                Msg::SyncReq {
                    group: GroupId(4),
                    gpu: GpuId(g),
                    kind: 1,
                },
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        let rels: Vec<_> = d
            .iter()
            .filter(|x| matches!(x.payload, Msg::SyncRel { kind: 1, .. }))
            .collect();
        assert_eq!(rels.len(), 3, "release broadcast to every GPU");
    }

    #[test]
    fn timeout_flushes_stuck_partial() {
        let n = 8;
        let mut f = fabric(n);
        let addr = Addr::new(GpuId(0), 0x100);
        // Only one contribution ever arrives.
        f.inject(
            SimTime::ZERO,
            GpuId(1),
            GpuId(0),
            PlaneId(0),
            Msg::Reduce {
                addr,
                bytes: 1024,
                src: GpuId(1),
                contribs: 1,
                tile: Some(TileId(1)),
                cais: true,
            },
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert!(
            d.iter()
                .any(|x| matches!(x.payload, Msg::Reduce { contribs: 1, .. })),
            "timeout eviction flushed the partial"
        );
    }

    #[test]
    fn entry_faults_degrade_port_end_to_end() {
        let n = 8;
        let mut cfg = MergeConfig::paper_default(n);
        cfg.entry_fault_rate = 1.0;
        cfg.degrade_threshold = 1;
        let mut f = Fabric::new(
            FabricConfig::default_for(n, 1),
            CaisLogic::new(n, cfg).with_fault_seed(0xFA17),
        );
        let addr = Addr::new(GpuId(0), 0x100);
        // One partial contribution; the sweep timer's fault pass evicts it.
        f.inject(
            SimTime::ZERO,
            GpuId(1),
            GpuId(0),
            PlaneId(0),
            Msg::Reduce {
                addr,
                bytes: 1024,
                src: GpuId(1),
                contribs: 1,
                tile: None,
                cais: true,
            },
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert!(
            d.iter()
                .any(|x| matches!(x.payload, Msg::Reduce { contribs: 1, .. })),
            "fault eviction flushed the partial"
        );
        let stats = f.logic().stats();
        let get = |k: &str| stats.iter().find(|(name, _)| name == k).unwrap().1;
        assert!(get("cais.entry_faults") >= 1.0);
        assert_eq!(get("cais.degraded_ports"), 1.0);
        // The degraded port now forwards contributions unmerged.
        f.inject(
            f.now(),
            GpuId(2),
            GpuId(0),
            PlaneId(0),
            Msg::Reduce {
                addr: Addr::new(GpuId(0), 0x200),
                bytes: 1024,
                src: GpuId(2),
                contribs: 1,
                tile: None,
                cais: true,
            },
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert!(
            d.iter()
                .any(|x| matches!(x.payload, Msg::Reduce { contribs: 1, .. })),
            "bypassed contribution still reaches the home GPU"
        );
        let stats = f.logic().stats();
        let get = |k: &str| stats.iter().find(|(name, _)| name == k).unwrap().1;
        assert!(get("cais.degraded_bypasses") >= 1.0);
    }

    #[test]
    fn non_cais_traffic_forwards() {
        let mut f = fabric(2);
        f.inject(
            SimTime::ZERO,
            GpuId(0),
            GpuId(1),
            PlaneId(0),
            Msg::Write {
                addr: Addr::new(GpuId(1), 0),
                bytes: 8,
                src: GpuId(0),
                tile: Some(TileId(0)),
                contrib: false,
            },
        );
        f.run_to_completion();
        assert_eq!(f.drain_deliveries().len(), 1);
    }
}
