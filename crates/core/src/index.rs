//! Static index analysis for compiler-guided TB grouping (paper Fig. 8a).
//!
//! During CUDA-to-PTX lowering, CAIS's compiler inspects the address
//! expression of every memory access. If the expression does **not**
//! depend on the GPU id, corresponding thread blocks (same `blockIdx`) on
//! different GPUs access the same address — they are mergeable and should
//! form a TB group. This module provides the expression language and the
//! invariance analysis.

use std::fmt;

/// A symbolic address expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// The thread block index (identical for corresponding TBs on
    /// different GPUs).
    BlockIdx,
    /// The thread index within the block.
    ThreadIdx,
    /// The GPU (rank) id — the one term that varies across devices.
    GpuId,
    /// A kernel parameter, identified by slot; `gpu_variant` records
    /// whether the host passes different values per GPU (e.g. a shard
    /// base pointer).
    Param {
        /// Parameter slot.
        slot: u32,
        /// True when the host passes per-GPU values.
        gpu_variant: bool,
    },
    /// Sum of two subexpressions.
    Add(Box<Expr>, Box<Expr>),
    /// Product of two subexpressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience: `a + b`.
    // A two-argument constructor, not arithmetic on `self` — the
    // `std::ops` traits don't fit.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience: `a * b`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// True when the expression evaluates to the same value on every GPU
    /// given identical `blockIdx`/`threadIdx` — the merge-eligibility
    /// criterion of the CAIS compiler pass.
    pub fn is_gpu_invariant(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::BlockIdx | Expr::ThreadIdx => true,
            Expr::GpuId => false,
            Expr::Param { gpu_variant, .. } => !gpu_variant,
            Expr::Add(a, b) | Expr::Mul(a, b) => a.is_gpu_invariant() && b.is_gpu_invariant(),
        }
    }

    /// Evaluates the expression for a concrete (gpu, block, thread).
    pub fn eval(&self, gpu: i64, block: i64, thread: i64, params: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::BlockIdx => block,
            Expr::ThreadIdx => thread,
            Expr::GpuId => gpu,
            Expr::Param { slot, .. } => params[*slot as usize],
            Expr::Add(a, b) => {
                a.eval(gpu, block, thread, params) + b.eval(gpu, block, thread, params)
            }
            Expr::Mul(a, b) => {
                a.eval(gpu, block, thread, params) * b.eval(gpu, block, thread, params)
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::BlockIdx => write!(f, "blockIdx"),
            Expr::ThreadIdx => write!(f, "threadIdx"),
            Expr::GpuId => write!(f, "gpuId"),
            Expr::Param { slot, .. } => write!(f, "param{slot}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `base + blockIdx * 128` — the canonical AG-GEMM operand address:
    /// identical across GPUs, hence mergeable.
    fn gathered_row_addr() -> Expr {
        Expr::add(
            Expr::Param {
                slot: 0,
                gpu_variant: false,
            },
            Expr::mul(Expr::BlockIdx, Expr::Const(128)),
        )
    }

    /// `base + gpuId * shard + blockIdx * 128` — a shard-local address:
    /// differs per GPU, not mergeable.
    fn shard_local_addr() -> Expr {
        Expr::add(
            Expr::add(
                Expr::Param {
                    slot: 0,
                    gpu_variant: false,
                },
                Expr::mul(Expr::GpuId, Expr::Const(1 << 20)),
            ),
            Expr::mul(Expr::BlockIdx, Expr::Const(128)),
        )
    }

    #[test]
    fn gathered_access_is_invariant() {
        assert!(gathered_row_addr().is_gpu_invariant());
    }

    #[test]
    fn shard_access_is_variant() {
        assert!(!shard_local_addr().is_gpu_invariant());
    }

    #[test]
    fn gpu_variant_param_is_variant() {
        let e = Expr::Param {
            slot: 1,
            gpu_variant: true,
        };
        assert!(!e.is_gpu_invariant());
    }

    #[test]
    fn invariance_matches_evaluation() {
        // Property: a gpu-invariant expression evaluates identically on
        // every GPU for the same block/thread.
        let params = vec![4096, 7];
        let inv = gathered_row_addr();
        let var = shard_local_addr();
        for block in 0..16 {
            let vals: Vec<i64> = (0..8).map(|g| inv.eval(g, block, 0, &params)).collect();
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
            let vals: Vec<i64> = (0..8).map(|g| var.eval(g, block, 0, &params)).collect();
            assert!(vals.windows(2).any(|w| w[0] != w[1]));
        }
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            format!("{}", gathered_row_addr()),
            "(param0 + (blockIdx * 128))"
        );
    }
}
