//! The in-switch merge unit (paper Figs. 5–6).
//!
//! One merge unit serves each switch port (the egress toward an
//! address's home GPU). It consists of a CAM lookup keyed on
//! `(address, request type)` and a Merging Table holding per-session
//! state: `Load-Wait` (fetch outstanding, requesters queued),
//! `Load-Ready` (data cached, later requesters served from the switch)
//! and `Reduction` (partial sum accumulating). LRU eviction and a
//! timeout-based forward-progress mechanism bound the table.

use sim_core::rng::JitterRng;
use sim_core::{
    Addr, FastHash, GpuId, PlaneId, SimDuration, SimTime, Slab, SlotHandle, SmallVec, TbId, TileId,
};
use std::collections::{BTreeMap, HashMap};

/// A queued load requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// Requesting GPU.
    pub requester: GpuId,
    /// TB blocked on the data.
    pub tb: TbId,
    /// Tile to materialize at the requester.
    pub tile: Option<TileId>,
}

/// Merge unit configuration.
#[derive(Debug, Clone)]
pub struct MergeConfig {
    /// GPUs in the system (a full load session serves `n_gpus - 1`
    /// requesters; a full reduction session absorbs `n_gpus - 1` remote
    /// contributions).
    pub n_gpus: usize,
    /// Merging Table capacity per port; `None` = unbounded (used by the
    /// Fig. 13a "minimal required size" experiment).
    pub table_bytes_per_port: Option<u64>,
    /// Metadata bytes charged per entry (CAM tag, state, counters).
    pub entry_overhead_bytes: u64,
    /// Idle time after which an entry is evicted for forward progress.
    pub timeout: SimDuration,
    /// Per-entry SRAM fault probability at each sweep tick (see
    /// [`MergeUnit::inject_entry_faults`]); `0.0` disables injection and
    /// leaves every result byte-identical to a fault-free run.
    pub entry_fault_rate: f64,
    /// After this many entry faults on one port, the port degrades to the
    /// unmerged NVLS-style forwarding path instead of merging.
    pub degrade_threshold: u32,
}

impl MergeConfig {
    /// The paper's setup: 40 KB per port, 16 B entry metadata, generous
    /// forward-progress timeout.
    pub fn paper_default(n_gpus: usize) -> MergeConfig {
        MergeConfig {
            n_gpus,
            table_bytes_per_port: Some(40 * 1024),
            entry_overhead_bytes: 16,
            timeout: SimDuration::from_us(30),
            entry_fault_rate: 0.0,
            degrade_threshold: 8,
        }
    }
}

/// Counters exposed after a run.
#[derive(Debug, Clone, Default)]
pub struct MergeStats {
    /// CAIS load requests observed.
    pub load_requests: u64,
    /// Loads satisfied by an existing session (deferred or cached).
    pub loads_merged: u64,
    /// Loads forwarded to the home GPU (session openers and bypasses).
    pub loads_forwarded: u64,
    /// CAIS reduction contributions observed.
    pub reduce_contribs: u64,
    /// Reduce messages emitted downstream (complete or partial flushes).
    pub reduce_flushes: u64,
    /// LRU evictions.
    pub evictions_lru: u64,
    /// Timeout evictions.
    pub evictions_timeout: u64,
    /// Requests that could not allocate a session and bypassed merging.
    pub bypasses: u64,
    /// Highest per-port occupancy seen (bytes).
    pub peak_port_occupancy: u64,
    /// Reduction-session bytes resident at the moment of peak occupancy.
    pub peak_reduce_bytes: u64,
    /// Load-session bytes resident at the moment of peak occupancy.
    pub peak_load_bytes: u64,
    /// Sum and count of per-session request spread (last - first request)
    /// for sessions with at least two participants.
    pub spread_sum_ps: u128,
    /// Number of sessions contributing to `spread_sum_ps`.
    pub spread_count: u64,
    /// Injected merge-table entry faults.
    pub entry_faults: u64,
    /// Ports degraded to the unmerged path by fault pressure.
    pub degraded_ports: u64,
    /// Requests forwarded unmerged because their port was degraded.
    pub degraded_bypasses: u64,
    /// Sessions opened (audit ledger; see [`MergeUnit::audit_probe`]).
    pub sessions_opened: u64,
    /// Sessions released after full participation (audit ledger).
    pub sessions_closed: u64,
    /// Sessions evicted (LRU, timeout, capacity, or fault; audit ledger).
    pub sessions_evicted: u64,
}

impl MergeStats {
    /// Mean request spread across merged sessions.
    pub fn mean_spread(&self) -> SimDuration {
        if self.spread_count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps((self.spread_sum_ps / self.spread_count as u128) as u64)
    }
}

/// Effects the caller (the CAIS switch logic) must apply.
#[derive(Debug, Clone)]
pub enum MergeAction {
    /// Forward the (first or bypassed) load request to the home GPU.
    ForwardLoad {
        /// The waiter whose request is forwarded.
        waiter: Waiter,
        /// Address.
        addr: Addr,
        /// Bytes requested.
        bytes: u64,
    },
    /// Send load data to one requester.
    RespondLoad {
        /// The satisfied waiter.
        waiter: Waiter,
        /// Address.
        addr: Addr,
        /// Data bytes.
        bytes: u64,
    },
    /// Send a (possibly partial) merged reduction downstream to the home
    /// GPU.
    FlushReduce {
        /// Address.
        addr: Addr,
        /// Bytes.
        bytes: u64,
        /// Contributions folded in.
        contribs: u32,
        /// Completion tile at the home GPU.
        tile: Option<TileId>,
    },
    /// Return one throttle credit to a contributor.
    GrantCredit {
        /// The GPU regaining a credit.
        gpu: GpuId,
    },
}

/// Inline capacity for waiter/contributor lists: a full session on the
/// paper's 8-GPU node has at most `n_gpus - 1 = 7` participants, so the
/// common case never heap-allocates.
const INLINE_PARTICIPANTS: usize = 8;

// The size gap between variants is the inline waiter buffer — the whole
// point of the SmallVec. Entries live in a contiguous slab sized by the
// merge-table capacity model, so the fixed footprint is intended; boxing
// the large variant would put the hot path back on the heap.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SessionKind {
    LoadWait {
        waiters: SmallVec<Waiter, INLINE_PARTICIPANTS>,
    },
    LoadReady {
        served: u32,
    },
    Reduction {
        contribs: u32,
        contributors: SmallVec<GpuId, INLINE_PARTICIPANTS>,
        tile: Option<TileId>,
    },
}

#[derive(Debug)]
struct Entry {
    kind: SessionKind,
    bytes: u64,
    occupancy: u64,
    count: u32,
    first_request: SimTime,
    last_request: SimTime,
    last_access: SimTime,
}

#[derive(Debug, Default)]
struct Port {
    /// Address → live session, with the session records themselves in a
    /// recycled [`Slab`] arena so steady-state open/close touches the
    /// heap only when the table grows past its high-water mark. Handles
    /// in the index are always live (index and slab mutate together).
    index: HashMap<Addr, SlotHandle, FastHash>,
    sessions: Slab<Entry>,
    occupancy: u64,
    reduce_occ: u64,
    load_occ: u64,
    /// Progress already flushed/served for addresses whose session was
    /// evicted mid-flight, so a successor session knows how many
    /// participants remain (prevents eviction-split sessions from
    /// stalling until the timeout). Metadata-only (a few bytes per
    /// address); removed once the address completes.
    history: HashMap<Addr, u32, FastHash>,
    /// Cumulative injected entry faults on this port.
    faults: u32,
    /// Fault pressure crossed the configured threshold: the port stops
    /// opening merge sessions and forwards requests unmerged (the
    /// NVLS-style path) so traffic keeps flowing instead of stalling on
    /// an unreliable table.
    degraded: bool,
}

/// The merge unit shared by all ports of all planes (state is
/// partitioned per port internally).
#[derive(Debug)]
pub struct MergeUnit {
    cfg: MergeConfig,
    /// Per-port state, keyed `(plane, home GPU)`. A `BTreeMap` so that
    /// every multi-port walk (notably the timeout [`MergeUnit::sweep`],
    /// whose `MergeAction`s are sequence-numbered by the caller) visits
    /// ports in a host-independent order.
    ports: BTreeMap<(PlaneId, GpuId), Port>,
    stats: MergeStats,
}

impl MergeUnit {
    /// Creates an empty merge unit.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_gpus < 2`.
    pub fn new(cfg: MergeConfig) -> MergeUnit {
        assert!(cfg.n_gpus >= 2, "merging needs at least two GPUs");
        MergeUnit {
            cfg,
            ports: BTreeMap::new(),
            stats: MergeStats::default(),
        }
    }

    /// Run statistics.
    pub fn stats(&self) -> &MergeStats {
        &self.stats
    }

    /// Configured per-entry fault probability (used by callers to decide
    /// whether to seed a fault RNG at all).
    pub fn entry_fault_rate(&self) -> f64 {
        self.cfg.entry_fault_rate
    }

    /// True if any session is open (drives timer scheduling).
    pub fn has_entries(&self) -> bool {
        self.ports.values().any(|p| !p.index.is_empty())
    }

    fn full_load_count(&self) -> u32 {
        self.cfg.n_gpus as u32 - 1
    }

    fn note_peak(stats: &mut MergeStats, port: &Port) {
        if port.occupancy > stats.peak_port_occupancy {
            stats.peak_port_occupancy = port.occupancy;
            stats.peak_reduce_bytes = port.reduce_occ;
            stats.peak_load_bytes = port.load_occ;
        }
    }

    /// Handles an incoming `ld.cais` request.
    pub fn on_load_req(
        &mut self,
        now: SimTime,
        plane: PlaneId,
        addr: Addr,
        bytes: u64,
        waiter: Waiter,
        out: &mut Vec<MergeAction>,
    ) {
        self.stats.load_requests += 1;
        let full = self.full_load_count();
        let port_key = (plane, addr.home_gpu());
        let port = self.ports.entry(port_key).or_default();
        let prior = port.history.get(&addr).copied().unwrap_or(0);

        if let Some(&h) = port.index.get(&addr) {
            let entry = port.sessions.get_mut(h).expect("indexed session is live");
            entry.count += 1;
            entry.last_request = now;
            entry.last_access = now;
            match &mut entry.kind {
                SessionKind::LoadWait { waiters } => {
                    waiters.push(waiter);
                    self.stats.loads_merged += 1;
                }
                SessionKind::LoadReady { served } => {
                    *served += 1;
                    self.stats.loads_merged += 1;
                    out.push(MergeAction::RespondLoad {
                        waiter,
                        addr,
                        bytes,
                    });
                    if entry.count + prior >= full {
                        Self::release(&mut self.stats, port, addr, full);
                    }
                }
                SessionKind::Reduction { .. } => {
                    // Type mismatch (CAM matches on address AND type):
                    // treat as unmergeable.
                    self.stats.bypasses += 1;
                    self.stats.loads_forwarded += 1;
                    out.push(MergeAction::ForwardLoad {
                        waiter,
                        addr,
                        bytes,
                    });
                }
            }
            return;
        }

        // Degraded port: graceful NVLS-style fallback — forward unmerged,
        // never open a session (existing sessions drain normally above).
        if port.degraded {
            self.stats.degraded_bypasses += 1;
            self.stats.loads_forwarded += 1;
            out.push(MergeAction::ForwardLoad {
                waiter,
                addr,
                bytes,
            });
            return;
        }

        // New session: needs table space for metadata now (data later).
        let need = self.cfg.entry_overhead_bytes;
        if !Self::make_room(&self.cfg, &mut self.stats, port, need, out) {
            self.stats.bypasses += 1;
            self.stats.loads_forwarded += 1;
            out.push(MergeAction::ForwardLoad {
                waiter,
                addr,
                bytes,
            });
            return;
        }
        port.occupancy += need;
        port.load_occ += need;
        Self::note_peak(&mut self.stats, port);
        let h = port.sessions.insert(Entry {
            kind: SessionKind::LoadWait {
                waiters: std::iter::once(waiter).collect(),
            },
            bytes,
            occupancy: need,
            count: 1,
            first_request: now,
            last_request: now,
            last_access: now,
        });
        port.index.insert(addr, h);
        self.stats.sessions_opened += 1;
        self.stats.loads_forwarded += 1;
        out.push(MergeAction::ForwardLoad {
            waiter,
            addr,
            bytes,
        });
    }

    /// Handles load data returning from the home GPU. Returns `true` if
    /// the response was consumed by a session (the caller must then drop
    /// the original packet).
    pub fn on_load_resp(
        &mut self,
        now: SimTime,
        plane: PlaneId,
        addr: Addr,
        bytes: u64,
        out: &mut Vec<MergeAction>,
    ) -> bool {
        let full = self.full_load_count();
        let port_key = (plane, addr.home_gpu());
        let Some(port) = self.ports.get_mut(&port_key) else {
            return false;
        };
        let prior = port.history.get(&addr).copied().unwrap_or(0);
        let Some(&h) = port.index.get(&addr) else {
            return false;
        };
        let entry = port.sessions.get_mut(h).expect("indexed session is live");
        let SessionKind::LoadWait { waiters } = &mut entry.kind else {
            // A bypassed request's response while data is already cached:
            // let it through unchanged.
            return false;
        };
        let waiters = std::mem::take(waiters);
        for w in &waiters {
            out.push(MergeAction::RespondLoad {
                waiter: *w,
                addr,
                bytes,
            });
        }
        entry.last_access = now;
        if entry.count + prior >= full {
            Self::release(&mut self.stats, port, addr, full);
        } else {
            // Cache the data for the stragglers — if it fits. Caching is
            // subject to the same table capacity; when it does not fit,
            // the session retires with its progress recorded and later
            // requesters trigger a fresh fetch.
            let served = waiters.len() as u32;
            entry.kind = SessionKind::LoadReady { served };
            if Self::make_room(&self.cfg, &mut self.stats, port, bytes, out) {
                let entry = port.sessions.get_mut(h).expect("still resident");
                entry.occupancy += bytes;
                port.occupancy += bytes;
                port.load_occ += bytes;
                Self::note_peak(&mut self.stats, port);
            } else {
                self.stats.evictions_lru += 1;
                // Retire with progress recorded: stragglers refetch.
                Self::evict_one(&mut self.stats, port, addr, out);
            }
        }
        true
    }

    /// Handles an incoming `red.cais` contribution.
    // The argument list mirrors the wire message field-for-field;
    // bundling them into a struct would just rename the packet.
    #[allow(clippy::too_many_arguments)]
    pub fn on_reduce(
        &mut self,
        now: SimTime,
        plane: PlaneId,
        addr: Addr,
        bytes: u64,
        src: GpuId,
        contribs: u32,
        tile: Option<TileId>,
        out: &mut Vec<MergeAction>,
    ) {
        self.stats.reduce_contribs += u64::from(contribs);
        let full = self.full_load_count();
        let port_key = (plane, addr.home_gpu());
        let port = self.ports.entry(port_key).or_default();
        let prior = port.history.get(&addr).copied().unwrap_or(0);

        if let Some(&h) = port.index.get(&addr) {
            let entry = port.sessions.get_mut(h).expect("indexed session is live");
            if let SessionKind::Reduction {
                contribs: acc,
                contributors,
                tile,
            } = &mut entry.kind
            {
                *acc += contribs;
                contributors.push(src);
                entry.count += 1;
                entry.last_request = now;
                entry.last_access = now;
                if *acc + prior >= full {
                    let total = *acc;
                    let tile = *tile;
                    // The session is released below, so its contributor
                    // list can be moved out instead of cloned.
                    let who = std::mem::take(contributors);
                    out.push(MergeAction::FlushReduce {
                        addr,
                        bytes: entry.bytes,
                        contribs: total,
                        tile,
                    });
                    self.stats.reduce_flushes += 1;
                    for gpu in &who {
                        out.push(MergeAction::GrantCredit { gpu: *gpu });
                    }
                    Self::release(&mut self.stats, port, addr, full);
                }
                return;
            }
            // Address collides with a load session: bypass.
            self.stats.bypasses += 1;
            self.stats.reduce_flushes += 1;
            out.push(MergeAction::FlushReduce {
                addr,
                bytes,
                contribs,
                tile,
            });
            out.push(MergeAction::GrantCredit { gpu: src });
            return;
        }

        // Degraded port: flush the contribution straight through and
        // return the credit, exactly like an unmergeable bypass.
        if port.degraded {
            self.stats.degraded_bypasses += 1;
            self.stats.reduce_flushes += 1;
            out.push(MergeAction::FlushReduce {
                addr,
                bytes,
                contribs,
                tile,
            });
            out.push(MergeAction::GrantCredit { gpu: src });
            return;
        }

        let need = self.cfg.entry_overhead_bytes + bytes;
        if !Self::make_room(&self.cfg, &mut self.stats, port, need, out) {
            self.stats.bypasses += 1;
            self.stats.reduce_flushes += 1;
            out.push(MergeAction::FlushReduce {
                addr,
                bytes,
                contribs,
                tile,
            });
            out.push(MergeAction::GrantCredit { gpu: src });
            return;
        }
        port.occupancy += need;
        port.reduce_occ += need;
        Self::note_peak(&mut self.stats, port);
        let h = port.sessions.insert(Entry {
            kind: SessionKind::Reduction {
                contribs,
                contributors: std::iter::once(src).collect(),
                tile,
            },
            bytes,
            occupancy: need,
            count: 1,
            first_request: now,
            last_request: now,
            last_access: now,
        });
        port.index.insert(addr, h);
        self.stats.sessions_opened += 1;
        if contribs + prior >= full {
            // A successor session of an evicted one just completed.
            out.push(MergeAction::FlushReduce {
                addr,
                bytes,
                contribs,
                tile,
            });
            self.stats.reduce_flushes += 1;
            out.push(MergeAction::GrantCredit { gpu: src });
            Self::release(&mut self.stats, port, addr, full);
        }
    }

    /// True if any session is open on `plane`.
    pub fn has_entries_on(&self, plane: PlaneId) -> bool {
        self.ports
            .iter()
            .any(|((pl, _), p)| *pl == plane && !p.index.is_empty())
    }

    /// Timeout sweep over one plane's ports: evicts sessions idle longer
    /// than the configured timeout. Returns `true` if entries remain on
    /// that plane (reschedule the timer).
    pub fn sweep(&mut self, now: SimTime, plane: PlaneId, out: &mut Vec<MergeAction>) -> bool {
        let timeout = self.cfg.timeout;
        let mut evictions = 0u64;
        for port in self
            .ports
            .iter_mut()
            .filter(|((pl, _), _)| *pl == plane)
            .map(|(_, p)| p)
        {
            let sessions = &port.sessions;
            let mut expired: Vec<Addr> = port
                .index
                .iter()
                .filter(|(_, h)| {
                    let e = sessions.get(**h).expect("indexed session is live");
                    now.saturating_since(e.last_access) > timeout
                        && !matches!(e.kind, SessionKind::LoadWait { .. })
                })
                .map(|(a, _)| *a)
                .collect();
            expired.sort_unstable();
            for addr in expired {
                Self::evict_one(&mut self.stats, port, addr, out);
                evictions += 1;
            }
        }
        self.stats.evictions_timeout += evictions;
        // Keep the timer alive only while it can still do work: evictable
        // sessions, or Load-Wait sessions young enough that their fetch
        // response is plausibly in flight. A stale Load-Wait (response
        // lost/deferred) is cleared by the response itself when it
        // arrives; re-arming forever for it would spin the clock.
        self.ports
            .iter()
            .filter(|((pl, _), _)| *pl == plane)
            .flat_map(|(_, p)| {
                p.index
                    .values()
                    .map(|h| p.sessions.get(*h).expect("indexed session is live"))
            })
            .any(|e| {
                !matches!(e.kind, SessionKind::LoadWait { .. })
                    || now.saturating_since(e.last_access) <= timeout
            })
    }

    /// Injects SRAM entry faults on `plane`'s ports: each resident entry
    /// faults independently with probability `cfg.entry_fault_rate` per
    /// call (the caller invokes this once per sweep tick). Addresses are
    /// visited in sorted order per port and ports in `BTreeMap` order, so
    /// a given RNG stream produces a host-independent fault timeline.
    ///
    /// A faulted entry takes the normal eviction path (partial reductions
    /// flush, credits return, progress is recorded). A faulted Load-Wait
    /// session additionally re-forwards every queued waiter first — the
    /// in-flight fetch can no longer be matched to the lost entry, so each
    /// waiter refetches and the passthrough responses retire the address.
    ///
    /// When a port's cumulative fault count reaches
    /// `cfg.degrade_threshold`, the port permanently degrades to the
    /// unmerged NVLS-style forwarding path for all future sessions.
    pub fn inject_entry_faults(
        &mut self,
        _now: SimTime,
        plane: PlaneId,
        rng: &mut JitterRng,
        out: &mut Vec<MergeAction>,
    ) {
        let rate = self.cfg.entry_fault_rate;
        if rate <= 0.0 {
            return;
        }
        let threshold = self.cfg.degrade_threshold;
        for port in self
            .ports
            .iter_mut()
            .filter(|((pl, _), _)| *pl == plane)
            .map(|(_, p)| p)
        {
            let mut addrs: Vec<Addr> = port.index.keys().copied().collect();
            addrs.sort_unstable();
            for addr in addrs {
                if rng.next_f64() >= rate {
                    continue;
                }
                self.stats.entry_faults += 1;
                port.faults += 1;
                let h = *port.index.get(&addr).expect("resident entry");
                let entry = port.sessions.get_mut(h).expect("indexed session is live");
                if let SessionKind::LoadWait { waiters } = &mut entry.kind {
                    let bytes = entry.bytes;
                    for &w in &std::mem::take(waiters) {
                        self.stats.loads_forwarded += 1;
                        out.push(MergeAction::ForwardLoad {
                            waiter: w,
                            addr,
                            bytes,
                        });
                    }
                }
                Self::evict_one(&mut self.stats, port, addr, out);
                if port.faults >= threshold && !port.degraded {
                    port.degraded = true;
                    self.stats.degraded_ports += 1;
                }
            }
        }
    }

    /// Frees space on `port` until `need` bytes fit; returns `false` when
    /// impossible (only Load-Wait sessions resident or table too small).
    fn make_room(
        cfg: &MergeConfig,
        stats: &mut MergeStats,
        port: &mut Port,
        need: u64,
        out: &mut Vec<MergeAction>,
    ) -> bool {
        let Some(cap) = cfg.table_bytes_per_port else {
            return true;
        };
        if need > cap {
            return false;
        }
        while port.occupancy + need > cap {
            // LRU among evictable sessions (Load-Wait must stay until its
            // response arrives).
            let sessions = &port.sessions;
            let victim = port
                .index
                .iter()
                .map(|(a, h)| (a, sessions.get(*h).expect("indexed session is live")))
                .filter(|(_, e)| !matches!(e.kind, SessionKind::LoadWait { .. }))
                .min_by_key(|(a, e)| (e.last_access, a.0))
                .map(|(a, _)| *a);
            let Some(addr) = victim else {
                return false;
            };
            Self::evict_one(stats, port, addr, out);
            stats.evictions_lru += 1;
        }
        true
    }

    fn evict_one(stats: &mut MergeStats, port: &mut Port, addr: Addr, out: &mut Vec<MergeAction>) {
        stats.sessions_evicted += 1;
        let h = port.index.remove(&addr).expect("victim exists");
        let entry = port.sessions.remove(h).expect("releasing live entry");
        if let SessionKind::Reduction {
            contribs,
            contributors,
            tile,
        } = &entry.kind
        {
            out.push(MergeAction::FlushReduce {
                addr,
                bytes: entry.bytes,
                contribs: *contribs,
                tile: *tile,
            });
            stats.reduce_flushes += 1;
            for gpu in contributors {
                out.push(MergeAction::GrantCredit { gpu: *gpu });
            }
        }
        // Record partial progress so a successor session for this
        // address knows how many participants remain.
        let progress = match &entry.kind {
            SessionKind::Reduction { contribs, .. } => *contribs,
            SessionKind::LoadReady { .. } | SessionKind::LoadWait { .. } => entry.count,
        };
        *port.history.entry(addr).or_insert(0) += progress;
        Self::retire(stats, port, entry);
    }

    /// Releases a *completed* session (full participation reached).
    fn release(stats: &mut MergeStats, port: &mut Port, addr: Addr, _full: u32) {
        stats.sessions_closed += 1;
        port.history.remove(&addr);
        let h = port.index.remove(&addr).expect("releasing live entry");
        let entry = port.sessions.remove(h).expect("releasing live entry");
        Self::retire(stats, port, entry);
    }

    /// Reports the merge table's conservation ledgers to the auditor
    /// (see `DESIGN.md` §11):
    ///
    /// * session conservation — every session ever opened was either
    ///   released complete, evicted, or is still live;
    /// * per-port index/slab sync — the address index and the session
    ///   slab always hold exactly the same sessions;
    /// * per-port occupancy conservation — the incrementally tracked
    ///   occupancy equals the sum over live entries, and splits exactly
    ///   into the reduce/load sub-tallies;
    /// * participant accounting — a Load-Wait session has exactly one
    ///   queued waiter per counted request.
    ///
    /// At quiescence additionally: zero live sessions (the `history`
    /// progress map is byte-counted metadata and may legitimately
    /// outlive its sessions).
    pub fn audit_probe(&self, probe: &mut sim_core::AuditProbe) {
        let s = &self.stats;
        let live: u64 = self.ports.values().map(|p| p.sessions.len() as u64).sum();
        probe.counter("merge.sessions_opened", s.sessions_opened);
        probe.counter("merge.sessions_closed", s.sessions_closed);
        probe.counter("merge.sessions_evicted", s.sessions_evicted);
        probe.counter("merge.sessions_live", live);
        probe.counter("merge.entry_faults", s.entry_faults);
        probe.counter("merge.reduce_contribs", s.reduce_contribs);
        probe.counter("merge.load_requests", s.load_requests);
        probe.ledger_with(
            "merge",
            "session conservation: opened == closed + evicted + live",
            s.sessions_opened,
            s.sessions_closed + s.sessions_evicted + live,
            || format!("{} port(s) instantiated", self.ports.len()),
        );
        for ((plane, gpu), port) in &self.ports {
            probe.ledger_with(
                "merge",
                "index/slab sync: indexed addresses == live sessions",
                port.index.len() as u64,
                port.sessions.len() as u64,
                || format!("port ({plane:?}, {gpu:?})"),
            );
            let entry_occ: u64 = port
                .index
                .values()
                .map(|h| {
                    port.sessions
                        .get(*h)
                        .expect("indexed session is live")
                        .occupancy
                })
                .sum();
            probe.ledger_with(
                "merge",
                "occupancy conservation: tracked == sum over live entries",
                port.occupancy,
                entry_occ,
                || format!("port ({plane:?}, {gpu:?})"),
            );
            probe.ledger_with(
                "merge",
                "occupancy split: reduce + load == total",
                port.occupancy,
                port.reduce_occ + port.load_occ,
                || format!("port ({plane:?}, {gpu:?})"),
            );
            for (addr, h) in &port.index {
                let e = port.sessions.get(*h).expect("indexed session is live");
                if let SessionKind::LoadWait { waiters } = &e.kind {
                    probe.ledger_with(
                        "merge",
                        "participants: load-wait waiters == counted requests",
                        e.count as u64,
                        waiters.len() as u64,
                        || format!("port ({plane:?}, {gpu:?}), {addr}"),
                    );
                }
            }
        }
        if probe.is_quiescence() {
            probe.require_zero("merge", "quiescence: zero live sessions", live);
        }
    }

    /// Test-only corruption hook: bumps the opened-session tally without
    /// opening a session, so the next audit check must report a `merge`
    /// session-conservation violation. Never called outside tests.
    #[doc(hidden)]
    pub fn audit_poke_sessions_opened(&mut self) {
        self.stats.sessions_opened += 1;
    }

    /// Occupancy and spread accounting shared by eviction and release.
    fn retire(stats: &mut MergeStats, port: &mut Port, entry: Entry) {
        port.occupancy -= entry.occupancy;
        match entry.kind {
            SessionKind::Reduction { .. } => port.reduce_occ -= entry.occupancy,
            _ => port.load_occ -= entry.occupancy,
        }
        if entry.count >= 2 {
            stats.spread_sum_ps += entry.last_request.since(entry.first_request).as_ps() as u128;
            stats.spread_count += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: usize, cap: Option<u64>) -> MergeUnit {
        MergeUnit::new(MergeConfig {
            n_gpus: n,
            table_bytes_per_port: cap,
            entry_overhead_bytes: 16,
            timeout: SimDuration::from_us(100),
            entry_fault_rate: 0.0,
            degrade_threshold: 4,
        })
    }

    fn faulty_unit(n: usize, rate: f64, threshold: u32) -> MergeUnit {
        MergeUnit::new(MergeConfig {
            n_gpus: n,
            table_bytes_per_port: None,
            entry_overhead_bytes: 16,
            timeout: SimDuration::from_us(100),
            entry_fault_rate: rate,
            degrade_threshold: threshold,
        })
    }

    fn waiter(g: u16) -> Waiter {
        Waiter {
            requester: GpuId(g),
            tb: TbId(g as u64),
            tile: Some(TileId(100 + g as u64)),
        }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    const PLANE: PlaneId = PlaneId(0);

    #[test]
    fn loads_merge_one_fetch_many_replies() {
        // 4 GPUs: 3 remote requesters for an address homed on gpu3.
        let mut m = unit(4, None);
        let addr = Addr::new(GpuId(3), 0x1000);
        let mut out = Vec::new();
        m.on_load_req(t(1), PLANE, addr, 4096, waiter(0), &mut out);
        m.on_load_req(t(2), PLANE, addr, 4096, waiter(1), &mut out);
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::ForwardLoad { .. }))
                .count(),
            1,
            "only the first request is forwarded"
        );
        // Data returns: both queued waiters served; entry cached for #3.
        out.clear();
        assert!(m.on_load_resp(t(5), PLANE, addr, 4096, &mut out));
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::RespondLoad { .. }))
                .count(),
            2
        );
        // Third requester hits the cached data.
        out.clear();
        m.on_load_req(t(6), PLANE, addr, 4096, waiter(2), &mut out);
        assert!(matches!(out[0], MergeAction::RespondLoad { .. }));
        assert!(!m.has_entries(), "session released after full count");
        assert_eq!(m.stats().loads_merged, 2);
        assert_eq!(m.stats().loads_forwarded, 1);
        // Spread = 6us - 1us.
        assert_eq!(m.stats().mean_spread(), SimDuration::from_us(5));
    }

    #[test]
    fn reductions_accumulate_and_flush_once() {
        let mut m = unit(4, None);
        let addr = Addr::new(GpuId(0), 0x2000);
        let mut out = Vec::new();
        for g in 1..4u16 {
            m.on_reduce(
                t(g as u64),
                PLANE,
                addr,
                8192,
                GpuId(g),
                1,
                Some(TileId(9)),
                &mut out,
            );
        }
        let flushes: Vec<_> = out
            .iter()
            .filter_map(|a| match a {
                MergeAction::FlushReduce { contribs, tile, .. } => Some((*contribs, *tile)),
                _ => None,
            })
            .collect();
        assert_eq!(flushes, vec![(3, Some(TileId(9)))]);
        // Credits returned to all three contributors.
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::GrantCredit { .. }))
                .count(),
            3
        );
        assert!(!m.has_entries());
    }

    #[test]
    fn lru_eviction_flushes_partial_reduction() {
        // Capacity fits one reduction entry (16 + 8192); the second
        // allocation evicts the first as a partial flush.
        let mut m = unit(4, Some(10_000));
        let a1 = Addr::new(GpuId(0), 0x1000);
        let a2 = Addr::new(GpuId(0), 0x2000);
        let mut out = Vec::new();
        m.on_reduce(
            t(1),
            PLANE,
            a1,
            8192,
            GpuId(1),
            1,
            Some(TileId(1)),
            &mut out,
        );
        assert!(out.is_empty());
        m.on_reduce(
            t(2),
            PLANE,
            a2,
            8192,
            GpuId(2),
            1,
            Some(TileId(2)),
            &mut out,
        );
        let flushed: Vec<_> = out
            .iter()
            .filter_map(|a| match a {
                MergeAction::FlushReduce { addr, contribs, .. } => Some((*addr, *contribs)),
                _ => None,
            })
            .collect();
        assert_eq!(flushed, vec![(a1, 1)], "partial flush of the LRU entry");
        assert_eq!(m.stats().evictions_lru, 1);
        // Late contribution to a1 opens a fresh session.
        out.clear();
        m.on_reduce(
            t(3),
            PLANE,
            a1,
            8192,
            GpuId(3),
            1,
            Some(TileId(1)),
            &mut out,
        );
        assert_eq!(m.stats().bypasses, 0);
    }

    #[test]
    fn load_wait_entries_are_never_evicted() {
        let mut m = unit(4, Some(200));
        let a1 = Addr::new(GpuId(0), 0x1000);
        let mut out = Vec::new();
        // Open 12 Load-Wait sessions of 16B each = 192B; the 13th cannot
        // allocate and must bypass.
        for i in 0..12 {
            m.on_load_req(t(1), PLANE, a1.add(128 * i), 4096, waiter(1), &mut out);
        }
        assert_eq!(m.stats().bypasses, 0);
        out.clear();
        m.on_load_req(t(2), PLANE, a1.add(128 * 12), 4096, waiter(1), &mut out);
        assert_eq!(m.stats().bypasses, 1);
        assert!(
            matches!(out[0], MergeAction::ForwardLoad { .. }),
            "bypassed load still makes progress"
        );
    }

    #[test]
    fn bypassed_response_passes_through() {
        let mut m = unit(4, None);
        let addr = Addr::new(GpuId(2), 0x100);
        let mut out = Vec::new();
        // No session: a response just flows through.
        assert!(!m.on_load_resp(t(1), PLANE, addr, 1024, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn timeout_sweep_evicts_idle_sessions() {
        let mut m = unit(8, None);
        let addr = Addr::new(GpuId(0), 0x100);
        let mut out = Vec::new();
        m.on_reduce(t(1), PLANE, addr, 2048, GpuId(1), 1, None, &mut out);
        // Before timeout nothing happens.
        assert!(m.sweep(t(50), PLANE, &mut out));
        assert_eq!(m.stats().evictions_timeout, 0);
        // After 100us idle the partial is flushed.
        assert!(!m.sweep(t(200), PLANE, &mut out));
        assert_eq!(m.stats().evictions_timeout, 1);
        assert!(out
            .iter()
            .any(|a| matches!(a, MergeAction::FlushReduce { contribs: 1, .. })));
    }

    #[test]
    fn peak_occupancy_tracks_cached_data() {
        let mut m = unit(8, None);
        let addr = Addr::new(GpuId(0), 0x100);
        let mut out = Vec::new();
        m.on_load_req(t(1), PLANE, addr, 32 * 1024, waiter(1), &mut out);
        m.on_load_resp(t(2), PLANE, addr, 32 * 1024, &mut out);
        // Entry now caches 32 KiB for the remaining 6 requesters.
        assert!(m.stats().peak_port_occupancy >= 32 * 1024);
    }

    #[test]
    fn type_mismatch_bypasses() {
        let mut m = unit(4, None);
        let addr = Addr::new(GpuId(0), 0x100);
        let mut out = Vec::new();
        m.on_reduce(t(1), PLANE, addr, 1024, GpuId(1), 1, None, &mut out);
        m.on_load_req(t(2), PLANE, addr, 1024, waiter(2), &mut out);
        assert_eq!(m.stats().bypasses, 1);
    }

    #[test]
    fn eviction_split_reductions_complete_without_timeout() {
        // Capacity for one reduction entry; contributions for one address
        // arrive interleaved with another address that evicts it. The
        // progress history must let the successor session complete on the
        // last contribution instead of stalling until the timeout.
        let mut m = unit(4, Some(10_000)); // fits one 8 KB entry
        let a1 = Addr::new(GpuId(0), 0x1000);
        let a2 = Addr::new(GpuId(0), 0x3000);
        let mut out = Vec::new();
        m.on_reduce(
            t(1),
            PLANE,
            a1,
            8192,
            GpuId(1),
            1,
            Some(TileId(1)),
            &mut out,
        );
        m.on_reduce(
            t(2),
            PLANE,
            a1,
            8192,
            GpuId(2),
            1,
            Some(TileId(1)),
            &mut out,
        );
        // a2 evicts a1 (partial flush of 2 contributions).
        m.on_reduce(
            t(3),
            PLANE,
            a2,
            8192,
            GpuId(1),
            1,
            Some(TileId(2)),
            &mut out,
        );
        // a1's last contribution arrives: must flush immediately.
        out.clear();
        m.on_reduce(
            t(4),
            PLANE,
            a1,
            8192,
            GpuId(3),
            1,
            Some(TileId(1)),
            &mut out,
        );
        let flushed: Vec<u32> = out
            .iter()
            .filter_map(|x| match x {
                MergeAction::FlushReduce { addr, contribs, .. } if *addr == a1 => Some(*contribs),
                _ => None,
            })
            .collect();
        assert_eq!(flushed, vec![1], "successor flushes the remainder at once");
        assert_eq!(m.stats().evictions_timeout, 0);
        // Total flushed contributions for a1 across both sessions = 3.
    }

    #[test]
    fn load_history_survives_cache_eviction() {
        // 4 GPUs (full = 3). Two requesters served from a cached entry
        // that then gets evicted; the third requester opens a successor
        // session that completes after a single re-fetch.
        let mut m = unit(4, Some(200)); // too small to cache 4 KB data
        let addr = Addr::new(GpuId(0), 0x100);
        let mut out = Vec::new();
        m.on_load_req(t(1), PLANE, addr, 4096, waiter(1), &mut out);
        m.on_load_req(t(2), PLANE, addr, 4096, waiter(2), &mut out);
        out.clear();
        // Response arrives: serves both; caching fails (capacity), so the
        // session retires with progress = 2.
        assert!(m.on_load_resp(t(3), PLANE, addr, 4096, &mut out));
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::RespondLoad { .. }))
                .count(),
            2
        );
        // The late third requester triggers a re-fetch, then completes the
        // address (2 prior + 1 = full).
        out.clear();
        m.on_load_req(t(10), PLANE, addr, 4096, waiter(3), &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, MergeAction::ForwardLoad { .. })));
        out.clear();
        assert!(m.on_load_resp(t(12), PLANE, addr, 4096, &mut out));
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::RespondLoad { .. }))
                .count(),
            1
        );
        assert!(!m.has_entries(), "address fully retired");
    }

    #[test]
    fn entry_fault_refetches_load_waiters() {
        // Two queued waiters lose their session to an SRAM fault: both are
        // re-forwarded, the entry is gone, and the recorded progress lets
        // the third requester finish the address.
        let mut m = faulty_unit(4, 1.0, 100);
        let addr = Addr::new(GpuId(3), 0x1000);
        let mut out = Vec::new();
        m.on_load_req(t(1), PLANE, addr, 4096, waiter(0), &mut out);
        m.on_load_req(t(2), PLANE, addr, 4096, waiter(1), &mut out);
        out.clear();
        let mut rng = JitterRng::seed_from(7);
        m.inject_entry_faults(t(3), PLANE, &mut rng, &mut out);
        assert_eq!(m.stats().entry_faults, 1);
        assert_eq!(
            out.iter()
                .filter(|a| matches!(a, MergeAction::ForwardLoad { .. }))
                .count(),
            2,
            "both waiters refetch"
        );
        assert!(!m.has_entries(), "faulted entry evicted");
        // The in-flight (now orphaned) response passes through untouched.
        out.clear();
        assert!(!m.on_load_resp(t(4), PLANE, addr, 4096, &mut out));
        // The last requester completes the address via the history record.
        m.on_load_req(t(5), PLANE, addr, 4096, waiter(2), &mut out);
        assert!(m.on_load_resp(t(6), PLANE, addr, 4096, &mut out));
        assert!(!m.has_entries(), "address fully retired");
    }

    #[test]
    fn entry_fault_flushes_partial_reduction() {
        let mut m = faulty_unit(4, 1.0, 100);
        let addr = Addr::new(GpuId(0), 0x2000);
        let mut out = Vec::new();
        m.on_reduce(
            t(1),
            PLANE,
            addr,
            2048,
            GpuId(1),
            1,
            Some(TileId(3)),
            &mut out,
        );
        out.clear();
        let mut rng = JitterRng::seed_from(7);
        m.inject_entry_faults(t(2), PLANE, &mut rng, &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, MergeAction::FlushReduce { contribs: 1, .. })),
            "partial flushed on fault"
        );
        assert!(
            out.iter()
                .any(|a| matches!(a, MergeAction::GrantCredit { gpu: GpuId(1) })),
            "credit returned on fault"
        );
        assert!(!m.has_entries());
    }

    #[test]
    fn fault_pressure_degrades_port_to_unmerged_path() {
        // Threshold 2: after two entry faults the port stops merging.
        let mut m = faulty_unit(4, 1.0, 2);
        let a1 = Addr::new(GpuId(0), 0x1000);
        let a2 = Addr::new(GpuId(0), 0x2000);
        let mut out = Vec::new();
        m.on_reduce(t(1), PLANE, a1, 1024, GpuId(1), 1, None, &mut out);
        m.on_reduce(t(1), PLANE, a2, 1024, GpuId(2), 1, None, &mut out);
        let mut rng = JitterRng::seed_from(7);
        m.inject_entry_faults(t(2), PLANE, &mut rng, &mut out);
        assert_eq!(m.stats().entry_faults, 2);
        assert_eq!(m.stats().degraded_ports, 1);
        // New reduce contributions flush straight through with a credit.
        out.clear();
        m.on_reduce(t(3), PLANE, a1, 1024, GpuId(3), 1, None, &mut out);
        assert!(matches!(
            out[0],
            MergeAction::FlushReduce { contribs: 1, .. }
        ));
        assert!(matches!(out[1], MergeAction::GrantCredit { gpu: GpuId(3) }));
        // New loads forward unmerged without opening a session.
        out.clear();
        m.on_load_req(t(4), PLANE, a2, 4096, waiter(1), &mut out);
        assert!(matches!(out[0], MergeAction::ForwardLoad { .. }));
        assert!(!m.has_entries(), "degraded port opens no sessions");
        assert_eq!(m.stats().degraded_bypasses, 2);
        // Other ports are unaffected: a different home GPU still merges.
        out.clear();
        let other = Addr::new(GpuId(1), 0x100);
        m.on_load_req(t(5), PLANE, other, 4096, waiter(2), &mut out);
        assert!(m.has_entries(), "healthy port still opens sessions");
    }

    #[test]
    fn zero_fault_rate_injection_is_a_no_op() {
        let mut m = unit(4, None);
        let addr = Addr::new(GpuId(0), 0x100);
        let mut out = Vec::new();
        m.on_reduce(t(1), PLANE, addr, 1024, GpuId(1), 1, None, &mut out);
        let mut rng = JitterRng::seed_from(7);
        let before = rng.next_u64();
        let mut rng = JitterRng::seed_from(7);
        m.inject_entry_faults(t(2), PLANE, &mut rng, &mut out);
        assert_eq!(m.stats().entry_faults, 0);
        assert!(m.has_entries(), "entry untouched");
        assert_eq!(rng.next_u64(), before, "no RNG draws at rate 0");
    }

    #[test]
    fn merged_contribs_count_toward_completion() {
        // A downstream switch can receive pre-merged partials
        // (contribs > 1), e.g. after an eviction upstream.
        let mut m = unit(8, None);
        let addr = Addr::new(GpuId(0), 0x300);
        let mut out = Vec::new();
        m.on_reduce(t(1), PLANE, addr, 1024, GpuId(1), 4, None, &mut out);
        m.on_reduce(t(2), PLANE, addr, 1024, GpuId(2), 3, None, &mut out);
        assert!(out
            .iter()
            .any(|a| matches!(a, MergeAction::FlushReduce { contribs: 7, .. })));
    }
}
