//! The switch-side Group Sync Table (paper Fig. 8b).
//!
//! Tracks pre-launch and pre-access synchronization requests per TB
//! group; once every participating GPU has registered, a release is
//! broadcast to all GPUs. The exchange uses empty packets, so the cost is
//! one round trip (~0.5 µs in the paper's setup).

use sim_core::{FastHash, GpuId, GroupId, SimDuration, SimTime};
use std::collections::{HashMap, HashSet};

/// Per-(group, kind) synchronization state.
#[derive(Debug, Default)]
struct SyncEntry {
    arrived: HashSet<GpuId, FastHash>,
    first: Option<SimTime>,
}

/// The Group Sync Table.
#[derive(Debug)]
pub struct GroupSyncTable {
    n_gpus: usize,
    /// Expected participants per group (defaults to `n_gpus`).
    expected: HashMap<GroupId, u32, FastHash>,
    entries: HashMap<(GroupId, u8), SyncEntry, FastHash>,
    releases: u64,
    wait_sum_ps: u128,
    wait_count: u64,
}

impl GroupSyncTable {
    /// Creates a table for `n_gpus` GPUs with optional per-group
    /// participant overrides.
    pub fn new(n_gpus: usize, expected: HashMap<GroupId, u32>) -> GroupSyncTable {
        GroupSyncTable {
            n_gpus,
            expected: expected.into_iter().collect(),
            entries: HashMap::default(),
            releases: 0,
            wait_sum_ps: 0,
            wait_count: 0,
        }
    }

    /// Registers a sync request. Returns `true` when the group is now
    /// complete and the caller must broadcast the release.
    pub fn register(&mut self, now: SimTime, group: GroupId, gpu: GpuId, kind: u8) -> bool {
        let expected = self
            .expected
            .get(&group)
            .copied()
            .unwrap_or(self.n_gpus as u32);
        let entry = self.entries.entry((group, kind)).or_default();
        entry.first.get_or_insert(now);
        entry.arrived.insert(gpu);
        if entry.arrived.len() as u32 >= expected {
            let entry = self.entries.remove(&(group, kind)).expect("entry exists");
            self.releases += 1;
            self.wait_sum_ps += now
                .saturating_since(entry.first.expect("first set"))
                .as_ps() as u128;
            self.wait_count += 1;
            true
        } else {
            false
        }
    }

    /// Number of completed releases.
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// Groups currently waiting.
    pub fn open_groups(&self) -> usize {
        self.entries.len()
    }

    /// Mean first-to-last registration delay across completed groups.
    pub fn mean_wait(&self) -> SimDuration {
        if self.wait_count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_ps((self.wait_sum_ps / self.wait_count as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn releases_when_all_gpus_register() {
        let mut s = GroupSyncTable::new(3, HashMap::new());
        assert!(!s.register(t(1), GroupId(0), GpuId(0), 0));
        assert!(!s.register(t(2), GroupId(0), GpuId(1), 0));
        assert_eq!(s.open_groups(), 1);
        assert!(s.register(t(4), GroupId(0), GpuId(2), 0));
        assert_eq!(s.releases(), 1);
        assert_eq!(s.open_groups(), 0);
        assert_eq!(s.mean_wait(), SimDuration::from_us(3));
    }

    #[test]
    fn duplicate_registrations_do_not_double_count() {
        let mut s = GroupSyncTable::new(3, HashMap::new());
        assert!(!s.register(t(1), GroupId(0), GpuId(0), 0));
        assert!(!s.register(t(2), GroupId(0), GpuId(0), 0));
        assert!(!s.register(t(3), GroupId(0), GpuId(1), 0));
        assert!(s.register(t(4), GroupId(0), GpuId(2), 0));
    }

    #[test]
    fn kinds_are_independent() {
        let mut s = GroupSyncTable::new(2, HashMap::new());
        assert!(!s.register(t(1), GroupId(5), GpuId(0), 0));
        assert!(!s.register(t(1), GroupId(5), GpuId(0), 1));
        assert!(s.register(t(2), GroupId(5), GpuId(1), 0));
        assert!(s.register(t(2), GroupId(5), GpuId(1), 1));
        assert_eq!(s.releases(), 2);
    }

    #[test]
    fn expected_override_shrinks_group() {
        let mut expected = HashMap::new();
        expected.insert(GroupId(9), 2);
        let mut s = GroupSyncTable::new(8, expected);
        assert!(!s.register(t(1), GroupId(9), GpuId(0), 0));
        assert!(s.register(t(2), GroupId(9), GpuId(1), 0));
    }
}
