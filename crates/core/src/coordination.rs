//! Merging-aware TB coordination (paper Sec. III-B).
//!
//! The compiler pass: thread blocks on different GPUs whose CAIS-tagged
//! accesses are GPU-invariant (per [`crate::index`] analysis) form a
//! **TB group**. Group members are tagged for pre-launch gating and get a
//! pre-access synchronization point before their first `*.cais`
//! instruction. The runtime half (synchronizers + Group Sync Table) lives
//! in `gpu-sim` and [`crate::sync`].

use crate::index::Expr;
use cais_engine::IdAlloc;
use gpu_sim::{Phase, TbDesc};
use sim_core::GroupId;

/// Which coordination mechanisms are enabled (the Fig. 13b ablation
/// toggles these cumulatively).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinationOpts {
    /// Compiler TB grouping (also switches the GPU ready queue to
    /// deterministic group order).
    pub grouping: bool,
    /// Pre-launch synchronization through the switch.
    pub pre_launch: bool,
    /// Pre-access synchronization at the first CAIS instruction.
    pub pre_access: bool,
    /// TB-aware request throttling via merge-table credits.
    pub throttling: bool,
}

impl CoordinationOpts {
    /// Everything on (full CAIS).
    pub fn full() -> CoordinationOpts {
        CoordinationOpts {
            grouping: true,
            pre_launch: true,
            pre_access: true,
            throttling: true,
        }
    }

    /// Everything off (CAIS-Base).
    pub fn none() -> CoordinationOpts {
        CoordinationOpts {
            grouping: false,
            pre_launch: false,
            pre_access: false,
            throttling: false,
        }
    }

    /// The cumulative ablation ladder of Fig. 13b: none → +grouping →
    /// +pre-launch → +pre-access → +throttling (full).
    pub fn ladder() -> Vec<(&'static str, CoordinationOpts)> {
        let mut o = CoordinationOpts::none();
        let mut steps = vec![("baseline", o)];
        o.grouping = true;
        steps.push(("+grouping", o));
        o.pre_launch = true;
        steps.push(("+pre-launch", o));
        o.pre_access = true;
        steps.push(("+pre-access", o));
        o.throttling = true;
        steps.push(("+throttling", o));
        steps
    }
}

/// Applies the grouping pass to one *row* of corresponding TBs (one per
/// GPU, same logical block index) whose CAIS accesses follow `addr_expr`.
///
/// Returns the assigned group, or `None` when grouping is disabled or the
/// address expression is GPU-variant (not mergeable, per the static index
/// analysis).
pub fn coordinate_row(
    ids: &mut IdAlloc,
    opts: &CoordinationOpts,
    row: &mut [&mut TbDesc],
    addr_expr: &Expr,
) -> Option<GroupId> {
    if !opts.grouping || !addr_expr.is_gpu_invariant() {
        return None;
    }
    let group = ids.group();
    for tb in row.iter_mut() {
        tb.group = Some(group);
        tb.pre_launch_sync = opts.pre_launch;
        if opts.pre_access {
            insert_pre_access(tb);
        }
    }
    Some(group)
}

/// Inserts a pre-access sync point before the first CAIS-tagged memory
/// phase (the paper's "first `*.cais` instruction of a warp").
fn insert_pre_access(tb: &mut TbDesc) {
    let pos = tb
        .phases
        .iter()
        .position(|p| matches!(p, Phase::IssueMem { ops, .. } if ops.iter().any(|o| o.cais)));
    if let Some(pos) = pos {
        // Idempotence: skip if a sync already sits right before it.
        if pos > 0 && matches!(tb.phases[pos - 1], Phase::SyncGroup(_)) {
            return;
        }
        tb.phases
            .insert(pos, Phase::SyncGroup(gpu_sim::SyncKind::PreAccess));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{MemOp, MemOpKind, SyncKind};
    use sim_core::{Addr, GpuId, SimDuration, TbId};

    fn cais_tb(id: u64) -> TbDesc {
        TbDesc {
            id: TbId(id),
            order_key: id,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::Compute(SimDuration::from_us(1)),
                Phase::IssueMem {
                    ops: vec![MemOp {
                        kind: MemOpKind::RemoteLoad,
                        addr: Addr::new(GpuId(1), 0),
                        bytes: 128,
                        cais: true,
                        tile: None,
                    }],
                    wait: true,
                },
            ],
        }
    }

    fn invariant_expr() -> Expr {
        Expr::mul(Expr::BlockIdx, Expr::Const(128))
    }

    #[test]
    fn full_coordination_tags_and_inserts_sync() {
        let mut ids = IdAlloc::new(2);
        let mut a = cais_tb(0);
        let mut b = cais_tb(1);
        let group = coordinate_row(
            &mut ids,
            &CoordinationOpts::full(),
            &mut [&mut a, &mut b],
            &invariant_expr(),
        );
        assert!(group.is_some());
        assert_eq!(a.group, group);
        assert_eq!(b.group, group);
        assert!(a.pre_launch_sync);
        assert!(matches!(a.phases[1], Phase::SyncGroup(SyncKind::PreAccess)));
        // The sync sits immediately before the CAIS access.
        assert!(matches!(a.phases[2], Phase::IssueMem { .. }));
    }

    #[test]
    fn disabled_grouping_is_a_no_op() {
        let mut ids = IdAlloc::new(2);
        let mut a = cais_tb(0);
        let group = coordinate_row(
            &mut ids,
            &CoordinationOpts::none(),
            &mut [&mut a],
            &invariant_expr(),
        );
        assert!(group.is_none());
        assert!(a.group.is_none());
        assert_eq!(a.phases.len(), 2);
    }

    #[test]
    fn gpu_variant_addresses_are_not_grouped() {
        let mut ids = IdAlloc::new(2);
        let mut a = cais_tb(0);
        let variant = Expr::add(Expr::GpuId, Expr::BlockIdx);
        let group = coordinate_row(&mut ids, &CoordinationOpts::full(), &mut [&mut a], &variant);
        assert!(group.is_none());
    }

    #[test]
    fn pre_access_only_when_enabled() {
        let mut ids = IdAlloc::new(2);
        let mut a = cais_tb(0);
        let opts = CoordinationOpts {
            pre_access: false,
            ..CoordinationOpts::full()
        };
        coordinate_row(&mut ids, &opts, &mut [&mut a], &invariant_expr());
        assert!(a.group.is_some());
        assert!(!a.phases.iter().any(|p| matches!(p, Phase::SyncGroup(_))));
    }

    #[test]
    fn idempotent_insertion() {
        let mut a = cais_tb(0);
        insert_pre_access(&mut a);
        insert_pre_access(&mut a);
        let syncs = a
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::SyncGroup(_)))
            .count();
        assert_eq!(syncs, 1);
    }

    #[test]
    fn ladder_is_cumulative() {
        let ladder = CoordinationOpts::ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].1, CoordinationOpts::none());
        assert_eq!(ladder[4].1, CoordinationOpts::full());
        // Each step only adds mechanisms.
        for w in ladder.windows(2) {
            let (a, b) = (w[0].1, w[1].1);
            assert!(!a.grouping || b.grouping);
            assert!(!a.pre_launch || b.pre_launch);
            assert!(!a.pre_access || b.pre_access);
        }
    }
}
