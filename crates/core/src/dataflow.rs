//! Graph-level dataflow optimizer (paper Sec. III-C).
//!
//! Scans the logical dataflow graph for the producer/collective/consumer
//! chains CAIS can fuse — `GEMM → ReduceScatter → (LN | elementwise)* →
//! AllGather → GEMM` and `GEMM → AllReduce → ... → GEMM` — and emits a
//! [`FusionPlan`]. The CAIS lowering executes each [`Stage::Pipeline`]
//! with TB-level dependencies (consumer TBs launch as soon as their input
//! tiles exist) and overlaps the reduce-heavy producer with the
//! load-heavy consumer to balance the two link directions (asymmetric
//! kernel overlapping).

use llm_workload::{CollKind, Dfg, NodeId, NodeKind};
use std::collections::HashSet;

/// One scheduling unit of the fused program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stage {
    /// A fused `GEMM-RS [+ middle] [+ AG-GEMM]` pipeline.
    Pipeline {
        /// The GEMM producing distributed partials.
        producer: NodeId,
        /// The ReduceScatter or AllReduce it feeds.
        reduce: NodeId,
        /// Shard-local ops between reduce and gather.
        middle: Vec<NodeId>,
        /// The AllGather re-distributing the result, when present.
        gather: Option<NodeId>,
        /// The GEMM consuming the gathered/reduced data, when present.
        consumer: Option<NodeId>,
    },
    /// An AllGather directly feeding a GEMM (no preceding reduce in this
    /// graph fragment, e.g. at a layer entry).
    GatherGemm {
        /// The AllGather.
        gather: NodeId,
        /// The consuming GEMM.
        consumer: NodeId,
    },
    /// A node executed as its own kernel.
    Node(NodeId),
}

/// The optimizer's output: stages in topological order.
#[derive(Debug, Clone, Default)]
pub struct FusionPlan {
    /// Stages in execution order.
    pub stages: Vec<Stage>,
}

impl FusionPlan {
    /// Number of fused pipelines found.
    pub fn pipeline_count(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| matches!(s, Stage::Pipeline { .. }))
            .count()
    }

    /// All node ids covered, for coverage checks.
    pub fn covered_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for s in &self.stages {
            match s {
                Stage::Pipeline {
                    producer,
                    reduce,
                    middle,
                    gather,
                    consumer,
                } => {
                    out.push(*producer);
                    out.push(*reduce);
                    out.extend(middle.iter().copied());
                    out.extend(gather.iter().copied());
                    out.extend(consumer.iter().copied());
                }
                Stage::GatherGemm { gather, consumer } => {
                    out.push(*gather);
                    out.push(*consumer);
                }
                Stage::Node(n) => out.push(*n),
            }
        }
        out
    }
}

fn single_consumer(dfg: &Dfg, id: NodeId) -> Option<NodeId> {
    let consumers = dfg.consumers(id);
    if consumers.len() == 1 {
        Some(consumers[0])
    } else {
        None
    }
}

/// Builds the fusion plan for `dfg`.
///
/// Every node appears in exactly one stage; nodes that do not match a
/// fusable pattern become [`Stage::Node`]s.
pub fn plan(dfg: &Dfg) -> FusionPlan {
    let mut consumed: HashSet<NodeId> = HashSet::new();
    let mut stages = Vec::new();

    for id in dfg.ids() {
        if consumed.contains(&id) {
            continue;
        }
        match &dfg.node(id).kind {
            NodeKind::Gemm { .. } => {
                if let Some(stage) = try_pipeline(dfg, id, &mut consumed) {
                    stages.push(stage);
                    continue;
                }
                consumed.insert(id);
                stages.push(Stage::Node(id));
            }
            NodeKind::Collective {
                kind: CollKind::AllGather,
                ..
            } => {
                let c = dfg.consumers(id).into_iter().find(|c| {
                    matches!(dfg.node(*c).kind, NodeKind::Gemm { .. }) && !consumed.contains(c)
                });
                if let Some(c) = c {
                    consumed.insert(id);
                    consumed.insert(c);
                    stages.push(Stage::GatherGemm {
                        gather: id,
                        consumer: c,
                    });
                    continue;
                }
                consumed.insert(id);
                stages.push(Stage::Node(id));
            }
            _ => {
                consumed.insert(id);
                stages.push(Stage::Node(id));
            }
        }
    }
    FusionPlan { stages }
}

fn try_pipeline(dfg: &Dfg, gemm: NodeId, consumed: &mut HashSet<NodeId>) -> Option<Stage> {
    let reduce = single_consumer(dfg, gemm)?;
    let reduce_kind = match &dfg.node(reduce).kind {
        NodeKind::Collective { kind, .. }
            if matches!(kind, CollKind::ReduceScatter | CollKind::AllReduce) =>
        {
            *kind
        }
        _ => return None,
    };
    // Walk shard-local middle ops.
    let mut middle = Vec::new();
    let mut cur = reduce;
    while let Some(next) = single_consumer(dfg, cur) {
        match &dfg.node(next).kind {
            NodeKind::LayerNorm { .. } | NodeKind::Elementwise { .. } => {
                middle.push(next);
                cur = next;
            }
            _ => break,
        }
    }
    // Optional gather + consumer. A gather folds into the pipeline when
    // at least one GEMM consumes it; the *first* GEMM consumer becomes
    // the pipeline consumer (whose thread blocks issue the `ld.cais`
    // fetches), and any sibling consumers (e.g. weight-gradient GEMMs in
    // the backward pass) run as later stages reading the data the
    // fetchers already materialized. A gather with no GEMM consumer
    // stays a standalone stage so its traffic is never dropped.
    let (gather, consumer) = match single_consumer(dfg, cur) {
        Some(next) => match &dfg.node(next).kind {
            NodeKind::Collective {
                kind: CollKind::AllGather,
                ..
            } => {
                let c = dfg
                    .consumers(next)
                    .into_iter()
                    .find(|c| matches!(dfg.node(*c).kind, NodeKind::Gemm { .. }));
                if c.is_some() {
                    (Some(next), c)
                } else {
                    (None, None)
                }
            }
            NodeKind::Gemm { .. } if reduce_kind == CollKind::AllReduce => (None, Some(next)),
            _ => (None, None),
        },
        None => (None, None),
    };

    consumed.insert(gemm);
    consumed.insert(reduce);
    consumed.extend(middle.iter().copied());
    if let Some(g) = gather {
        consumed.insert(g);
    }
    if let Some(c) = consumer {
        consumed.insert(c);
    }
    Some(Stage::Pipeline {
        producer: gemm,
        reduce,
        middle,
        gather,
        consumer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::{sublayer, transformer_layer, ModelConfig, Pass, SubLayer, TpMode};

    #[test]
    fn sublayer_fuses_into_one_pipeline() {
        let cfg = ModelConfig::llama_7b();
        for which in SubLayer::ALL {
            let g = sublayer(&cfg, 8, which);
            let p = plan(&g);
            assert_eq!(p.pipeline_count(), 1, "{}", which.label());
            let Stage::Pipeline {
                middle,
                gather,
                consumer,
                ..
            } = &p.stages[0]
            else {
                panic!("expected pipeline first");
            };
            assert_eq!(middle.len(), 1, "the LN sits in the middle");
            assert!(gather.is_some());
            assert!(consumer.is_some());
        }
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let cfg = ModelConfig::llama_7b();
        for mode in [TpMode::BasicTp, TpMode::SeqPar] {
            for pass in [Pass::Forward, Pass::Training] {
                let g = transformer_layer(&cfg, 8, mode, pass);
                let p = plan(&g);
                let mut covered = p.covered_nodes();
                covered.sort();
                let expected: Vec<NodeId> = g.ids().collect();
                assert_eq!(covered, expected, "{mode:?}/{pass:?}");
            }
        }
    }

    #[test]
    fn sp_forward_finds_two_pipelines() {
        // attn.proj->rs->add1,ln2->ag->fc1 and fc2->rs->add2 (chain ends).
        let cfg = ModelConfig::llama_7b();
        let g = transformer_layer(&cfg, 8, TpMode::SeqPar, Pass::Forward);
        let p = plan(&g);
        assert_eq!(p.pipeline_count(), 2);
        // The layer-entry ln1 -> ag1 -> qkv shows up as GatherGemm.
        assert!(p
            .stages
            .iter()
            .any(|s| matches!(s, Stage::GatherGemm { .. })));
    }

    #[test]
    fn basic_tp_ar_gemm_fuses() {
        let cfg = ModelConfig::llama_7b();
        let g = transformer_layer(&cfg, 8, TpMode::BasicTp, Pass::Forward);
        let p = plan(&g);
        // attn.proj -> attn.ar -> add1, ln2 -> ffn.fc1 fuses as an
        // AR pipeline with a consumer.
        assert!(p.stages.iter().any(|s| matches!(
            s,
            Stage::Pipeline {
                gather: None,
                consumer: Some(_),
                ..
            }
        )));
    }
}
