//! CAIS: Compute-Aware In-Switch computing.
//!
//! The paper's contribution, reproduced as four cooperating mechanisms:
//!
//! 1. **Compute-aware ISA + switch microarchitecture** ([`isa`],
//!    [`merge`]): `ld.cais` / `red.cais` instructions carry a 1-bit merge
//!    eligibility flag; the switch's merge unit (CAM lookup table +
//!    Merging Table with Load-Wait / Load-Ready / Reduction sessions,
//!    LRU eviction, timeout forward-progress) turns `p - 1` identical
//!    remote loads into one fetch plus `p - 1` replies, and `p - 1`
//!    reduction pushes into one accumulated write.
//! 2. **Merging-aware TB coordination** ([`coordination`], [`sync`]):
//!    a compiler pass (GPU-invariant index analysis, [`index`]) groups
//!    corresponding thread blocks across GPUs; pre-launch and pre-access
//!    synchronization through the switch's Group Sync Table aligns their
//!    request timing from ~35 µs of drift down to ~3 µs.
//! 3. **Graph-level dataflow optimizer** ([`dataflow`]): fuses
//!    GEMM-RS → LN → AG-GEMM chains with TB-level dependencies and
//!    overlaps kernels with complementary (asymmetric) traffic
//!    directions; traffic control separates load and reduction virtual
//!    channels.
//! 4. **Execution strategies** ([`strategies`]): `CAIS`, `CAIS-Partial`
//!    (no traffic control) and `CAIS-Base` (no coordination, no dataflow
//!    optimizer) as [`cais_engine::Strategy`] implementations.
//!
//! [`area`] holds the 12 nm hardware-overhead model of Sec. V-D.

#![warn(missing_docs)]

pub mod area;
pub mod coordination;
pub mod dataflow;
pub mod index;
pub mod isa;
pub mod logic;
pub mod merge;
pub mod strategies;
pub mod sync;

pub use coordination::CoordinationOpts;
pub use dataflow::FusionPlan;
pub use isa::CaisInstr;
pub use logic::CaisLogic;
pub use merge::{MergeConfig, MergeStats, MergeUnit};
pub use strategies::{CaisStrategy, CaisVariant};
pub use sync::GroupSyncTable;
