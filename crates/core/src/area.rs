//! Hardware-overhead model (paper Sec. V-D, TSMC 12 nm).
//!
//! The switch-side additions are dominated by SRAM/CAM macros (the
//! per-port Merging Tables and the CAM lookup arrays) plus a small amount
//! of control logic; the GPU-side synchronizer is a small table plus
//! scheduler glue. The model multiplies bit counts by published
//! 12 nm-class macro densities and adds a fixed logic allowance — enough
//! to reproduce the paper's magnitudes (~0.50 mm² per switch, well under
//! 1% of an NVSwitch die; ~0.019 mm² per GPU).

/// 12 nm area parameters (µm² per bit, macro-level including periphery).
#[derive(Debug, Clone)]
pub struct AreaParams {
    /// Dense SRAM macro density.
    pub sram_um2_per_bit: f64,
    /// CAM density (match lines + priority encoding ≈ 2.5x SRAM).
    pub cam_um2_per_bit: f64,
    /// Random logic allowance per port (adders, state machines, µm²).
    pub logic_um2_per_port: f64,
    /// NVSwitch (third-gen style) die area for the <1% comparison, mm².
    pub nvswitch_die_mm2: f64,
    /// H100 die area, mm².
    pub h100_die_mm2: f64,
}

impl Default for AreaParams {
    fn default() -> AreaParams {
        AreaParams {
            sram_um2_per_bit: 0.12,
            cam_um2_per_bit: 0.30,
            logic_um2_per_port: 12_000.0,
            nvswitch_die_mm2: 294.0,
            h100_die_mm2: 814.0,
        }
    }
}

/// Switch-side CAIS structure sizing.
#[derive(Debug, Clone)]
pub struct SwitchSizing {
    /// Switch ports (one per GPU on a DGX plane pair; 8 in the paper's
    /// per-switch accounting).
    pub ports: usize,
    /// Merging Table bytes per port (40 KB in the paper).
    pub merge_table_bytes: u64,
    /// CAM entries per port (320 in the paper).
    pub cam_entries: usize,
    /// CAM tag width in bits (address tag + type + state).
    pub cam_tag_bits: usize,
    /// Group Sync Table entries (active TB groups tracked).
    pub sync_entries: usize,
    /// Bits per sync entry (group id + per-GPU arrival bitmap + counters).
    pub sync_entry_bits: usize,
}

impl Default for SwitchSizing {
    fn default() -> SwitchSizing {
        SwitchSizing {
            ports: 8,
            merge_table_bytes: 40 * 1024,
            cam_entries: 320,
            cam_tag_bits: 52,
            sync_entries: 1024,
            sync_entry_bits: 48,
        }
    }
}

/// GPU-side synchronizer sizing.
#[derive(Debug, Clone)]
pub struct GpuSizing {
    /// Tracked active TB groups per GPU.
    pub tracker_entries: usize,
    /// Bits per tracker entry.
    pub entry_bits: usize,
    /// Scheduler-interface logic allowance (µm²).
    pub logic_um2: f64,
}

impl Default for GpuSizing {
    fn default() -> GpuSizing {
        GpuSizing {
            tracker_entries: 1024,
            entry_bits: 64,
            logic_um2: 8_000.0,
        }
    }
}

/// Computed overheads.
#[derive(Debug, Clone)]
pub struct AreaReport {
    /// Switch-side merge unit + sync table area, mm².
    pub switch_mm2: f64,
    /// Fraction of the NVSwitch die.
    pub switch_fraction: f64,
    /// GPU-side synchronizer area, mm².
    pub gpu_mm2: f64,
    /// Fraction of the H100 die.
    pub gpu_fraction: f64,
}

/// Evaluates the model.
pub fn estimate(params: &AreaParams, sw: &SwitchSizing, gpu: &GpuSizing) -> AreaReport {
    let merge_bits = sw.ports as f64 * sw.merge_table_bytes as f64 * 8.0;
    let cam_bits = sw.ports as f64 * sw.cam_entries as f64 * sw.cam_tag_bits as f64;
    let sync_bits = sw.sync_entries as f64 * sw.sync_entry_bits as f64;
    let switch_um2 = merge_bits * params.sram_um2_per_bit
        + cam_bits * params.cam_um2_per_bit
        + sync_bits * params.sram_um2_per_bit
        + sw.ports as f64 * params.logic_um2_per_port;
    let switch_mm2 = switch_um2 / 1e6;

    let gpu_bits = gpu.tracker_entries as f64 * gpu.entry_bits as f64;
    let gpu_um2 = gpu_bits * params.sram_um2_per_bit + gpu.logic_um2;
    let gpu_mm2 = gpu_um2 / 1e6;

    AreaReport {
        switch_mm2,
        switch_fraction: switch_mm2 / params.nvswitch_die_mm2,
        gpu_mm2,
        gpu_fraction: gpu_mm2 / params.h100_die_mm2,
    }
}

/// The paper's configuration evaluated with default parameters.
pub fn paper_estimate() -> AreaReport {
    estimate(
        &AreaParams::default(),
        &SwitchSizing::default(),
        &GpuSizing::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_overhead_matches_paper_magnitude() {
        let r = paper_estimate();
        // Paper: ~0.50 mm², < 1% of the NVSwitch die.
        assert!(
            (0.3..=0.7).contains(&r.switch_mm2),
            "switch area {} mm2",
            r.switch_mm2
        );
        assert!(r.switch_fraction < 0.01);
    }

    #[test]
    fn gpu_overhead_matches_paper_magnitude() {
        let r = paper_estimate();
        // Paper: ~0.019 mm², < 0.01% of the H100 die... the paper text
        // says "less than 0.01%" against an ~814 mm2 die, i.e. ~2.3e-5.
        assert!(
            (0.01..=0.03).contains(&r.gpu_mm2),
            "gpu area {} mm2",
            r.gpu_mm2
        );
        assert!(r.gpu_fraction < 1e-4);
    }

    #[test]
    fn area_scales_with_table_size() {
        let params = AreaParams::default();
        let gpu = GpuSizing::default();
        let small = estimate(
            &params,
            &SwitchSizing {
                merge_table_bytes: 10 * 1024,
                ..SwitchSizing::default()
            },
            &gpu,
        );
        let large = estimate(
            &params,
            &SwitchSizing {
                merge_table_bytes: 250 * 1024,
                ..SwitchSizing::default()
            },
            &gpu,
        );
        assert!(large.switch_mm2 > 4.0 * small.switch_mm2);
    }
}
