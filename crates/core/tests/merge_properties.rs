//! Property tests: the merge unit never loses or duplicates work, for
//! arbitrary request interleavings, table capacities and eviction
//! pressure.

use cais_core::merge::{MergeAction, MergeConfig, MergeUnit, Waiter};
use proptest::prelude::*;
use sim_core::{Addr, GpuId, PlaneId, SimDuration, SimTime, TbId, TileId};
use std::collections::HashMap;

const PLANE: PlaneId = PlaneId(0);

#[derive(Debug, Clone)]
enum Op {
    /// GPU `g` requests address index `a`.
    Load { a: usize, g: u16 },
    /// GPU `g` contributes a reduction to address index `a`.
    Reduce { a: usize, g: u16 },
}

fn op_strategy(n_addrs: usize, n_gpus: u16) -> impl Strategy<Value = Op> {
    (0..n_addrs, 1..n_gpus, prop::bool::ANY).prop_map(|(a, g, is_load)| {
        if is_load {
            Op::Load { a, g }
        } else {
            Op::Reduce { a, g }
        }
    })
}

/// Closed-loop driver: applies ops with strictly increasing timestamps,
/// delivers a memory response for every forwarded fetch, and tallies who
/// got answered.
fn drive(
    ops: Vec<Op>,
    n_gpus: usize,
    capacity: Option<u64>,
) -> (
    HashMap<usize, usize>, // load requests per address
    HashMap<usize, usize>, // load answers per address (merged + pass-through)
    HashMap<usize, u32>,   // reduce contribs injected per address
    HashMap<usize, u32>,   // reduce contribs flushed per address
) {
    let mut m = MergeUnit::new(MergeConfig {
        n_gpus,
        table_bytes_per_port: capacity,
        entry_overhead_bytes: 16,
        timeout: SimDuration::from_ms(1),
    });
    // Load ops are deduplicated per (gpu, addr) — the engine's tile
    // directory guarantees one request per GPU per address — and each
    // GPU contributes one reduction per address at most once; filter the
    // random stream accordingly.
    let mut seen_load = std::collections::HashSet::new();
    let mut seen_red = std::collections::HashSet::new();

    let addr_of = |a: usize| Addr::new(GpuId(0), (a as u64) * 4096);
    let idx_of = |addr: Addr| (addr.offset() / 4096) as usize;

    let mut loads_in: HashMap<usize, usize> = HashMap::new();
    let mut answers: HashMap<usize, usize> = HashMap::new();
    let mut reds_in: HashMap<usize, u32> = HashMap::new();
    let mut reds_out: HashMap<usize, u32> = HashMap::new();

    let mut t = 0u64;
    let mut pending_fetches: Vec<Addr> = Vec::new();
    let mut out = Vec::new();

    let mut process = |actions: &mut Vec<MergeAction>,
                       pending: &mut Vec<Addr>,
                       answers: &mut HashMap<usize, usize>,
                       reds_out: &mut HashMap<usize, u32>| {
        for action in actions.drain(..) {
            match action {
                MergeAction::ForwardLoad { addr, .. } => pending.push(addr),
                MergeAction::RespondLoad { addr, .. } => {
                    *answers.entry(idx_of(addr)).or_default() += 1;
                }
                MergeAction::FlushReduce { addr, contribs, .. } => {
                    *reds_out.entry(idx_of(addr)).or_default() += contribs;
                }
                MergeAction::GrantCredit { .. } => {}
            }
        }
    };

    for op in ops {
        t += 100;
        match op {
            Op::Load { a, g } => {
                if !seen_load.insert((a, g)) {
                    continue;
                }
                *loads_in.entry(a).or_default() += 1;
                m.on_load_req(
                    SimTime::from_ns(t),
                    PLANE,
                    addr_of(a),
                    4096,
                    Waiter {
                        requester: GpuId(g),
                        tb: TbId(g as u64),
                        tile: Some(TileId(a as u64)),
                    },
                    &mut out,
                );
                process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
            }
            Op::Reduce { a, g } => {
                if !seen_red.insert((a, g)) {
                    continue;
                }
                *reds_in.entry(a).or_default() += 1;
                m.on_reduce(
                    SimTime::from_ns(t),
                    PLANE,
                    addr_of(a),
                    4096,
                    GpuId(g),
                    1,
                    Some(TileId(a as u64)),
                    &mut out,
                );
                process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
            }
        }
        // Occasionally deliver an outstanding fetch response mid-stream.
        if t % 300 == 0 {
            if let Some(addr) = pending_fetches.pop() {
                t += 50;
                let consumed = m.on_load_resp(SimTime::from_ns(t), PLANE, addr, 4096, &mut out);
                if !consumed {
                    *answers.entry(idx_of(addr)).or_default() += 1;
                }
                process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
            }
        }
    }
    // Drain every outstanding fetch.
    while let Some(addr) = pending_fetches.pop() {
        t += 100;
        let consumed = m.on_load_resp(SimTime::from_ns(t), PLANE, addr, 4096, &mut out);
        if !consumed {
            *answers.entry(idx_of(addr)).or_default() += 1;
        }
        process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
    }
    // Sweep until the timeout clears any idle partial sessions.
    for _ in 0..5 {
        t += 2_000_000;
        m.sweep(SimTime::from_ns(t), PLANE, &mut out);
        process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
        while let Some(addr) = pending_fetches.pop() {
            t += 100;
            let consumed = m.on_load_resp(SimTime::from_ns(t), PLANE, addr, 4096, &mut out);
            if !consumed {
                *answers.entry(idx_of(addr)).or_default() += 1;
            }
            process(&mut out, &mut pending_fetches, &mut answers, &mut reds_out);
        }
    }
    (loads_in, answers, reds_in, reds_out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every load request is answered exactly once and every reduction
    /// contribution is flushed exactly once, under any interleaving and
    /// with an unbounded table.
    #[test]
    fn unbounded_table_conserves_everything(
        ops in proptest::collection::vec(op_strategy(6, 8), 1..120),
    ) {
        let (loads_in, answers, reds_in, reds_out) = drive(ops, 8, None);
        for (a, n) in &loads_in {
            prop_assert_eq!(
                answers.get(a).copied().unwrap_or(0), *n,
                "address {} loads answered", a
            );
        }
        for (a, n) in &reds_in {
            prop_assert_eq!(
                reds_out.get(a).copied().unwrap_or(0), *n,
                "address {} contribs flushed", a
            );
        }
    }

    /// The same conservation holds under heavy eviction pressure (a table
    /// that fits roughly one data entry).
    #[test]
    fn tiny_table_conserves_everything(
        ops in proptest::collection::vec(op_strategy(6, 8), 1..120),
    ) {
        let (loads_in, answers, reds_in, reds_out) = drive(ops, 8, Some(6_000));
        for (a, n) in &loads_in {
            prop_assert_eq!(
                answers.get(a).copied().unwrap_or(0), *n,
                "address {} loads answered under eviction", a
            );
        }
        for (a, n) in &reds_in {
            prop_assert_eq!(
                reds_out.get(a).copied().unwrap_or(0), *n,
                "address {} contribs flushed under eviction", a
            );
        }
    }
}
