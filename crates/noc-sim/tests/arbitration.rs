//! Fabric arbitration and accounting properties.

use noc_sim::{Direction, Fabric, FabricConfig, FlowClass, Payload, PureRouter};
use proptest::prelude::*;
use sim_core::{Bandwidth, GpuId, PlaneId, SimDuration, SimTime};

#[derive(Debug, Clone)]
struct Flow {
    bytes: u64,
    class: FlowClass,
}

impl Payload for Flow {
    fn data_bytes(&self) -> u64 {
        self.bytes
    }
    fn class(&self) -> FlowClass {
        self.class
    }
}

fn cfg(tc: bool) -> FabricConfig {
    FabricConfig {
        link_bw: Bandwidth::gbps(1.0),
        traffic_control: tc,
        segment_bytes: 256,
        ..FabricConfig::default_for(2, 1)
    }
}

#[test]
fn traffic_control_interleaves_loads_and_reductions() {
    // Saturate one up-link with a huge reduction burst, then inject load
    // responses. With traffic control (separate VCs) the load traffic
    // finishes long before the reduction burst drains; without it, the
    // loads are stuck behind the burst (head-of-line blocking).
    let run = |tc: bool| {
        let mut f = Fabric::new(cfg(tc), PureRouter);
        f.inject(
            SimTime::ZERO,
            GpuId(0),
            GpuId(1),
            PlaneId(0),
            Flow {
                bytes: 1 << 20,
                class: FlowClass::Reduce,
            },
        );
        for i in 0..8 {
            f.inject(
                SimTime::from_ns(10 + i),
                GpuId(0),
                GpuId(1),
                PlaneId(0),
                Flow {
                    bytes: 4096,
                    class: FlowClass::LoadResp,
                },
            );
        }
        f.run_to_completion();
        f.drain_deliveries()
            .into_iter()
            .filter(|d| matches!(d.payload.class, FlowClass::LoadResp))
            .map(|d| d.time)
            .max()
            .expect("loads delivered")
    };
    let with_tc = run(true);
    let without_tc = run(false);
    assert!(
        with_tc.as_ns() * 5 < without_tc.as_ns(),
        "traffic control must break head-of-line blocking: {with_tc} vs {without_tc}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wire accounting: delivered payload bytes match injections and the
    /// per-packet header overhead is exactly `header_bytes` per packet
    /// per hop.
    #[test]
    fn header_overhead_is_exact(
        sizes in proptest::collection::vec(1u64..50_000, 1..40),
    ) {
        let mut f = Fabric::new(cfg(false), PureRouter);
        for (i, s) in sizes.iter().enumerate() {
            f.inject(
                SimTime::from_ns(i as u64),
                GpuId(0),
                GpuId(1),
                PlaneId(0),
                Flow { bytes: *s, class: FlowClass::Bulk },
            );
        }
        f.run_to_completion();
        let payload: u64 = sizes.iter().sum();
        let report = f.report(SimDuration::from_ms(100));
        let up = report.bytes_dir(Direction::Up);
        prop_assert_eq!(up, payload + 16 * sizes.len() as u64);
        prop_assert_eq!(report.bytes_dir(Direction::Down), up);
    }

    /// Work conservation: a saturated link's busy time equals its wire
    /// bytes divided by its bandwidth (no lost cycles, no double
    /// counting), regardless of how traffic is classed.
    #[test]
    fn busy_time_matches_wire_bytes(
        sizes in proptest::collection::vec(64u64..20_000, 2..30),
        tc in prop::bool::ANY,
    ) {
        let mut f = Fabric::new(cfg(tc), PureRouter);
        for (i, s) in sizes.iter().enumerate() {
            let class = match i % 3 {
                0 => FlowClass::Reduce,
                1 => FlowClass::LoadResp,
                _ => FlowClass::Bulk,
            };
            f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), Flow { bytes: *s, class });
        }
        f.run_to_completion();
        let report = f.report(SimDuration::from_ms(100));
        let up = report
            .usages()
            .iter()
            .find(|u| u.gpu == GpuId(0) && u.dir == Direction::Up)
            .unwrap()
            .clone();
        // 1 GB/s = 1 byte/ns.
        prop_assert_eq!(up.busy.as_ns(), up.bytes);
    }
}
