//! Fabric usage reporting (bandwidth utilization per link/direction).

use crate::link::Direction;
use sim_core::{GpuId, PlaneId, SimDuration};

/// Usage of one link direction over an observation horizon.
#[derive(Debug, Clone)]
pub struct LinkUsage {
    /// Switch plane of the link.
    pub plane: PlaneId,
    /// GPU endpoint of the link.
    pub gpu: GpuId,
    /// Direction (up = GPU-to-switch, down = switch-to-GPU).
    pub dir: Direction,
    /// Cumulative busy time.
    pub busy: SimDuration,
    /// Wire bytes carried (payload + headers).
    pub bytes: u64,
    /// Packets fully carried.
    pub packets: u64,
    /// `busy / horizon`.
    pub utilization: f64,
    /// Utilization time series samples, when enabled in the fabric config.
    pub series: Option<Vec<f64>>,
}

/// Counters for the link fault-injection and retransmission protocol.
///
/// All zero when fault injection is disabled (the default).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Packets dropped on the wire (each triggers a retransmission).
    pub drops: u64,
    /// Packets delivered corrupted and NACKed by the receiver (each
    /// triggers a retransmission; disjoint from `drops`).
    pub corruptions: u64,
    /// Retransmissions performed (`drops + corruptions` minus budget
    /// exhaustions).
    pub retries: u64,
    /// Total exponential-backoff wait accumulated before retransmissions.
    pub backoff_time: SimDuration,
    /// Packets whose retransmit budget ran out; they are force-delivered so
    /// the simulation terminates, and the engine reports the run as failed.
    pub budget_exhausted: u64,
    /// Serve attempts deferred because the link was inside a transient
    /// outage window.
    pub down_stalls: u64,
    /// Packet serves that started inside a bandwidth-degradation window.
    pub degraded_serves: u64,
}

impl ResilienceCounters {
    /// True when no fault event was recorded.
    pub fn is_clean(&self) -> bool {
        *self == ResilienceCounters::default()
    }
}

/// Aggregated usage over all links of a fabric run.
///
/// The paper's Fig. 15 reports "average bandwidth utilization across all
/// links and two directions for each link" — that is [`FabricReport::mean_utilization`].
#[derive(Debug, Clone)]
pub struct FabricReport {
    horizon: SimDuration,
    usages: Vec<LinkUsage>,
    events_saved: u64,
    resilience: ResilienceCounters,
}

impl FabricReport {
    /// Builds a report from per-link usages.
    pub fn new(horizon: SimDuration, usages: Vec<LinkUsage>) -> FabricReport {
        FabricReport {
            horizon,
            usages,
            events_saved: 0,
            resilience: ResilienceCounters::default(),
        }
    }

    /// Attaches the fault-injection counters.
    pub fn with_resilience(mut self, resilience: ResilienceCounters) -> FabricReport {
        self.resilience = resilience;
        self
    }

    /// Fault-injection and retransmission counters; all zero when fault
    /// injection is disabled.
    pub fn resilience(&self) -> &ResilienceCounters {
        &self.resilience
    }

    /// Attaches the segment-coalescing event savings counter.
    pub fn with_events_saved(mut self, events_saved: u64) -> FabricReport {
        self.events_saved = events_saved;
        self
    }

    /// Link events avoided by segment coalescing across all links: the
    /// per-segment events the uncoalesced model would have processed,
    /// minus the single burst event that replaced each run of them.
    pub fn events_saved(&self) -> u64 {
        self.events_saved
    }

    /// The observation horizon used for utilization.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Per-link usages.
    pub fn usages(&self) -> &[LinkUsage] {
        &self.usages
    }

    /// Mean utilization across every link and both directions.
    pub fn mean_utilization(&self) -> f64 {
        if self.usages.is_empty() {
            return 0.0;
        }
        self.usages.iter().map(|u| u.utilization).sum::<f64>() / self.usages.len() as f64
    }

    /// Mean utilization across links in one direction.
    pub fn mean_utilization_dir(&self, dir: Direction) -> f64 {
        let sel: Vec<&LinkUsage> = self.usages.iter().filter(|u| u.dir == dir).collect();
        if sel.is_empty() {
            return 0.0;
        }
        sel.iter().map(|u| u.utilization).sum::<f64>() / sel.len() as f64
    }

    /// Total wire bytes in one direction.
    pub fn bytes_dir(&self, dir: Direction) -> u64 {
        self.usages
            .iter()
            .filter(|u| u.dir == dir)
            .map(|u| u.bytes)
            .sum()
    }

    /// Mean utilization time series across all links that recorded one.
    ///
    /// Series of different lengths are right-padded with zero (a link idle
    /// for the rest of the run). Returns an empty vec when no link recorded
    /// a series.
    pub fn mean_series(&self) -> Vec<f64> {
        let series: Vec<&Vec<f64>> = self
            .usages
            .iter()
            .filter_map(|u| u.series.as_ref())
            .collect();
        if series.is_empty() {
            return Vec::new();
        }
        let len = series.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = vec![0.0; len];
        for s in &series {
            for (i, v) in s.iter().enumerate() {
                out[i] += v;
            }
        }
        for v in &mut out {
            *v /= series.len() as f64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(dir: Direction, utilization: f64, bytes: u64, series: Option<Vec<f64>>) -> LinkUsage {
        LinkUsage {
            plane: PlaneId(0),
            gpu: GpuId(0),
            dir,
            busy: SimDuration::ZERO,
            bytes,
            packets: 0,
            utilization,
            series,
        }
    }

    #[test]
    fn mean_utilization_over_all_links() {
        let r = FabricReport::new(
            SimDuration::from_us(1),
            vec![
                usage(Direction::Up, 0.2, 10, None),
                usage(Direction::Down, 0.8, 30, None),
            ],
        );
        assert!((r.mean_utilization() - 0.5).abs() < 1e-12);
        assert!((r.mean_utilization_dir(Direction::Up) - 0.2).abs() < 1e-12);
        assert_eq!(r.bytes_dir(Direction::Down), 30);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = FabricReport::new(SimDuration::from_us(1), vec![]);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.mean_utilization_dir(Direction::Up), 0.0);
        assert!(r.mean_series().is_empty());
    }

    #[test]
    fn mean_series_pads_short_series() {
        let r = FabricReport::new(
            SimDuration::from_us(1),
            vec![
                usage(Direction::Up, 0.5, 0, Some(vec![1.0, 1.0])),
                usage(Direction::Down, 0.5, 0, Some(vec![1.0])),
            ],
        );
        let m = r.mean_series();
        assert_eq!(m, vec![1.0, 0.5]);
    }
}
