//! The fabric: switches, links, routing and the switch-logic hook.

use crate::link::{Direction, EnqueueEffect, Link};
use crate::packet::{Delivery, FlowClass, Hop, Packet, Payload};
use crate::report::{FabricReport, LinkUsage, ResilienceCounters};
use sim_core::audit::{AuditProbe, EventRing};
use sim_core::profile::{prof_scope, Subsystem};
use sim_core::rng::JitterRng;
use sim_core::{
    Bandwidth, EventQueue, FaultPlan, GpuId, PlaneId, SimDuration, SimTime, Slab, SlotHandle,
    WindowSchedule,
};

/// Static fabric parameters (Sec. IV-A of the paper).
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of GPU endpoints.
    pub n_gpus: usize,
    /// Number of independent switch planes (4 on DGX-H100).
    pub n_planes: usize,
    /// Bandwidth of one (GPU, plane) link, per direction.
    pub link_bw: Bandwidth,
    /// One-way propagation latency GPU<->switch (250 ns in the paper).
    pub link_latency: SimDuration,
    /// Per-packet header bytes (one 16 B flit in the paper).
    pub header_bytes: u64,
    /// Arbitration granularity: a link re-arbitrates across virtual
    /// channels every `segment_bytes` of payload.
    pub segment_bytes: u64,
    /// Separate virtual channels for load vs. reduction traffic
    /// (the CAIS traffic-control mechanism; off for all baselines).
    pub traffic_control: bool,
    /// When set, every link records a utilization time series with this
    /// bucket width (used by the Fig. 16 experiment).
    pub series_bucket: Option<SimDuration>,
    /// Fault-injection plan; the default plan injects nothing and leaves
    /// every result byte-identical to a fault-free build.
    pub faults: FaultPlan,
}

impl FabricConfig {
    /// DGX-H100-like defaults: 450 GB/s per GPU per direction split evenly
    /// over the planes, 250 ns link latency, 16 B headers.
    pub fn default_for(n_gpus: usize, n_planes: usize) -> FabricConfig {
        FabricConfig {
            n_gpus,
            n_planes,
            link_bw: Bandwidth::gbps(450.0).split(n_planes),
            link_latency: SimDuration::from_ns(250),
            header_bytes: 16,
            segment_bytes: 2048,
            traffic_control: false,
            series_bucket: None,
            faults: FaultPlan::default(),
        }
    }

    /// Aggregate per-GPU bandwidth in one direction (all planes).
    pub fn per_gpu_bw(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(self.link_bw.as_bytes_per_sec() * self.n_planes as f64)
    }
}

/// Actions a [`SwitchLogic`] can take when handling a packet or timer.
#[derive(Debug)]
enum Action<P> {
    Forward(Packet<P>),
    Emit { src: GpuId, dst: GpuId, payload: P },
    Timer { at: SimTime, key: u64 },
}

/// Mutation interface handed to [`SwitchLogic`] callbacks.
///
/// Actions are applied by the fabric after the callback returns, in the
/// order they were issued.
#[derive(Debug)]
pub struct SwitchCtx<P> {
    plane: PlaneId,
    actions: Vec<Action<P>>,
}

impl<P> SwitchCtx<P> {
    /// The switch plane this callback runs on.
    pub fn plane(&self) -> PlaneId {
        self.plane
    }

    /// Forwards a packet along the standard route to its destination GPU.
    pub fn forward(&mut self, pkt: Packet<P>) {
        self.actions.push(Action::Forward(pkt));
    }

    /// Emits a new packet from the switch toward `dst`.
    ///
    /// `src` records which GPU the switch is acting on behalf of (e.g. the
    /// home GPU of merged load data) for diagnostics.
    pub fn emit(&mut self, src: GpuId, dst: GpuId, payload: P) {
        self.actions.push(Action::Emit { src, dst, payload });
    }

    /// Requests an [`SwitchLogic::on_timer`] callback at `at` with `key`.
    pub fn set_timer(&mut self, at: SimTime, key: u64) {
        self.actions.push(Action::Timer { at, key });
    }
}

/// In-switch computing hook: observes every packet arriving at a switch.
///
/// The same logic instance serves all planes; callbacks receive the plane
/// through [`SwitchCtx::plane`]. Implementations model per-plane state by
/// indexing on it.
pub trait SwitchLogic<P: Payload> {
    /// Called when `pkt` has fully arrived at the switch on `ctx.plane()`.
    ///
    /// The default router behaviour is `ctx.forward(pkt)`.
    fn on_packet(&mut self, now: SimTime, pkt: Packet<P>, ctx: &mut SwitchCtx<P>);

    /// Called when a timer set via [`SwitchCtx::set_timer`] fires.
    fn on_timer(&mut self, _now: SimTime, _key: u64, _ctx: &mut SwitchCtx<P>) {}

    /// Named counters this logic exposes after a run (merge hits,
    /// evictions, peak table occupancy, ...). Keys are free-form.
    fn stats(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Reports this logic's conservation ledgers and quiescence
    /// requirements to the auditor (see [`sim_core::audit`]). Stateless
    /// logics have nothing to report.
    fn audit_probe(&self, _probe: &mut AuditProbe) {}
}

// Covers both `Box<dyn SwitchLogic<P>>` (the thin dyn entry point kept at
// strategy construction) and `Box<ConcreteLogic>` (where the forwarding
// calls inline away, so a monomorphized fabric pays no virtual dispatch
// per packet).
impl<P: Payload, L: SwitchLogic<P> + ?Sized> SwitchLogic<P> for Box<L> {
    fn on_packet(&mut self, now: SimTime, pkt: Packet<P>, ctx: &mut SwitchCtx<P>) {
        (**self).on_packet(now, pkt, ctx);
    }
    fn on_timer(&mut self, now: SimTime, key: u64, ctx: &mut SwitchCtx<P>) {
        (**self).on_timer(now, key, ctx);
    }
    fn stats(&self) -> Vec<(String, f64)> {
        (**self).stats()
    }
    fn audit_probe(&self, probe: &mut AuditProbe) {
        (**self).audit_probe(probe);
    }
}

/// The trivial switch logic: forward every packet to its destination GPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct PureRouter;

impl<P: Payload> SwitchLogic<P> for PureRouter {
    fn on_packet(&mut self, _now: SimTime, pkt: Packet<P>, ctx: &mut SwitchCtx<P>) {
        ctx.forward(pkt);
    }
}

/// Per-link fault state: an independent RNG stream (so fault timelines do
/// not depend on traffic on other links) and the link's degradation/outage
/// window schedules, phase-shifted per link.
#[derive(Debug)]
struct LinkFault {
    rng: JitterRng,
    degrade: Option<WindowSchedule>,
    down: Option<WindowSchedule>,
}

/// Fabric-wide fault-injection state; only constructed when the plan
/// configures at least one link-level fault, so the default plan keeps the
/// fabric on the exact pre-fault code path.
#[derive(Debug)]
struct FabricFaults {
    drop_rate: f64,
    corrupt_rate: f64,
    degrade_factor: f64,
    retx: sim_core::RetxConfig,
    links: Vec<LinkFault>,
    /// Per-packet drop counts, held in a generation-tagged slab arena.
    /// A packet stores its [`SlotHandle`] (allocated lazily at the first
    /// drop) and the slot is recycled on delivery or budget exhaustion;
    /// the arena is never iterated, so slot order cannot leak into
    /// results, and stale handles resolve to `None` by construction.
    attempts: Slab<u32>,
    counters: ResilienceCounters,
}

impl FabricFaults {
    fn new(plan: &FaultPlan, n_links: usize) -> FabricFaults {
        let mut root = JitterRng::seed_from(plan.seed ^ 0x5EED_FA17);
        let links = (0..n_links)
            .map(|li| {
                let mut rng = root.fork(li as u64);
                let degrade = plan.degrade.as_ref().map(|d| {
                    let phase = SimDuration::from_ps(rng.next_below(d.period.as_ps()));
                    WindowSchedule::new(d.period, d.duration, phase)
                });
                let down = plan.link_down.as_ref().map(|d| {
                    let phase = SimDuration::from_ps(rng.next_below(d.period.as_ps()));
                    WindowSchedule::new(d.period, d.duration, phase)
                });
                LinkFault { rng, degrade, down }
            })
            .collect();
        FabricFaults {
            drop_rate: plan.drop_rate,
            corrupt_rate: plan.corrupt_rate,
            degrade_factor: plan.degrade.as_ref().map_or(1.0, |d| d.factor),
            retx: plan.retx.clone(),
            links,
            attempts: Slab::new(),
            counters: ResilienceCounters::default(),
        }
    }

    /// Decides the fate of a packet whose final segment just left link
    /// `li`: `None` delivers it, `Some(backoff)` drops it and asks the
    /// caller to retransmit after `backoff`. One RNG draw per departure.
    ///
    /// A packet that exhausts its retransmit budget is force-delivered so
    /// the simulation always terminates; the exhaustion is counted and the
    /// engine turns it into a typed error at the end of the run.
    fn departure_fate(&mut self, li: usize, retx: &mut Option<SlotHandle>) -> Option<SimDuration> {
        if self.drop_rate == 0.0 && self.corrupt_rate == 0.0 {
            return None;
        }
        let r = self.links[li].rng.next_f64();
        if r >= self.drop_rate + self.corrupt_rate {
            if let Some(h) = retx.take() {
                self.attempts.remove(h);
            }
            return None;
        }
        let h = match *retx {
            Some(h) => h,
            None => {
                let h = self.attempts.insert(0);
                *retx = Some(h);
                h
            }
        };
        let slot = self.attempts.get_mut(h).expect("live retransmit slot");
        *slot += 1;
        let attempt = *slot;
        if attempt > self.retx.max_retries {
            self.attempts.remove(h);
            *retx = None;
            self.counters.budget_exhausted += 1;
            return None;
        }
        let exp = (attempt - 1).min(self.retx.backoff_cap_exp);
        if r < self.drop_rate {
            self.counters.drops += 1;
        } else {
            self.counters.corruptions += 1;
        }
        self.counters.retries += 1;
        let backoff = self.retx.backoff_base * (1u64 << exp);
        self.counters.backoff_time += backoff;
        Some(backoff)
    }
}

#[derive(Debug)]
enum NetEvent<P> {
    LinkFree { li: usize, token: u64 },
    ArriveSwitch(Packet<P>),
    ArriveGpu(Packet<P>),
    Timer { plane: PlaneId, key: u64 },
}

/// Always-compiled conservation tallies for the fabric's packet ledgers
/// (see [`sim_core::audit`]): plain integer increments on paths that
/// already manipulate the counted packet, so they cost nothing
/// measurable whether auditing is enabled or not.
#[derive(Debug, Default)]
struct AuditTally {
    /// Packets placed on a link queue (injections, switch forwards/emits,
    /// and retransmission requeues).
    pkt_enqueued: u64,
    /// Packets whose final segment left a link (departures).
    pkt_served: u64,
    /// Departures turned into arrival events.
    arrivals_scheduled: u64,
    /// Arrival events dispatched (switch arrivals + GPU deliveries).
    arrivals_done: u64,
    /// Dropped departures put back on their link for retransmission.
    retx_requeued: u64,
    /// Dispatches whose timestamp regressed behind the fabric clock.
    clock_regressions: u64,
}

/// The interconnect simulator.
///
/// See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Fabric<P, L> {
    cfg: FabricConfig,
    links: Vec<Link<P>>,
    queue: EventQueue<NetEvent<P>>,
    logic: L,
    deliveries: Vec<Delivery<P>>,
    pkt_seq: u64,
    now: SimTime,
    /// Recycled action buffer for [`SwitchCtx`], so per-arrival logic
    /// callbacks don't allocate.
    scratch_actions: Vec<Action<P>>,
    /// Fault-injection state; `None` unless the plan configures link
    /// faults, keeping the fault-free fast path untouched.
    faults: Option<FabricFaults>,
    /// Conservation tallies (always maintained; checked on demand).
    audit: AuditTally,
    /// Bounded forensic event ring; `None` unless auditing is enabled.
    ring: Option<EventRing>,
}

impl<P: Payload, L: SwitchLogic<P>> Fabric<P, L> {
    /// Creates a fabric with the given switch logic installed on every
    /// plane.
    pub fn new(cfg: FabricConfig, logic: L) -> Fabric<P, L> {
        assert!(cfg.n_gpus >= 2, "fabric needs at least two GPUs");
        assert!(cfg.n_planes >= 1, "fabric needs at least one plane");
        let vc_count = FlowClass::vc_count(cfg.traffic_control);
        let n_links = cfg.n_planes * cfg.n_gpus * 2;
        let links = (0..n_links)
            .map(|_| {
                Link::new(
                    cfg.link_bw,
                    cfg.link_latency,
                    cfg.header_bytes,
                    cfg.segment_bytes,
                    vc_count,
                    cfg.series_bucket,
                )
            })
            .collect();
        let faults = cfg
            .faults
            .link_faults_active()
            .then(|| FabricFaults::new(&cfg.faults, n_links));
        Fabric {
            cfg,
            links,
            queue: EventQueue::new(),
            logic,
            deliveries: Vec::new(),
            pkt_seq: 0,
            now: SimTime::ZERO,
            scratch_actions: Vec::new(),
            faults,
            audit: AuditTally::default(),
            ring: None,
        }
    }

    /// Enables the bounded forensic event ring (recorded per dispatched
    /// event; rendered into audit and deadlock reports). Observe-only:
    /// the ring never influences event processing.
    pub fn enable_audit_ring(&mut self, capacity: usize) {
        self.ring = Some(EventRing::new(capacity));
    }

    /// Renders the retained tail of the forensic event ring, oldest
    /// first; empty when the ring was never enabled.
    pub fn audit_recent_events(&self) -> Vec<String> {
        self.ring
            .as_ref()
            .map(EventRing::render)
            .unwrap_or_default()
    }

    /// Fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Access to the installed switch logic (e.g. to read merge-unit
    /// statistics after a run).
    pub fn logic(&self) -> &L {
        &self.logic
    }

    /// Mutable access to the installed switch logic.
    pub fn logic_mut(&mut self) -> &mut L {
        &mut self.logic
    }

    fn link_idx(&self, plane: PlaneId, gpu: GpuId, dir: Direction) -> usize {
        debug_assert!(plane.index() < self.cfg.n_planes, "plane out of range");
        debug_assert!(gpu.index() < self.cfg.n_gpus, "gpu out of range");
        (plane.index() * self.cfg.n_gpus + gpu.index()) * 2 + dir.index()
    }

    /// Injects a payload from `src` toward `dst` via `plane` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the fabric's current time, or if ids are
    /// out of range.
    pub fn inject(&mut self, time: SimTime, src: GpuId, dst: GpuId, plane: PlaneId, payload: P) {
        assert!(time >= self.now, "cannot inject into the past");
        let pkt = Packet {
            id: self.next_pkt_id(),
            src,
            dst,
            plane,
            hop: Hop::ToSwitch,
            retx: None,
            payload,
        };
        // External callers only inject once the fabric has been advanced
        // through `time`, so every link event at `time` already fired.
        self.enqueue_on_link(time, pkt, true);
    }

    fn next_pkt_id(&mut self) -> u64 {
        let id = self.pkt_seq;
        self.pkt_seq += 1;
        id
    }

    fn enqueue_on_link(&mut self, time: SimTime, pkt: Packet<P>, now_settled: bool) {
        let (gpu, dir) = match pkt.hop {
            Hop::ToSwitch => (pkt.src, Direction::Up),
            Hop::ToGpu => (pkt.dst, Direction::Down),
        };
        let li = self.link_idx(pkt.plane, gpu, dir);
        let vc = pkt.payload.class().vc(self.cfg.traffic_control);
        let bytes = pkt.payload.data_bytes();
        self.audit.pkt_enqueued += 1;
        match self.links[li].enqueue(vc, pkt, bytes, time, now_settled) {
            EnqueueEffect::Pending => {}
            // Wake the link: serve at `time` (>= now, so causality holds).
            EnqueueEffect::Wake => self.push_link_free(li, time),
            // A coalesced burst was cut; its old event is now stale and the
            // link re-arbitrates at the cut boundary.
            EnqueueEffect::Preempted(cut) => self.push_link_free(li, cut),
        }
    }

    fn push_link_free(&mut self, li: usize, at: SimTime) {
        let token = self.links[li].token();
        self.queue.push(at, NetEvent::LinkFree { li, token });
    }

    fn push_arrival(&mut self, pkt: Packet<P>, arrive_at: SimTime) {
        self.audit.arrivals_scheduled += 1;
        let ev = match pkt.hop {
            Hop::ToSwitch => NetEvent::ArriveSwitch(pkt),
            Hop::ToGpu => NetEvent::ArriveGpu(pkt),
        };
        self.queue.push(arrive_at, ev);
    }

    /// Puts a dropped packet back at the head of its VC for a full
    /// retransmission and schedules the link to retry at `retry_at`
    /// (stop-and-wait: the link idles through the backoff). Head placement
    /// keeps per-VC FIFO order, so retransmission never reorders a flow.
    fn requeue_for_retx(&mut self, li: usize, pkt: Packet<P>, retry_at: SimTime) {
        let vc = pkt.payload.class().vc(self.cfg.traffic_control);
        let bytes = pkt.payload.data_bytes();
        self.audit.pkt_enqueued += 1;
        self.audit.retx_requeued += 1;
        self.links[li].requeue_front(vc, pkt, bytes);
        self.links[li].set_serving(true);
        self.push_link_free(li, retry_at);
    }

    fn serve_link(&mut self, li: usize, now: SimTime, token: u64) {
        if token != self.links[li].token() {
            // Superseded by a burst preemption.
            return;
        }
        if let Some((mut pkt, arrive_at)) = self.links[li].finish_burst(now) {
            self.audit.pkt_served += 1;
            let fate = self
                .faults
                .as_mut()
                .and_then(|f| f.departure_fate(li, &mut pkt.retx));
            if let Some(backoff) = fate {
                // The wire time was spent (busy/bytes already accounted by
                // the link) but the packet was lost: retransmit after the
                // backoff instead of serving the next packet.
                self.requeue_for_retx(li, pkt, now + backoff);
                return;
            }
            self.push_arrival(pkt, arrive_at);
        }
        // Transient outage and degradation windows are evaluated at serve
        // time: an outage defers the whole serve to the window's end (it
        // never cuts an in-flight serialization), a degradation window
        // stretches the transfer times of everything served inside it.
        let mut slowdown = 1.0f64;
        if let Some(f) = &mut self.faults {
            let lf = &f.links[li];
            if let Some(end) = lf.down.as_ref().and_then(|w| w.active_until(now)) {
                if self.links[li].has_work() {
                    f.counters.down_stalls += 1;
                    self.links[li].set_serving(true);
                    let at = end;
                    self.push_link_free(li, at);
                } else {
                    self.links[li].set_serving(false);
                }
                return;
            }
            if let Some(w) = &lf.degrade {
                if w.is_active(now) {
                    slowdown = f.degrade_factor;
                }
            }
            self.links[li].set_slowdown(slowdown);
        }
        match self.links[li].serve(now) {
            None => self.links[li].set_serving(false),
            Some(out) => {
                self.links[li].set_serving(true);
                if slowdown != 1.0 {
                    if let Some(f) = &mut self.faults {
                        f.counters.degraded_serves += 1;
                    }
                }
                if let Some((mut pkt, arrive_at)) = out.departed {
                    self.audit.pkt_served += 1;
                    let fate = self
                        .faults
                        .as_mut()
                        .and_then(|f| f.departure_fate(li, &mut pkt.retx));
                    if let Some(backoff) = fate {
                        self.requeue_for_retx(li, pkt, out.free_at + backoff);
                    } else {
                        self.push_link_free(li, out.free_at);
                        self.push_arrival(pkt, arrive_at);
                    }
                } else {
                    self.push_link_free(li, out.free_at);
                }
            }
        }
    }

    fn run_logic<F>(&mut self, now: SimTime, plane: PlaneId, f: F)
    where
        F: FnOnce(&mut L, &mut SwitchCtx<P>),
    {
        let mut ctx = SwitchCtx {
            plane,
            actions: std::mem::take(&mut self.scratch_actions),
        };
        {
            let _prof = prof_scope(Subsystem::SwitchLogic);
            f(&mut self.logic, &mut ctx);
        }
        let mut actions = ctx.actions;
        for action in actions.drain(..) {
            match action {
                Action::Forward(mut pkt) => {
                    pkt.hop = Hop::ToGpu;
                    self.enqueue_on_link(now, pkt, false);
                }
                Action::Emit { src, dst, payload } => {
                    let pkt = Packet {
                        id: self.next_pkt_id(),
                        src,
                        dst,
                        plane,
                        hop: Hop::ToGpu,
                        retx: None,
                        payload,
                    };
                    self.enqueue_on_link(now, pkt, false);
                }
                Action::Timer { at, key } => {
                    assert!(at >= now, "switch logic set a timer in the past");
                    self.queue.push(at, NetEvent::Timer { plane, key });
                }
            }
        }
        self.scratch_actions = actions;
    }

    fn dispatch(&mut self, time: SimTime, ev: NetEvent<P>) {
        if time < self.now {
            self.audit.clock_regressions += 1;
        }
        self.now = time;
        if let Some(ring) = &mut self.ring {
            let (what, a, b) = match &ev {
                NetEvent::LinkFree { li, token } => ("link.free", *li as u64, *token),
                NetEvent::ArriveSwitch(pkt) => ("arrive.switch", pkt.id, pkt.dst.0 as u64),
                NetEvent::ArriveGpu(pkt) => ("arrive.gpu", pkt.id, pkt.dst.0 as u64),
                NetEvent::Timer { plane, key } => ("switch.timer", plane.0 as u64, *key),
            };
            ring.record(time, what, a, b);
        }
        match ev {
            NetEvent::LinkFree { li, token } => self.serve_link(li, time, token),
            NetEvent::ArriveSwitch(pkt) => {
                self.audit.arrivals_done += 1;
                let plane = pkt.plane;
                self.run_logic(time, plane, |logic, ctx| logic.on_packet(time, pkt, ctx));
            }
            NetEvent::ArriveGpu(pkt) => {
                self.audit.arrivals_done += 1;
                self.deliveries.push(Delivery {
                    time,
                    src: pkt.src,
                    dst: pkt.dst,
                    plane: pkt.plane,
                    payload: pkt.payload,
                });
            }
            NetEvent::Timer { plane, key } => {
                self.run_logic(time, plane, |logic, ctx| logic.on_timer(time, key, ctx));
            }
        }
    }

    /// Timestamp of the next internal event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Processes every event scheduled at or before `until`.
    pub fn advance(&mut self, until: SimTime) {
        while let Some((t, ev)) = self.queue.pop_due(until) {
            self.dispatch(t, ev);
        }
        self.now = self.now.max(until);
    }

    /// Runs until no events remain. Returns the final simulation time.
    pub fn run_to_completion(&mut self) -> SimTime {
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch(t, ev);
        }
        self.now
    }

    /// Current fabric time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total network events processed so far (perf accounting).
    pub fn events_processed(&self) -> u64 {
        self.queue.pops()
    }

    /// High-water mark of the network event queue (perf accounting).
    pub fn queue_peak(&self) -> usize {
        self.queue.peak_len()
    }

    /// Takes all payloads delivered to GPUs since the last drain.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery<P>> {
        std::mem::take(&mut self.deliveries)
    }

    /// True when deliveries are pending; lets drivers skip the drain
    /// swap in the hot loop when nothing arrived.
    pub fn has_deliveries(&self) -> bool {
        !self.deliveries.is_empty()
    }

    /// Like [`Fabric::drain_deliveries`], but swaps the deliveries into
    /// `out` (cleared first), handing the fabric `out`'s allocation to
    /// refill. Lets a driver recycle one scratch buffer across drains
    /// instead of re-growing a fresh `Vec` per cycle.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery<P>>) {
        out.clear();
        std::mem::swap(&mut self.deliveries, out);
    }

    /// Builds a usage report over the horizon `[0, horizon)`.
    pub fn report(&self, horizon: SimDuration) -> FabricReport {
        let mut usages = Vec::with_capacity(self.links.len());
        for plane in 0..self.cfg.n_planes {
            for gpu in 0..self.cfg.n_gpus {
                for dir in [Direction::Up, Direction::Down] {
                    let li = self.link_idx(PlaneId(plane as u16), GpuId(gpu as u16), dir);
                    let link = &self.links[li];
                    usages.push(LinkUsage {
                        plane: PlaneId(plane as u16),
                        gpu: GpuId(gpu as u16),
                        dir,
                        busy: link.busy_time(),
                        bytes: link.bytes_carried(),
                        packets: link.packets_carried(),
                        utilization: link.busy_time().ratio(horizon),
                        series: link.series().map(|s| s.samples()),
                    });
                }
            }
        }
        let saved = self.links.iter().map(Link::events_saved).sum();
        let mut report = FabricReport::new(horizon, usages).with_events_saved(saved);
        if let Some(f) = &self.faults {
            report = report.with_resilience(f.counters.clone());
        }
        report
    }

    /// Fault-injection counters so far; `None` when link fault injection is
    /// disabled. Lets the engine check for retransmit-budget exhaustion
    /// without building a full report.
    pub fn resilience_counters(&self) -> Option<&ResilienceCounters> {
        self.faults.as_ref().map(|f| &f.counters)
    }

    /// Reports the fabric's conservation ledgers to the auditor and
    /// forwards the probe to the installed switch logic.
    ///
    /// Ledgers (see `DESIGN.md` §11):
    ///
    /// * every enqueued packet is either still queued on a link or has
    ///   departed (`enqueued == served + queued`), valid at any event
    ///   boundary — switch logic may legally absorb or mint packets, so
    ///   conservation is per link hop, not end to end;
    /// * every departure became an arrival event or a retransmission
    ///   requeue (`served == arrivals scheduled + retx requeues`);
    /// * the fabric clock never ran backwards.
    ///
    /// At quiescence additionally: event queue empty, no packet left on
    /// any link, every scheduled arrival dispatched, deliveries drained,
    /// and no orphaned retransmission slots.
    pub fn audit_probe(&self, probe: &mut AuditProbe) {
        let t = &self.audit;
        let queued: u64 = self.links.iter().map(|l| l.queue_len() as u64).sum();
        probe.counter("fabric.pkt_enqueued", t.pkt_enqueued);
        probe.counter("fabric.pkt_served", t.pkt_served);
        probe.counter("fabric.arrivals_scheduled", t.arrivals_scheduled);
        probe.counter("fabric.arrivals_done", t.arrivals_done);
        probe.counter("fabric.retx_requeued", t.retx_requeued);
        probe.counter("fabric.queued_now", queued);
        probe.counter("fabric.events_processed", self.queue.pops());
        probe.ledger_with(
            "fabric",
            "pkt conservation: enqueued == served + queued",
            t.pkt_enqueued,
            t.pkt_served + queued,
            || {
                let busy = self.links.iter().filter(|l| l.queue_len() > 0).count();
                format!("{busy} link(s) hold queued packets")
            },
        );
        probe.ledger(
            "fabric",
            "departure conservation: served == arrivals scheduled + retx requeues",
            t.pkt_served,
            t.arrivals_scheduled + t.retx_requeued,
        );
        probe.ledger(
            "fabric",
            "monotonic clock: zero dispatch-time regressions",
            0,
            t.clock_regressions,
        );
        if probe.is_quiescence() {
            probe.require_zero(
                "fabric",
                "quiescence: event queue drained",
                self.queue.peek_time().is_some() as u64,
            );
            probe.require_zero("fabric", "quiescence: no packets queued on links", queued);
            probe.require_zero(
                "fabric",
                "quiescence: deliveries drained",
                self.deliveries.len() as u64,
            );
            probe.ledger(
                "fabric",
                "quiescence: every scheduled arrival dispatched",
                t.arrivals_scheduled,
                t.arrivals_done,
            );
            if let Some(f) = &self.faults {
                probe.require_zero(
                    "fabric",
                    "quiescence: no orphaned retransmission entries",
                    f.attempts.len() as u64,
                );
            }
        }
        self.logic.audit_probe(probe);
    }

    /// Test-only corruption hook: bumps the enqueued-packet tally without
    /// enqueuing anything, so the next audit check must report a
    /// `fabric` pkt-conservation violation. Proves the auditor catches
    /// real bookkeeping bugs; never called outside tests.
    #[doc(hidden)]
    pub fn audit_poke_pkt_enqueued(&mut self) {
        self.audit.pkt_enqueued += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Blob {
        bytes: u64,
        class: FlowClass,
    }

    impl Payload for Blob {
        fn data_bytes(&self) -> u64 {
            self.bytes
        }
        fn class(&self) -> FlowClass {
            self.class
        }
    }

    fn blob(bytes: u64) -> Blob {
        Blob {
            bytes,
            class: FlowClass::Bulk,
        }
    }

    fn cfg2() -> FabricConfig {
        FabricConfig {
            link_bw: Bandwidth::gbps(1.0), // 1 B/ns for easy arithmetic
            ..FabricConfig::default_for(2, 1)
        }
    }

    #[test]
    fn end_to_end_latency_two_hops() {
        let mut f = Fabric::new(cfg2(), PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(84));
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 1);
        // Up: (84+16) ns serialize + 250 ns; down: same again => 700 ns.
        assert_eq!(d[0].time, SimTime::from_ns(700));
        assert_eq!(d[0].src, GpuId(0));
        assert_eq!(d[0].dst, GpuId(1));
    }

    #[test]
    fn byte_conservation_across_links() {
        let mut f = Fabric::new(cfg2(), PureRouter);
        for i in 0..10 {
            f.inject(
                SimTime::from_ns(i * 5),
                GpuId(0),
                GpuId(1),
                PlaneId(0),
                blob(1000),
            );
        }
        f.run_to_completion();
        assert_eq!(f.drain_deliveries().len(), 10);
        let report = f.report(SimDuration::from_us(100));
        // Up link of gpu0 and down link of gpu1 each carried all packets.
        let up = report
            .usages()
            .iter()
            .find(|u| u.gpu == GpuId(0) && u.dir == Direction::Up)
            .unwrap();
        let down = report
            .usages()
            .iter()
            .find(|u| u.gpu == GpuId(1) && u.dir == Direction::Down)
            .unwrap();
        assert_eq!(up.bytes, 10 * 1016);
        assert_eq!(up.bytes, down.bytes);
        assert_eq!(up.packets, 10);
    }

    #[test]
    fn saturated_link_matches_bandwidth() {
        let mut f = Fabric::new(cfg2(), PureRouter);
        // 1 MB injected at t=0: serialization at 1 B/ns dominates.
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(1 << 20));
        let end = f.run_to_completion();
        let payload = (1 << 20) as f64;
        // Header overhead: one per packet (single packet here).
        let expect_ns = (payload + 16.0) * 2.0 + 500.0;
        let got_ns = end.as_ns() as f64;
        assert!(
            (got_ns - expect_ns).abs() < 2.0,
            "expected ~{expect_ns} ns got {got_ns} ns"
        );
    }

    #[test]
    fn coalescing_saves_events_without_changing_times() {
        // 1 MB over two hops: the per-segment model would cost one event
        // per 2048 B segment per hop; coalescing collapses each hop to one.
        let mut f = Fabric::new(cfg2(), PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(1 << 20));
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 1);
        // Same arrival as the per-segment walk: 2 x (1 MB + 16 B) + 500 ns.
        assert_eq!(d[0].time, SimTime::from_ns(2 * ((1 << 20) + 16) + 500));
        let segs_per_hop = (1u64 << 20).div_ceil(2048);
        let report = f.report(SimDuration::from_us(1));
        assert_eq!(report.events_saved(), 2 * (segs_per_hop - 1));
    }

    #[test]
    fn planes_are_independent_resources() {
        let cfg = FabricConfig {
            link_bw: Bandwidth::gbps(1.0),
            ..FabricConfig::default_for(2, 2)
        };
        let mut f = Fabric::new(cfg, PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(10_000));
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(1), blob(10_000));
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 2);
        // Both arrive at the same time: no shared serialization resource.
        assert_eq!(d[0].time, d[1].time);
    }

    #[test]
    fn custom_logic_can_multicast() {
        #[derive(Debug, Default)]
        struct McastAll {
            n_gpus: usize,
        }
        impl SwitchLogic<Blob> for McastAll {
            fn on_packet(&mut self, _now: SimTime, pkt: Packet<Blob>, ctx: &mut SwitchCtx<Blob>) {
                for g in 0..self.n_gpus {
                    if g != pkt.src.index() {
                        ctx.emit(pkt.src, GpuId(g as u16), pkt.payload.clone());
                    }
                }
            }
        }
        let cfg = FabricConfig::default_for(4, 1);
        let mut f = Fabric::new(cfg, McastAll { n_gpus: 4 });
        f.inject(SimTime::ZERO, GpuId(0), GpuId(0), PlaneId(0), blob(256));
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 3);
        let mut dsts: Vec<u16> = d.iter().map(|x| x.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 2, 3]);
    }

    #[test]
    fn timer_fires() {
        #[derive(Debug, Default)]
        struct TimerLogic {
            fired_at: Option<SimTime>,
        }
        impl SwitchLogic<Blob> for TimerLogic {
            fn on_packet(&mut self, now: SimTime, pkt: Packet<Blob>, ctx: &mut SwitchCtx<Blob>) {
                ctx.set_timer(now + SimDuration::from_us(5), 42);
                ctx.forward(pkt);
            }
            fn on_timer(&mut self, now: SimTime, key: u64, _ctx: &mut SwitchCtx<Blob>) {
                assert_eq!(key, 42);
                self.fired_at = Some(now);
            }
        }
        let mut f = Fabric::new(cfg2(), TimerLogic::default());
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(64));
        f.run_to_completion();
        assert!(f.logic().fired_at.is_some());
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn inject_in_past_panics() {
        let mut f = Fabric::new(cfg2(), PureRouter);
        f.inject(
            SimTime::from_ns(100),
            GpuId(0),
            GpuId(1),
            PlaneId(0),
            blob(1),
        );
        f.run_to_completion();
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(1));
    }

    #[test]
    fn zero_fault_plan_changes_nothing() {
        // A non-default seed with all rates zero must not perturb timing:
        // no fault state is constructed at all.
        let mut cfg = cfg2();
        cfg.faults = sim_core::FaultPlan::default().with_seed(0xDEAD_BEEF);
        let mut f = Fabric::new(cfg, PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(84));
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d[0].time, SimTime::from_ns(700));
        assert!(f.resilience_counters().is_none());
        assert!(f.report(SimDuration::from_us(1)).resilience().is_clean());
    }

    #[test]
    fn drops_retransmit_until_delivered() {
        let mut cfg = cfg2();
        cfg.faults = sim_core::FaultPlan::default()
            .with_seed(7)
            .with_drop_rate(0.2)
            .with_corrupt_rate(0.05);
        let mut f = Fabric::new(cfg, PureRouter);
        for i in 0..40 {
            f.inject(
                SimTime::from_ns(i * 50),
                GpuId(0),
                GpuId(1),
                PlaneId(0),
                blob(100 + i),
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 40, "every packet must eventually deliver");
        let c = f.resilience_counters().unwrap();
        assert!(c.drops > 0, "0.2 drop rate over 80 hops must drop");
        assert!(c.corruptions > 0);
        assert_eq!(c.retries, c.drops + c.corruptions);
        assert!(c.backoff_time > SimDuration::ZERO);
        assert_eq!(c.budget_exhausted, 0);
        let report = f.report(SimDuration::from_us(100));
        assert_eq!(report.resilience(), c);
    }

    #[test]
    fn retransmission_preserves_per_flow_order() {
        // Same (src, dst, class) => same VC; head-of-VC requeue plus
        // stop-and-wait backoff must keep delivery order = injection order
        // under heavy loss, for any seed.
        for seed in 0..8 {
            let mut cfg = cfg2();
            cfg.faults = sim_core::FaultPlan::default()
                .with_seed(seed)
                .with_drop_rate(0.4);
            let mut f = Fabric::new(cfg, PureRouter);
            for i in 0..30 {
                f.inject(
                    SimTime::from_ns(i * 20),
                    GpuId(0),
                    GpuId(1),
                    PlaneId(0),
                    blob(1000 + i),
                );
            }
            f.run_to_completion();
            let d = f.drain_deliveries();
            assert_eq!(d.len(), 30);
            let seqs: Vec<u64> = d.iter().map(|x| x.payload.bytes).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted, "reordered under seed {seed}");
        }
    }

    #[test]
    fn exhausted_retransmit_budget_force_delivers() {
        // With drop_rate 1.0 every transmission fails; the budget bounds
        // the retries and the packet is force-delivered so the simulation
        // terminates (the engine surfaces the exhaustion as an error).
        let mut cfg = cfg2();
        cfg.faults = sim_core::FaultPlan::default()
            .with_seed(3)
            .with_drop_rate(1.0);
        let mut f = Fabric::new(cfg, PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(64));
        f.run_to_completion();
        assert_eq!(f.drain_deliveries().len(), 1);
        let c = f.resilience_counters().unwrap();
        // One exhaustion per hop (up link and down link).
        assert_eq!(c.budget_exhausted, 2);
        assert_eq!(c.drops, 2 * 8, "max_retries drops per hop");
    }

    #[test]
    fn deterministic_fault_timeline_per_seed() {
        let run = |seed: u64| {
            let mut cfg = cfg2();
            cfg.faults = sim_core::FaultPlan::default()
                .with_seed(seed)
                .with_drop_rate(0.25);
            let mut f = Fabric::new(cfg, PureRouter);
            for i in 0..20 {
                f.inject(
                    SimTime::from_ns(i * 100),
                    GpuId(0),
                    GpuId(1),
                    PlaneId(0),
                    blob(500),
                );
            }
            f.run_to_completion();
            let times: Vec<SimTime> = f.drain_deliveries().iter().map(|d| d.time).collect();
            (times, f.resilience_counters().unwrap().clone())
        };
        assert_eq!(run(11), run(11), "same seed must replay byte-identically");
        assert_ne!(run(11).0, run(12).0, "different seeds must diverge");
    }

    #[test]
    fn down_windows_stall_service() {
        let mut cfg = cfg2();
        cfg.faults =
            sim_core::FaultPlan::default()
                .with_seed(5)
                .with_link_down(sim_core::DownSpec {
                    period: SimDuration::from_us(1),
                    duration: SimDuration::from_ns(900),
                });
        let mut f = Fabric::new(cfg, PureRouter);
        for i in 0..10 {
            f.inject(
                SimTime::from_ns(i * 300),
                GpuId(0),
                GpuId(1),
                PlaneId(0),
                blob(84),
            );
        }
        let end = f.run_to_completion();
        assert_eq!(f.drain_deliveries().len(), 10);
        let c = f.resilience_counters().unwrap();
        assert!(c.down_stalls > 0, "90% outage duty cycle must stall serves");
        // Fault-free the last packet (injected at 2.7 us) lands by 3.4 us.
        assert!(
            end > SimTime::from_ns(3400),
            "outages must delay completion"
        );
    }

    #[test]
    fn degradation_windows_stretch_transfers() {
        let mut cfg = cfg2();
        cfg.faults =
            sim_core::FaultPlan::default()
                .with_seed(5)
                .with_degrade(sim_core::DegradeSpec {
                    factor: 4.0,
                    period: SimDuration::from_us(1),
                    duration: SimDuration::from_ns(999),
                });
        let mut f = Fabric::new(cfg, PureRouter);
        // Inject past every link's window phase (phases are drawn in
        // [0, period)), so both hops serve inside a degradation window.
        f.inject(
            SimTime::from_us(2),
            GpuId(0),
            GpuId(1),
            PlaneId(0),
            blob(84),
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 1);
        let c = f.resilience_counters().unwrap();
        assert!(c.degraded_serves > 0);
        // Both hops at quarter bandwidth: 2*(400 ns wire) + 500 ns latency.
        assert!(d[0].time > SimTime::from_us(2) + SimDuration::from_ns(700));
    }

    #[test]
    fn advance_stops_at_horizon() {
        let mut f = Fabric::new(cfg2(), PureRouter);
        f.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), blob(84));
        f.advance(SimTime::from_ns(300));
        assert!(f.drain_deliveries().is_empty());
        assert!(f.next_time().is_some());
        f.advance(SimTime::from_ns(700));
        assert_eq!(f.drain_deliveries().len(), 1);
    }
}
