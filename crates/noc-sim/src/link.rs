//! A single link direction: serial bandwidth resource with virtual
//! channels and segment-granularity round-robin arbitration.
//!
//! # Segment coalescing
//!
//! The baseline model costs one event per `segment_bytes` of payload, which
//! dominates the event count for multi-KB packets. When exactly one VC holds
//! work, per-segment arbitration is vacuous: the head packet wins every
//! boundary, so the link serializes its entire remaining payload as one
//! *coalesced burst* — a single `LinkFree` event at the same departure time
//! the per-segment walk would have produced (the burst end is the sum of the
//! individually-ceiled per-segment transfer times, not one rounding of the
//! total). The moment a second VC enqueues mid-burst, the burst is cut at
//! the first segment boundary the baseline would have re-arbitrated at, and
//! the link falls back to per-segment round-robin. Busy time, series and
//! byte counters are accounted when a burst completes or is cut, covering
//! exactly the segments it serialized, so end-of-run reports are identical.

use crate::packet::Packet;
use sim_core::stats::{BusyTracker, UtilizationSeries};
use sim_core::{Bandwidth, SimDuration, SimTime};
use std::collections::VecDeque;

/// Direction of a (GPU, plane) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// GPU to switch ("upstream"; the G2S direction of the paper's Fig. 10).
    Up,
    /// Switch to GPU ("downstream"; S2G).
    Down,
}

impl Direction {
    /// Index (0 for up, 1 for down) for flat storage.
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }
}

/// A packet queued on a link, tracking how many payload bytes remain to be
/// serialized (wormhole-style: segments of different VCs interleave on the
/// physical link).
#[derive(Debug)]
struct QueuedPacket<P> {
    pkt: Packet<P>,
    remaining: u64,
    header_pending: bool,
}

/// An in-flight coalesced burst: the sole non-empty VC's head packet being
/// serialized to completion in one event.
#[derive(Debug, Clone, Copy)]
struct Burst {
    vc: usize,
    start: SimTime,
    free_at: SimTime,
    /// Payload bytes remaining at burst start.
    r0: u64,
    /// Whether the header was still pending at burst start.
    hdr: bool,
    /// Total wire bytes (payload + header) the full burst serializes.
    wire_total: u64,
    /// Segment count of the full burst.
    segments: u64,
}

/// One link direction.
#[derive(Debug)]
pub struct Link<P> {
    bw: Bandwidth,
    latency: SimDuration,
    header_bytes: u64,
    segment_bytes: u64,
    vcs: Vec<VecDeque<QueuedPacket<P>>>,
    rr: usize,
    /// Transfer-time multiplier from an active degradation window; exactly
    /// `1.0` outside windows (and always, when fault injection is off).
    slowdown: f64,
    /// True while a `LinkFree` event is pending for this link.
    serving: bool,
    burst: Option<Burst>,
    /// Bumped whenever a pending `LinkFree` event is superseded by a burst
    /// preemption; events carrying an older token are ignored.
    token: u64,
    events_saved: u64,
    busy: BusyTracker,
    series: Option<UtilizationSeries>,
    bytes_carried: u64,
    packets_carried: u64,
}

/// Outcome of serving the link at some instant.
#[derive(Debug)]
pub struct ServeOutcome<P> {
    /// When the link becomes free again.
    pub free_at: SimTime,
    /// A packet whose final segment was just serialized; it arrives at the
    /// far end at `free_at + latency`. `None` for intermediate segments and
    /// for coalesced bursts (a burst's departure is produced by
    /// [`Link::finish_burst`] when its event fires).
    pub departed: Option<(Packet<P>, SimTime)>,
}

/// What the caller must schedule after [`Link::enqueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueEffect {
    /// The link was idle: schedule a serve at the enqueue time.
    Wake,
    /// A serve or burst event is already pending: nothing to schedule.
    Pending,
    /// An active burst on another VC was cut short: schedule a serve at the
    /// contained time, carrying the link's new token.
    Preempted(SimTime),
}

impl<P> Link<P> {
    /// Creates an idle link.
    pub fn new(
        bw: Bandwidth,
        latency: SimDuration,
        header_bytes: u64,
        segment_bytes: u64,
        vc_count: usize,
        series_bucket: Option<SimDuration>,
    ) -> Link<P> {
        assert!(segment_bytes > 0, "segment size must be positive");
        assert!(vc_count > 0, "need at least one virtual channel");
        Link {
            bw,
            latency,
            header_bytes,
            segment_bytes,
            // Seeded with room for a typical in-flight window so the hot
            // enqueue path never reallocates mid-run.
            vcs: (0..vc_count).map(|_| VecDeque::with_capacity(32)).collect(),
            rr: 0,
            slowdown: 1.0,
            serving: false,
            burst: None,
            token: 0,
            events_saved: 0,
            busy: BusyTracker::new(),
            series: series_bucket.map(UtilizationSeries::new),
            bytes_carried: 0,
            packets_carried: 0,
        }
    }

    /// Sets the degradation slowdown factor applied to subsequent transfer
    /// times. `1.0` restores nominal bandwidth bit-exactly.
    pub fn set_slowdown(&mut self, factor: f64) {
        self.slowdown = factor;
    }

    /// Serialization time for `wire` bytes under the current slowdown.
    /// Bit-exact with the nominal bandwidth when the factor is `1.0`, so a
    /// disabled fault layer cannot perturb timing.
    fn transfer(&self, wire: u64) -> SimDuration {
        let t = self.bw.transfer_time(wire);
        if self.slowdown == 1.0 {
            t
        } else {
            SimDuration::from_ps((t.as_ps() as f64 * self.slowdown) as u64)
        }
    }

    /// Walks the segment boundaries of a burst of `r0` payload bytes
    /// starting at `start` (`hdr`: header still pending).
    ///
    /// With `cut = Some((te, settled))` the walk stops at the first boundary
    /// the baseline would re-arbitrate at after an enqueue at `te`:
    /// strictly after `te` when `settled` (every event at `te` was already
    /// dispatched, so the boundary at `te` itself already went to this
    /// packet), at-or-after `te` otherwise.
    ///
    /// Returns `(boundary, wire_bytes, segments, payload_served)` for the
    /// walked prefix; with `cut = None` that is the whole burst.
    fn walk_burst(
        &self,
        start: SimTime,
        r0: u64,
        hdr: bool,
        cut: Option<(SimTime, bool)>,
    ) -> (SimTime, u64, u64, u64) {
        debug_assert!(r0 > 0, "burst over an empty packet");
        let mut t = start;
        let mut wire_total = 0u64;
        let mut segments = 0u64;
        let mut remaining = r0;
        let mut first = hdr;
        loop {
            let seg = remaining.min(self.segment_bytes);
            let mut wire = seg;
            if first {
                wire += self.header_bytes;
                first = false;
            }
            t += self.transfer(wire);
            wire_total += wire;
            segments += 1;
            remaining -= seg;
            if remaining == 0 {
                break;
            }
            if let Some((te, settled)) = cut {
                if if settled { t > te } else { t >= te } {
                    break;
                }
            }
        }
        (t, wire_total, segments, r0 - remaining)
    }

    /// Queues a packet on virtual channel `vc` at time `now`.
    ///
    /// `now_settled` states that every link event scheduled at `now` has
    /// already been dispatched (true for engine-side injections, false for
    /// enqueues made while the fabric is mid-dispatch at `now`); it decides
    /// which segment boundary a preempted burst is cut at.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn enqueue(
        &mut self,
        vc: usize,
        pkt: Packet<P>,
        data_bytes: u64,
        now: SimTime,
        now_settled: bool,
    ) -> EnqueueEffect {
        self.vcs[vc].push_back(QueuedPacket {
            pkt,
            remaining: data_bytes,
            header_pending: true,
        });
        if let Some(b) = self.burst {
            if b.vc != vc {
                let (cut, wire, segments, served) =
                    self.walk_burst(b.start, b.r0, b.hdr, Some((now, now_settled)));
                if served < b.r0 {
                    self.busy.record(b.start, cut);
                    if let Some(s) = &mut self.series {
                        s.record(b.start, cut);
                    }
                    self.bytes_carried += wire;
                    self.events_saved += segments - 1;
                    let head = self.vcs[b.vc].front_mut().expect("burst head exists");
                    head.remaining = b.r0 - served;
                    head.header_pending = false;
                    self.burst = None;
                    self.token += 1;
                    return EnqueueEffect::Preempted(cut);
                }
                // The burst drains before the first boundary the newcomer
                // could claim: let its pending event stand.
            }
            return EnqueueEffect::Pending;
        }
        if !self.serving {
            self.serving = true;
            EnqueueEffect::Wake
        } else {
            EnqueueEffect::Pending
        }
    }

    /// Requeues a packet at the *head* of virtual channel `vc` for
    /// retransmission after a drop. The packet is re-serialized in full
    /// (header included), and head placement preserves per-VC FIFO order so
    /// retransmission never reorders a flow.
    pub fn requeue_front(&mut self, vc: usize, pkt: Packet<P>, data_bytes: u64) {
        self.vcs[vc].push_front(QueuedPacket {
            pkt,
            remaining: data_bytes,
            header_pending: true,
        });
    }

    /// True if a serve event is already pending.
    pub fn is_serving(&self) -> bool {
        self.serving
    }

    /// Marks that a serve event has been scheduled (or completed).
    pub fn set_serving(&mut self, serving: bool) {
        self.serving = serving;
    }

    /// Current token; `LinkFree` events carrying an older value are stale.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// True if any VC holds a packet.
    pub fn has_work(&self) -> bool {
        self.vcs.iter().any(|q| !q.is_empty())
    }

    /// Completes an active burst whose event fires at `now`: accounts its
    /// busy span and counters and pops the head packet, which arrives at
    /// the far end at `now + latency`. Returns `None` when no burst is
    /// active. Call before [`Link::serve`] when a link event fires.
    pub fn finish_burst(&mut self, now: SimTime) -> Option<(Packet<P>, SimTime)> {
        let b = self.burst?;
        debug_assert_eq!(b.free_at, now, "burst event fired at the wrong time");
        self.busy.record(b.start, b.free_at);
        if let Some(s) = &mut self.series {
            s.record(b.start, b.free_at);
        }
        self.bytes_carried += b.wire_total;
        self.events_saved += b.segments - 1;
        let q = self.vcs[b.vc].pop_front().expect("burst head exists");
        self.packets_carried += 1;
        self.burst = None;
        Some((q.pkt, b.free_at + self.latency))
    }

    /// Serves the link starting at `now`: picks the next non-empty VC
    /// round-robin. When it is the only non-empty VC and its head packet
    /// spans several segments, starts a coalesced burst (one event for the
    /// whole packet); otherwise serializes one `segment_bytes` segment
    /// (plus the header on the packet's first segment).
    ///
    /// Returns `None` when all VCs are empty.
    pub fn serve(&mut self, now: SimTime) -> Option<ServeOutcome<P>> {
        debug_assert!(self.burst.is_none(), "serve during an active burst");
        let n = self.vcs.len();
        let vc = (0..n)
            .map(|i| (self.rr + i) % n)
            .find(|&i| !self.vcs[i].is_empty())?;
        self.rr = (vc + 1) % n;

        let sole = self
            .vcs
            .iter()
            .enumerate()
            .all(|(i, q)| i == vc || q.is_empty());
        let head = self.vcs[vc].front_mut().expect("vc checked non-empty");
        if sole && head.remaining > self.segment_bytes {
            let (r0, hdr) = (head.remaining, head.header_pending);
            let (free_at, wire_total, segments, served) = self.walk_burst(now, r0, hdr, None);
            debug_assert_eq!(served, r0);
            self.burst = Some(Burst {
                vc,
                start: now,
                free_at,
                r0,
                hdr,
                wire_total,
                segments,
            });
            return Some(ServeOutcome {
                free_at,
                departed: None,
            });
        }

        let seg = head.remaining.min(self.segment_bytes);
        let mut wire = seg;
        if head.header_pending {
            wire += self.header_bytes;
            head.header_pending = false;
        }
        head.remaining -= seg;
        let drained = head.remaining == 0;

        let t = self.transfer(wire);
        let free_at = now + t;
        self.busy.record(now, free_at);
        if let Some(s) = &mut self.series {
            s.record(now, free_at);
        }
        self.bytes_carried += wire;

        let departed = if drained {
            let q = self.vcs[vc].pop_front().expect("head exists");
            self.packets_carried += 1;
            Some((q.pkt, free_at + self.latency))
        } else {
            None
        };
        Some(ServeOutcome { free_at, departed })
    }

    /// Total wire bytes (payload + headers) carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Packets fully carried so far.
    pub fn packets_carried(&self) -> u64 {
        self.packets_carried
    }

    /// Link events avoided by coalescing (per-segment events the baseline
    /// model would have processed, minus the one burst event).
    pub fn events_saved(&self) -> u64 {
        self.events_saved
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy.busy_time()
    }

    /// Utilization time series, if enabled at construction.
    pub fn series(&self) -> Option<&UtilizationSeries> {
        self.series.as_ref()
    }

    /// Current total queued packets across VCs (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.vcs.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Hop;
    use sim_core::{GpuId, PlaneId};

    fn pkt(id: u64) -> Packet<u64> {
        Packet {
            id,
            src: GpuId(0),
            dst: GpuId(1),
            plane: PlaneId(0),
            hop: Hop::ToSwitch,
            retx: None,
            payload: id,
        }
    }

    fn test_link(segment: u64, vcs: usize) -> Link<u64> {
        // 1 GB/s => 1 byte per ns: transfer times equal byte counts in ns.
        Link::new(
            Bandwidth::gbps(1.0),
            SimDuration::from_ns(250),
            16,
            segment,
            vcs,
            None,
        )
    }

    /// Drives a link the way the fabric does: settle any finished burst,
    /// then serve, until the link idles. Returns (packet id, arrival time)
    /// per departure.
    fn drain(l: &mut Link<u64>, mut now: SimTime) -> Vec<(u64, SimTime)> {
        let mut departures = Vec::new();
        loop {
            if let Some((p, at)) = l.finish_burst(now) {
                departures.push((p.id, at));
            }
            match l.serve(now) {
                Some(out) => {
                    if let Some((p, at)) = out.departed {
                        departures.push((p.id, at));
                    }
                    now = out.free_at;
                }
                None => break,
            }
        }
        departures
    }

    #[test]
    fn single_packet_timing() {
        let mut l = test_link(4096, 1);
        assert_eq!(
            l.enqueue(0, pkt(1), 100, SimTime::ZERO, true),
            EnqueueEffect::Wake
        );
        let out = l.serve(SimTime::ZERO).unwrap();
        // 100 B payload + 16 B header at 1 B/ns = 116 ns on the wire.
        assert_eq!(out.free_at, SimTime::from_ns(116));
        let (p, arrive) = out.departed.unwrap();
        assert_eq!(p.id, 1);
        assert_eq!(arrive, SimTime::from_ns(116 + 250));
        assert!(l.serve(out.free_at).is_none());
    }

    #[test]
    fn large_packet_coalesces_into_one_burst() {
        let mut l = test_link(64, 1);
        l.enqueue(0, pkt(1), 200, SimTime::ZERO, true);
        // Segments 64+hdr, 64, 64, 8 sum to 216 ns — but one event, not 4.
        let o = l.serve(SimTime::ZERO).unwrap();
        assert_eq!(o.free_at, SimTime::from_ns(216));
        assert!(o.departed.is_none());
        let (p, arrive) = l.finish_burst(o.free_at).unwrap();
        assert_eq!(p.id, 1);
        assert_eq!(arrive, SimTime::from_ns(216 + 250));
        assert_eq!(l.bytes_carried(), 216);
        assert_eq!(l.busy_time(), SimDuration::from_ns(216));
        assert_eq!(l.events_saved(), 3);
        assert!(l.serve(o.free_at).is_none());
    }

    #[test]
    fn round_robin_interleaves_vcs() {
        let mut l = test_link(64, 2);
        l.enqueue(0, pkt(1), 128, SimTime::ZERO, true); // 2 segments on vc0
        l.enqueue(1, pkt(2), 128, SimTime::ZERO, true); // 2 segments on vc1
        let departures = drain(&mut l, SimTime::ZERO);
        // Interleaved: vc0 seg, vc1 seg, vc0 seg (departs), vc1 seg (departs).
        assert_eq!(departures.len(), 2);
        assert_eq!(departures[0].0, 1);
        assert_eq!(departures[1].0, 2);
        // Packet 2 departs only one segment after packet 1 — fair sharing,
        // not head-of-line blocking.
        let gap = departures[1].1.since(departures[0].1);
        assert_eq!(gap, SimDuration::from_ns(64));
    }

    #[test]
    fn single_vc_causes_head_of_line_blocking() {
        let mut l = test_link(64, 1);
        l.enqueue(0, pkt(1), 1024, SimTime::ZERO, true);
        l.enqueue(0, pkt(2), 64, SimTime::ZERO, true);
        let departures = drain(&mut l, SimTime::ZERO);
        // Packet 2 had to wait behind the whole 1024 B of packet 1.
        let at = departures.iter().find(|(id, _)| *id == 2).unwrap().1;
        assert!(at >= SimTime::from_ns(1024 + 16 + 64));
    }

    #[test]
    fn preemption_cuts_at_next_segment_boundary() {
        let mut l = test_link(64, 2);
        l.enqueue(1, pkt(1), 300, SimTime::ZERO, true);
        // Burst boundaries: 80 (64+hdr), 144, 208, 272, 316.
        let o = l.serve(SimTime::ZERO).unwrap();
        assert_eq!(o.free_at, SimTime::from_ns(316));
        // A second VC enqueues mid-segment at 100 ns: the in-flight segment
        // finishes at 144 ns, then arbitration resumes.
        let eff = l.enqueue(0, pkt(2), 32, SimTime::from_ns(100), false);
        assert_eq!(eff, EnqueueEffect::Preempted(SimTime::from_ns(144)));
        // The burst accounted exactly its two completed segments.
        assert_eq!(l.bytes_carried(), 144);
        assert_eq!(l.busy_time(), SimDuration::from_ns(144));
        assert_eq!(l.token(), 1);
        let departures = drain(&mut l, SimTime::from_ns(144));
        // Baseline per-segment walk: vc0 serves 32+16 over [144,192), pkt2
        // arrives 192+250; vc1's remaining 172 B over [192,364), pkt1
        // arrives 364+250.
        assert_eq!(
            departures,
            vec![
                (2, SimTime::from_ns(192 + 250)),
                (1, SimTime::from_ns(364 + 250)),
            ]
        );
        assert_eq!(l.bytes_carried(), 364);
        assert_eq!(l.busy_time(), SimDuration::from_ns(364));
    }

    #[test]
    fn preemption_on_exact_boundary_respects_settledness() {
        // Enqueue lands exactly on the 144 ns boundary. Mid-dispatch
        // (unsettled) the newcomer wins that boundary; from a settled
        // caller the boundary already went to the burst.
        let mut a = test_link(64, 2);
        a.enqueue(1, pkt(1), 300, SimTime::ZERO, true);
        a.serve(SimTime::ZERO).unwrap();
        let eff = a.enqueue(0, pkt(2), 32, SimTime::from_ns(144), false);
        assert_eq!(eff, EnqueueEffect::Preempted(SimTime::from_ns(144)));

        let mut b = test_link(64, 2);
        b.enqueue(1, pkt(1), 300, SimTime::ZERO, true);
        b.serve(SimTime::ZERO).unwrap();
        let eff = b.enqueue(0, pkt(2), 32, SimTime::from_ns(144), true);
        assert_eq!(eff, EnqueueEffect::Preempted(SimTime::from_ns(208)));
    }

    #[test]
    fn enqueue_near_burst_end_does_not_preempt() {
        let mut l = test_link(64, 2);
        l.enqueue(1, pkt(1), 300, SimTime::ZERO, true);
        let o = l.serve(SimTime::ZERO).unwrap();
        // Enqueue inside the final segment (boundaries 272 and 316): the
        // burst drains before any boundary the newcomer could claim.
        let eff = l.enqueue(0, pkt(2), 32, SimTime::from_ns(280), false);
        assert_eq!(eff, EnqueueEffect::Pending);
        assert_eq!(l.token(), 0);
        let departures = drain(&mut l, o.free_at);
        assert_eq!(
            departures,
            vec![
                (1, SimTime::from_ns(316 + 250)),
                (2, SimTime::from_ns(364 + 250)),
            ]
        );
    }

    #[test]
    fn same_vc_enqueue_does_not_preempt() {
        let mut l = test_link(64, 1);
        l.enqueue(0, pkt(1), 300, SimTime::ZERO, true);
        l.serve(SimTime::ZERO).unwrap();
        let eff = l.enqueue(0, pkt(2), 64, SimTime::from_ns(100), false);
        assert_eq!(eff, EnqueueEffect::Pending);
        assert_eq!(l.token(), 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut l = test_link(4096, 1);
        l.enqueue(0, pkt(1), 84, SimTime::ZERO, true); // 84+16 = 100 ns
        let o = l.serve(SimTime::ZERO).unwrap();
        assert_eq!(l.busy_time(), SimDuration::from_ns(100));
        assert_eq!(l.packets_carried(), 1);
        assert_eq!(l.queue_len(), 0);
        let _ = o;
    }
}
