//! A single link direction: serial bandwidth resource with virtual
//! channels and segment-granularity round-robin arbitration.

use crate::packet::Packet;
use sim_core::stats::{BusyTracker, UtilizationSeries};
use sim_core::{Bandwidth, SimDuration, SimTime};
use std::collections::VecDeque;

/// Direction of a (GPU, plane) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// GPU to switch ("upstream"; the G2S direction of the paper's Fig. 10).
    Up,
    /// Switch to GPU ("downstream"; S2G).
    Down,
}

impl Direction {
    /// Index (0 for up, 1 for down) for flat storage.
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }
}

/// A packet queued on a link, tracking how many payload bytes remain to be
/// serialized (wormhole-style: segments of different VCs interleave on the
/// physical link).
#[derive(Debug)]
struct QueuedPacket<P> {
    pkt: Packet<P>,
    remaining: u64,
    header_pending: bool,
}

/// One link direction.
#[derive(Debug)]
pub struct Link<P> {
    bw: Bandwidth,
    latency: SimDuration,
    header_bytes: u64,
    segment_bytes: u64,
    vcs: Vec<VecDeque<QueuedPacket<P>>>,
    rr: usize,
    /// True while a `LinkFree` event is pending for this link.
    serving: bool,
    busy: BusyTracker,
    series: Option<UtilizationSeries>,
    bytes_carried: u64,
    packets_carried: u64,
}

/// Outcome of serving one segment.
#[derive(Debug)]
pub struct ServeOutcome<P> {
    /// When the link becomes free again.
    pub free_at: SimTime,
    /// A packet whose final segment was just serialized; it arrives at the
    /// far end at `free_at + latency`.
    pub departed: Option<(Packet<P>, SimTime)>,
}

impl<P> Link<P> {
    /// Creates an idle link.
    pub fn new(
        bw: Bandwidth,
        latency: SimDuration,
        header_bytes: u64,
        segment_bytes: u64,
        vc_count: usize,
        series_bucket: Option<SimDuration>,
    ) -> Link<P> {
        assert!(segment_bytes > 0, "segment size must be positive");
        assert!(vc_count > 0, "need at least one virtual channel");
        Link {
            bw,
            latency,
            header_bytes,
            segment_bytes,
            vcs: (0..vc_count).map(|_| VecDeque::new()).collect(),
            rr: 0,
            serving: false,
            busy: BusyTracker::new(),
            series: series_bucket.map(UtilizationSeries::new),
            bytes_carried: 0,
            packets_carried: 0,
        }
    }

    /// Queues a packet on virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn enqueue(&mut self, vc: usize, pkt: Packet<P>, data_bytes: u64) {
        self.vcs[vc].push_back(QueuedPacket {
            pkt,
            remaining: data_bytes,
            header_pending: true,
        });
    }

    /// True if a serve event is already pending.
    pub fn is_serving(&self) -> bool {
        self.serving
    }

    /// Marks that a serve event has been scheduled (or completed).
    pub fn set_serving(&mut self, serving: bool) {
        self.serving = serving;
    }

    /// True if any VC holds a packet.
    pub fn has_work(&self) -> bool {
        self.vcs.iter().any(|q| !q.is_empty())
    }

    /// Serves one segment starting at `now`: picks the next non-empty VC
    /// round-robin, serializes up to `segment_bytes` of its head packet
    /// (plus the header on the packet's first segment), and reports when
    /// the link frees and whether the packet departed.
    ///
    /// Returns `None` when all VCs are empty.
    pub fn serve(&mut self, now: SimTime) -> Option<ServeOutcome<P>> {
        let n = self.vcs.len();
        let vc = (0..n)
            .map(|i| (self.rr + i) % n)
            .find(|&i| !self.vcs[i].is_empty())?;
        self.rr = (vc + 1) % n;

        let head = self.vcs[vc].front_mut().expect("vc checked non-empty");
        let seg = head.remaining.min(self.segment_bytes);
        let mut wire = seg;
        if head.header_pending {
            wire += self.header_bytes;
            head.header_pending = false;
        }
        head.remaining -= seg;

        let t = self.bw.transfer_time(wire);
        let free_at = now + t;
        self.busy.record(now, free_at);
        if let Some(s) = &mut self.series {
            s.record(now, free_at);
        }
        self.bytes_carried += wire;

        let departed = if head.remaining == 0 {
            let q = self.vcs[vc].pop_front().expect("head exists");
            self.packets_carried += 1;
            Some((q.pkt, free_at + self.latency))
        } else {
            None
        };
        Some(ServeOutcome { free_at, departed })
    }

    /// Total wire bytes (payload + headers) carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Packets fully carried so far.
    pub fn packets_carried(&self) -> u64 {
        self.packets_carried
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy.busy_time()
    }

    /// Utilization time series, if enabled at construction.
    pub fn series(&self) -> Option<&UtilizationSeries> {
        self.series.as_ref()
    }

    /// Current total queued packets across VCs (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.vcs.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Hop;
    use sim_core::{GpuId, PlaneId};

    fn pkt(id: u64) -> Packet<u64> {
        Packet {
            id,
            src: GpuId(0),
            dst: GpuId(1),
            plane: PlaneId(0),
            hop: Hop::ToSwitch,
            payload: id,
        }
    }

    fn test_link(segment: u64, vcs: usize) -> Link<u64> {
        // 1 GB/s => 1 byte per ns: transfer times equal byte counts in ns.
        Link::new(
            Bandwidth::gbps(1.0),
            SimDuration::from_ns(250),
            16,
            segment,
            vcs,
            None,
        )
    }

    #[test]
    fn single_packet_timing() {
        let mut l = test_link(4096, 1);
        l.enqueue(0, pkt(1), 100);
        let out = l.serve(SimTime::ZERO).unwrap();
        // 100 B payload + 16 B header at 1 B/ns = 116 ns on the wire.
        assert_eq!(out.free_at, SimTime::from_ns(116));
        let (p, arrive) = out.departed.unwrap();
        assert_eq!(p.id, 1);
        assert_eq!(arrive, SimTime::from_ns(116 + 250));
        assert!(l.serve(out.free_at).is_none());
    }

    #[test]
    fn large_packet_segments() {
        let mut l = test_link(64, 1);
        l.enqueue(0, pkt(1), 200);
        // Segments: 64+hdr, 64, 64, 8.
        let o1 = l.serve(SimTime::ZERO).unwrap();
        assert_eq!(o1.free_at, SimTime::from_ns(80));
        assert!(o1.departed.is_none());
        let o2 = l.serve(o1.free_at).unwrap();
        assert_eq!(o2.free_at, SimTime::from_ns(144));
        let o3 = l.serve(o2.free_at).unwrap();
        let o4 = l.serve(o3.free_at).unwrap();
        assert_eq!(o4.free_at, SimTime::from_ns(216));
        assert!(o4.departed.is_some());
        assert_eq!(l.bytes_carried(), 216);
    }

    #[test]
    fn round_robin_interleaves_vcs() {
        let mut l = test_link(64, 2);
        l.enqueue(0, pkt(1), 128); // 2 segments on vc0
        l.enqueue(1, pkt(2), 128); // 2 segments on vc1
        let mut departures = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(out) = l.serve(now) {
            now = out.free_at;
            if let Some((p, at)) = out.departed {
                departures.push((p.id, at));
            }
        }
        // Interleaved: vc0 seg, vc1 seg, vc0 seg (departs), vc1 seg (departs).
        assert_eq!(departures.len(), 2);
        assert_eq!(departures[0].0, 1);
        assert_eq!(departures[1].0, 2);
        // Packet 2 departs only one segment after packet 1 — fair sharing,
        // not head-of-line blocking.
        let gap = departures[1].1.since(departures[0].1);
        assert_eq!(gap, SimDuration::from_ns(64));
    }

    #[test]
    fn single_vc_causes_head_of_line_blocking() {
        let mut l = test_link(64, 1);
        l.enqueue(0, pkt(1), 1024);
        l.enqueue(0, pkt(2), 64);
        let mut now = SimTime::ZERO;
        let mut second_departure = None;
        while let Some(out) = l.serve(now) {
            now = out.free_at;
            if let Some((p, at)) = out.departed {
                if p.id == 2 {
                    second_departure = Some(at);
                }
            }
        }
        // Packet 2 had to wait behind the whole 1024 B of packet 1.
        let at = second_departure.unwrap();
        assert!(at >= SimTime::from_ns(1024 + 16 + 64));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut l = test_link(4096, 1);
        l.enqueue(0, pkt(1), 84); // 84+16 = 100 ns
        let o = l.serve(SimTime::ZERO).unwrap();
        assert_eq!(l.busy_time(), SimDuration::from_ns(100));
        assert_eq!(l.packets_carried(), 1);
        assert_eq!(l.queue_len(), 0);
        let _ = o;
    }
}
