//! Packets, payloads and flow classes.

use sim_core::{GpuId, PlaneId, SimTime, SlotHandle};
use std::fmt;

/// Traffic class of a packet; determines its virtual channel.
///
/// The CAIS traffic-control mechanism (Sec. III-C-2) places *load* and
/// *reduction* traffic on separate virtual channels with round-robin
/// arbitration to avoid head-of-line blocking between the two asymmetric
/// flows. The remaining classes keep small control packets from queueing
/// behind bulk data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowClass {
    /// Remote load request (small) or its in-switch forwarded form.
    LoadReq,
    /// Remote load response carrying data (downstream heavy).
    LoadResp,
    /// Reduction contribution carrying data (upstream heavy).
    Reduce,
    /// Collective bulk data (ring steps, NVLS push multicast).
    Bulk,
    /// TB-group synchronization and throttling credit messages (empty
    /// packets in the paper; header-only here).
    Sync,
    /// Acks and other small control messages.
    Control,
}

impl FlowClass {
    /// All classes, for exhaustive iteration in tests.
    pub const ALL: [FlowClass; 6] = [
        FlowClass::LoadReq,
        FlowClass::LoadResp,
        FlowClass::Reduce,
        FlowClass::Bulk,
        FlowClass::Sync,
        FlowClass::Control,
    ];

    /// Virtual-channel index for this class.
    ///
    /// With `traffic_control` enabled (full CAIS), loads and reductions get
    /// distinct data VCs; without it (CAIS-Partial and all baselines) every
    /// data class shares one VC, exposing head-of-line blocking.
    pub fn vc(self, traffic_control: bool) -> usize {
        match (self, traffic_control) {
            (FlowClass::Sync | FlowClass::Control | FlowClass::LoadReq, _) => 0,
            (_, false) => 1,
            (FlowClass::LoadResp, true) => 1,
            (FlowClass::Reduce, true) => 2,
            (FlowClass::Bulk, true) => 1,
        }
    }

    /// Number of virtual channels needed for a traffic-control setting.
    pub fn vc_count(traffic_control: bool) -> usize {
        if traffic_control {
            3
        } else {
            2
        }
    }
}

/// Data carried through the fabric.
///
/// Implementors are domain message types (engine-level `Msg`); the fabric
/// only needs the wire size and the flow class.
pub trait Payload: Clone + fmt::Debug {
    /// Payload bytes on the wire (excluding the per-packet header the
    /// fabric adds).
    fn data_bytes(&self) -> u64;
    /// Traffic class, which selects the virtual channel.
    fn class(&self) -> FlowClass;
}

/// Where a packet is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hop {
    /// Ascending a GPU-to-switch link.
    ToSwitch,
    /// Descending a switch-to-GPU link.
    ToGpu,
}

/// A packet in flight.
#[derive(Debug, Clone)]
pub struct Packet<P> {
    /// Unique id within one fabric instance (diagnostics only).
    pub id: u64,
    /// Originating GPU (or the GPU the switch is acting for, when emitted
    /// by switch logic).
    pub src: GpuId,
    /// Destination GPU.
    pub dst: GpuId,
    /// Switch plane this packet traverses (deterministic per address).
    pub plane: PlaneId,
    /// Which half of the route the packet is currently on.
    pub hop: Hop,
    /// Retransmission-state handle into the fabric's fault arena; `None`
    /// until the packet's first drop/corruption, so fault-free traffic
    /// carries no retransmission state at all.
    pub retx: Option<SlotHandle>,
    /// Domain payload.
    pub payload: P,
}

/// A payload delivered to a GPU endpoint.
#[derive(Debug, Clone)]
pub struct Delivery<P> {
    /// Arrival time at the destination GPU.
    pub time: SimTime,
    /// Source GPU recorded in the packet.
    pub src: GpuId,
    /// The receiving GPU.
    pub dst: GpuId,
    /// Plane the packet arrived on.
    pub plane: PlaneId,
    /// The payload.
    pub payload: P,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_mapping_without_traffic_control_shares_data_vc() {
        assert_eq!(FlowClass::LoadResp.vc(false), FlowClass::Reduce.vc(false));
        assert_eq!(FlowClass::Bulk.vc(false), 1);
        assert_eq!(FlowClass::Sync.vc(false), 0);
    }

    #[test]
    fn vc_mapping_with_traffic_control_separates_load_and_reduce() {
        assert_ne!(FlowClass::LoadResp.vc(true), FlowClass::Reduce.vc(true));
    }

    #[test]
    fn vc_indices_within_bounds() {
        for tc in [false, true] {
            let n = FlowClass::vc_count(tc);
            for c in FlowClass::ALL {
                assert!(c.vc(tc) < n, "{c:?} vc out of range for tc={tc}");
            }
        }
    }

    #[test]
    fn control_classes_never_share_with_data() {
        for tc in [false, true] {
            for data in [FlowClass::LoadResp, FlowClass::Reduce, FlowClass::Bulk] {
                assert_ne!(FlowClass::Sync.vc(tc), data.vc(tc));
            }
        }
    }
}
