//! NVSwitch/NVLink interconnect simulator.
//!
//! Models the DGX-H100 scale-up fabric the paper evaluates on: `n_gpus`
//! endpoints, `n_planes` independent NVSwitch planes, and one
//! bidirectional link per (GPU, plane) pair. Each link direction is a
//! serial resource with finite bandwidth, a fixed propagation latency
//! (250 ns in the paper's setup), per-class **virtual channels** and
//! segment-granularity **round-robin arbitration** — the ingredients the
//! paper's traffic-control results (Figs. 15–16) depend on.
//!
//! Switches are *programmable*: a [`SwitchLogic`] implementation observes
//! every packet that reaches a switch and decides what the switch emits.
//! The plain router ([`PureRouter`]) just forwards packets to their
//! destination GPU; the `nvls` crate implements NVLink-SHARP multicast and
//! reduction on top of this hook, and `cais-core` implements the CAIS merge
//! unit and Group Sync Table.
//!
//! # Example: two GPUs exchanging a message through a switch
//!
//! ```
//! use noc_sim::{Fabric, FabricConfig, FlowClass, Payload, PureRouter};
//! use sim_core::{GpuId, PlaneId, SimTime};
//!
//! #[derive(Debug, Clone)]
//! struct Blob(u64);
//! impl Payload for Blob {
//!     fn data_bytes(&self) -> u64 { self.0 }
//!     fn class(&self) -> FlowClass { FlowClass::Bulk }
//! }
//!
//! let cfg = FabricConfig::default_for(2, 1);
//! let mut fabric = Fabric::new(cfg, PureRouter);
//! fabric.inject(SimTime::ZERO, GpuId(0), GpuId(1), PlaneId(0), Blob(4096));
//! fabric.run_to_completion();
//! let deliveries = fabric.drain_deliveries();
//! assert_eq!(deliveries.len(), 1);
//! assert_eq!(deliveries[0].dst, GpuId(1));
//! ```

#![warn(missing_docs)]

pub mod fabric;
pub mod link;
pub mod packet;
pub mod report;

pub use fabric::{Fabric, FabricConfig, PureRouter, SwitchCtx, SwitchLogic};
pub use link::Direction;
pub use packet::{Delivery, FlowClass, Packet, Payload};
pub use report::{FabricReport, LinkUsage, ResilienceCounters};
