//! LADM: locality-aware thread-block scheduling (paper baseline 9).
//!
//! LADM is a locality-centric data/TB placement technique for large
//! multi-die GPUs; it has no collective-communication engine and cannot
//! use in-switch computing. Applied to tensor parallelism this means:
//!
//! * **reductions** degrade to direct partial writes converging on the
//!   shard owner's single ingress link (a `p - 1`-way hotspot);
//! * **gathers** degrade to on-demand remote loads issued by consumer
//!   thread blocks. Because no AllGather ever materializes the gathered
//!   tensor in local HBM and the working set exceeds the L2, operand
//!   rows are re-fetched across output-column waves. LADM's
//!   locality-aware placement recovers part of that reuse — modeled by a
//!   configurable hit rate on re-reads — but the remaining redundant
//!   remote traffic dominates, which is why the paper reports it ~7.6x
//!   behind CAIS;
//! * operators stay strictly barriered.

use cais_engine::{
    lower::GemmLowering, ExecReport, IdAlloc, Msg, PlannedKernel, Program, SimError, Strategy,
    SystemConfig, SystemSim,
};
use gpu_sim::{KernelCost, KernelDesc, MemOp, MemOpKind, Phase, TbDesc};
use llm_workload::{CollKind, Dfg, NodeId, NodeKind};
use noc_sim::{PureRouter, SwitchLogic};
use sim_core::{GpuId, KernelId, TileId};

/// The LADM baseline strategy.
#[derive(Debug)]
pub struct LadmStrategy {
    /// Fraction of re-reads LADM's placement turns into local hits.
    pub locality_hit_rate: f64,
}

impl LadmStrategy {
    /// Default configuration: 25% of redundant re-reads captured locally.
    /// LADM's locality-centric placement targets *intra*-GPU reuse; for
    /// inter-GPU gathered operands that exceed the L2, most column-wave
    /// re-reads still go remote (this is why the paper places LADM ~7.6x
    /// behind CAIS).
    pub fn new() -> LadmStrategy {
        LadmStrategy {
            locality_hit_rate: 0.25,
        }
    }
}

impl Default for LadmStrategy {
    fn default() -> Self {
        LadmStrategy::new()
    }
}

struct Ctx<'a> {
    cfg: &'a SystemConfig,
    low: GemmLowering,
    ids: IdAlloc,
    prog: Program,
    prev: Vec<KernelId>,
}

impl Strategy for LadmStrategy {
    fn name(&self) -> &str {
        "LADM"
    }

    fn lower(&self, dfg: &Dfg, cfg: &SystemConfig) -> Program {
        let mut ctx = Ctx {
            cfg,
            low: GemmLowering::new(KernelCost::new(&cfg.gpu), cfg.tile, dfg.elem_bytes),
            ids: IdAlloc::new(cfg.n_gpus),
            prog: Program::new(),
            prev: Vec::new(),
        };
        for id in dfg.ids() {
            match &dfg.node(id).kind {
                NodeKind::Collective { kind, rows, cols } => {
                    self.lower_collective(&mut ctx, dfg, id, *kind, *rows, *cols)
                }
                other => {
                    let name = dfg.node(id).name.clone();
                    let mut kids = Vec::with_capacity(ctx.cfg.n_gpus);
                    for g in 0..ctx.cfg.n_gpus {
                        let kid = ctx.ids.kernel();
                        let desc = ctx.low.plain_compute_kernel(
                            &mut ctx.ids,
                            kid,
                            &name,
                            GpuId(g as u16),
                            other,
                            ctx.cfg.gpu.sm_count,
                        );
                        ctx.prog.push(PlannedKernel {
                            gpu: GpuId(g as u16),
                            desc,
                            after: ctx.prev.clone(),
                        });
                        kids.push(kid);
                    }
                    ctx.prev = kids;
                }
            }
        }
        let prog = ctx.prog;
        debug_assert!(prog.validate().is_ok());
        prog
    }

    fn switch_logic(&self, _cfg: &SystemConfig) -> Box<dyn SwitchLogic<Msg>> {
        Box::new(PureRouter)
    }

    fn run(&self, cfg: SystemConfig, program: Program) -> Result<ExecReport, SimError> {
        // Monomorphized dispatch: LADM always routes through a plain switch.
        SystemSim::new(cfg, program, PureRouter).run()
    }
}

impl LadmStrategy {
    /// Effective redundancy multiplier for gathers feeding a GEMM with
    /// `n_col_tiles` output column bands: each band wave re-reads the
    /// gathered rows, and only `locality_hit_rate` of re-reads hit
    /// locally.
    fn redundancy(&self, n_col_tiles: u64) -> f64 {
        1.0 + (n_col_tiles.saturating_sub(1) as f64) * (1.0 - self.locality_hit_rate)
    }

    fn lower_collective(
        &self,
        ctx: &mut Ctx,
        dfg: &Dfg,
        id: NodeId,
        kind: CollKind,
        rows: u64,
        cols: u64,
    ) {
        let p = ctx.cfg.n_gpus as u64;
        let elem = dfg.elem_bytes;
        let name = dfg.node(id).name.replace('.', "_");
        let chunk = ctx.cfg.coll_chunk_bytes;
        let shard_bytes = rows * cols * elem / p;

        // Gather redundancy depends on the consuming GEMM's width.
        let consumer_cols = dfg
            .consumers(id)
            .into_iter()
            .find_map(|c| match dfg.node(c).kind {
                NodeKind::Gemm { n, .. } => Some(n.div_ceil(ctx.cfg.tile)),
                _ => None,
            })
            .unwrap_or(1);

        let mut per_gpu_tbs: Vec<Vec<TbDesc>> = (0..ctx.cfg.n_gpus).map(|_| Vec::new()).collect();
        let order = std::cell::Cell::new(0u64);
        let add_reduce = |ctx: &mut Ctx, per_gpu_tbs: &mut Vec<Vec<TbDesc>>| {
            // Direct partial writes: every GPU pushes each shard's chunk
            // to its owner; the owner's ingress link is the hotspot.
            for s in 0..p {
                let owner = GpuId(s as u16);
                for (_off, len) in cais_engine::lower::chunk_ranges(shard_bytes, chunk) {
                    let addr = ctx.ids.addr(owner, len);
                    let tile = ctx.ids.tile();
                    ctx.prog.tile_expected.insert(tile, p as u32);
                    for (g, gpu_tbs) in per_gpu_tbs.iter_mut().enumerate() {
                        let op = if g == owner.index() {
                            MemOp {
                                kind: MemOpKind::RemoteReduce,
                                addr,
                                bytes: len,
                                cais: true, // local accumulate
                                tile: Some(tile),
                            }
                        } else {
                            MemOp {
                                kind: MemOpKind::RemoteWrite,
                                addr,
                                bytes: len,
                                cais: false,
                                tile: Some(tile),
                            }
                        };
                        gpu_tbs.push(TbDesc {
                            id: ctx.ids.tb(),
                            order_key: order.get(),
                            group: None,
                            pre_launch_sync: false,
                            phases: vec![
                                Phase::Compute(sim_core::SimDuration::from_ns(200)),
                                Phase::IssueMem {
                                    ops: vec![op],
                                    wait: false,
                                },
                            ],
                        });
                    }
                    // Owner-side waiter.
                    let wid = ctx.ids.tb();
                    per_gpu_tbs[owner.index()].push(TbDesc {
                        id: wid,
                        order_key: order.get() + 1,
                        group: None,
                        pre_launch_sync: false,
                        phases: vec![Phase::Compute(sim_core::SimDuration::from_ns(100))],
                    });
                    ctx.prog.tb_ready_deps.insert(wid, vec![tile]);
                    order.set(order.get() + 2);
                }
            }
        };
        let add_gather = |ctx: &mut Ctx, per_gpu_tbs: &mut Vec<Vec<TbDesc>>| {
            // On-demand redundant remote reads of every foreign shard.
            let redundancy = self.redundancy(consumer_cols);
            for s in 0..p {
                let owner = GpuId(s as u16);
                let total = (shard_bytes as f64 * redundancy) as u64;
                for (_off, len) in cais_engine::lower::chunk_ranges(total, chunk) {
                    let addr = ctx.ids.addr(owner, len);
                    for (g, gpu_tbs) in per_gpu_tbs.iter_mut().enumerate() {
                        if g == owner.index() {
                            continue;
                        }
                        let tile: Option<TileId> = None; // no reuse capture
                        gpu_tbs.push(TbDesc {
                            id: ctx.ids.tb(),
                            order_key: order.get(),
                            group: None,
                            pre_launch_sync: false,
                            phases: vec![Phase::IssueMem {
                                ops: vec![MemOp {
                                    kind: MemOpKind::RemoteLoad,
                                    addr,
                                    bytes: len,
                                    cais: false,
                                    tile,
                                }],
                                wait: true,
                            }],
                        });
                    }
                    order.set(order.get() + 1);
                }
            }
        };

        match kind {
            CollKind::ReduceScatter => add_reduce(ctx, &mut per_gpu_tbs),
            CollKind::AllGather => add_gather(ctx, &mut per_gpu_tbs),
            CollKind::AllReduce => {
                add_reduce(ctx, &mut per_gpu_tbs);
                add_gather(ctx, &mut per_gpu_tbs);
            }
        }

        let mut kids = Vec::with_capacity(ctx.cfg.n_gpus);
        let after = ctx.prev.clone();
        for (g, tbs) in per_gpu_tbs.into_iter().enumerate() {
            for tb in &tbs {
                ctx.prog.tb_ready_deps.entry(tb.id).or_default();
            }
            let kid = ctx.ids.kernel();
            let mut desc = KernelDesc::new(kid, format!("ladm.{name}"), tbs);
            desc.tbs_auto_ready = false;
            ctx.prog.push(PlannedKernel {
                gpu: GpuId(g as u16),
                desc,
                after: after.clone(),
            });
            kids.push(kid);
        }
        ctx.prev = kids;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_engine::strategy::execute;
    use llm_workload::{sublayer, ModelConfig, SubLayer};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = 4;
        cfg.n_planes = 2;
        cfg.fabric = noc_sim::FabricConfig::default_for(4, 2);
        cfg.coll_chunk_bytes = 128 * 1024;
        cfg.gpu.dispatch_jitter = sim_core::SimDuration::from_us(1);
        cfg.gpu.launch_skew = sim_core::SimDuration::from_us(2);
        cfg.gpu.compute_jitter = sim_core::SimDuration::from_ns(200);
        cfg
    }

    fn small_model() -> ModelConfig {
        ModelConfig {
            hidden: 2048,
            ffn_hidden: 4096,
            heads: 16,
            seq_len: 1024,
            batch: 2,
            ..ModelConfig::llama_7b()
        }
    }

    #[test]
    fn ladm_runs_and_is_much_slower_than_nvls() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        let ladm = execute(&LadmStrategy::new(), &dfg, &cfg).expect("run completes");
        let nvls = execute(&crate::BaselineStrategy::sp_nvls(), &dfg, &cfg).expect("run completes");
        let ratio = ladm.total.as_secs_f64() / nvls.total.as_secs_f64();
        assert!(
            ratio > 1.5,
            "LADM should trail NVLS baselines clearly, got {ratio:.2}x"
        );
    }

    #[test]
    fn redundancy_model() {
        let s = LadmStrategy {
            locality_hit_rate: 0.5,
        };
        assert!((s.redundancy(1) - 1.0).abs() < 1e-12);
        assert!((s.redundancy(11) - 6.0).abs() < 1e-12);
    }
}
