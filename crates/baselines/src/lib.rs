//! The paper's nine comparison systems as execution strategies.
//!
//! | Strategy | Transport | Overlap | Notes |
//! |---|---|---|---|
//! | TP-NVLS | NVLS | none | Basic TP, `multimem.red` AllReduce |
//! | SP-NVLS | NVLS | none | TP+SP, `ld_reduce` RS + `multimem.st` AG |
//! | CoCoNet | ring | chunked producer | software pipelining |
//! | FuseLib | ring | chunked producer, fused kernel | no launch overhead |
//! | T3 | direct writes + ring AG | per-tile producer & consumer | track & trigger |
//! | CoCoNet-NVLS | NVLS | chunked producer | |
//! | FuseLib-NVLS | NVLS | chunked producer, fused | |
//! | T3-NVLS | NVLS (DMA pull) | per-tile | |
//! | LADM | none (on-demand loads) | none | locality-aware TB placement |
//!
//! All of them lower the same [`llm_workload::Dfg`]s the CAIS strategies
//! consume, so every comparison in the harness is apples-to-apples on
//! the same simulated hardware.

#![warn(missing_docs)]

pub mod ladm;
pub mod producers;
pub mod strategy;

pub use ladm::LadmStrategy;
pub use strategy::{BaselineStrategy, Overlap, Transport};
