//! Shared producer/consumer lowering helpers for the baselines.

use cais_engine::{lower::GemmLowering, IdAlloc, PlannedKernel, Program};
use gpu_sim::{KernelDesc, MemOp, MemOpKind, Phase, TbDesc};
use sim_core::{Addr, GpuId, KernelId, SimDuration, TileId};

/// A GEMM kernel lowered with per-output-tile completion signals, so
/// chunk-overlapping collectives (CoCoNet/FuseLib) or per-tile triggers
/// (T3) can consume its output incrementally.
///
/// The returned `tiles[mi][ni]` ids are shared across GPUs: each GPU's
/// own TB marks the tile present on that GPU.
pub struct TiledGemm {
    /// Kernel ids, one per GPU.
    pub kernel_ids: Vec<KernelId>,
    /// Output tile signals `[m_band][n_band]`.
    pub tiles: Vec<Vec<TileId>>,
    /// Band geometry: `(m_tiles, n_tiles)`.
    pub grid: (u64, u64),
}

/// Options for [`lower_tiled_gemm`].
pub struct TiledGemmOpts<'a> {
    /// Kernel display name.
    pub name: &'a str,
    /// Per-GPU GEMM dims.
    pub m: u64,
    /// Output columns.
    pub n: u64,
    /// Contraction dim.
    pub k: u64,
    /// Launch dependencies (same for every GPU).
    pub after: Vec<KernelId>,
    /// Skip launch overhead (FuseLib-style megakernel member).
    pub fused_launch: bool,
    /// Per-tile epilogue: given `(mi, ni, owner-of-band)` returns extra
    /// memory ops the TB issues after computing (T3's track-&-trigger
    /// stores; `None` for plain producers).
    #[allow(clippy::type_complexity)]
    pub epilogue: Option<Box<dyn Fn(u64, u64, usize) -> Vec<MemOp> + 'a>>,
}

/// Lowers a GEMM into one kernel per GPU with tile signals.
pub fn lower_tiled_gemm(
    prog: &mut Program,
    ids: &mut IdAlloc,
    low: &GemmLowering,
    n_gpus: usize,
    opts: TiledGemmOpts<'_>,
) -> TiledGemm {
    let tile = low.tiling.tile;
    let n_mb = opts.m.div_ceil(tile);
    let n_nb = opts.n.div_ceil(tile);
    let mut tiles = Vec::with_capacity(n_mb as usize);
    for _ in 0..n_mb {
        let row: Vec<TileId> = (0..n_nb).map(|_| ids.tile()).collect();
        tiles.push(row);
    }
    let mut kernel_ids = Vec::with_capacity(n_gpus);
    for g in 0..n_gpus {
        let mut tbs = Vec::with_capacity((n_mb * n_nb) as usize);
        for mi in 0..n_mb {
            let m_len = tile.min(opts.m - mi * tile);
            for ni in 0..n_nb {
                let n_len = tile.min(opts.n - ni * tile);
                let mut phases = vec![
                    Phase::Compute(low.gemm_tb_time(m_len, n_len, opts.k)),
                    Phase::SignalTile(tiles[mi as usize][ni as usize]),
                ];
                if let Some(ep) = &opts.epilogue {
                    let ops = ep(mi, ni, g);
                    if !ops.is_empty() {
                        phases.push(Phase::IssueMem { ops, wait: false });
                    }
                }
                tbs.push(TbDesc {
                    id: ids.tb(),
                    order_key: mi * n_nb + ni,
                    group: None,
                    pre_launch_sync: false,
                    phases,
                });
            }
        }
        let kid = ids.kernel();
        let mut desc = KernelDesc::new(kid, opts.name.to_string(), tbs);
        desc.fused_launch = opts.fused_launch;
        prog.push(PlannedKernel {
            gpu: GpuId(g as u16),
            desc,
            after: opts.after.clone(),
        });
        kernel_ids.push(kid);
    }
    TiledGemm {
        kernel_ids,
        tiles,
        grid: (n_mb, n_nb),
    }
}

/// Maps a collective chunk (`shard`, byte offset, byte len over a
/// row-major `[rows, cols]` tensor sharded by rows) to the producer
/// bands whose tiles must be present before the chunk may be injected.
// The parameters are the tensor/chunk geometry, spelled out — a struct
// would only rename them.
#[allow(clippy::too_many_arguments)]
pub fn bands_for_chunk(
    rows: u64,
    cols: u64,
    elem: u64,
    p: u64,
    tile: u64,
    shard: usize,
    off: u64,
    len: u64,
) -> std::ops::Range<u64> {
    let row_bytes = cols * elem;
    let shard_row0 = shard as u64 * rows / p;
    let start_row = shard_row0 + off / row_bytes;
    let end_row = shard_row0 + (off + len).div_ceil(row_bytes);
    let n_mb = rows.div_ceil(tile);
    (start_row / tile)..(end_row.div_ceil(tile)).min(n_mb)
}

/// Builds `input[gpu][global_chunk]` gating from producer tile signals.
pub fn chunk_input_tiles(
    chunks: &[(usize, u64, u64)],
    tiles: &[Vec<TileId>],
    rows: u64,
    cols: u64,
    elem: u64,
    p: usize,
    tile: u64,
) -> Vec<Vec<Vec<TileId>>> {
    let per_chunk: Vec<Vec<TileId>> = chunks
        .iter()
        .map(|&(shard, off, len)| {
            let bands = bands_for_chunk(rows, cols, elem, p as u64, tile, shard, off, len);
            bands
                .flat_map(|mi| tiles[mi as usize].iter().copied())
                .collect()
        })
        .collect();
    (0..p).map(|_| per_chunk.clone()).collect()
}

/// A "consumer GEMM" whose row bands are gated on gather-output tiles
/// (`gates[gpu][mi]` — tile presence is tracked per GPU, so each GPU
/// gates on the tiles that materialize locally), used by T3's AG-GEMM
/// overlap; pass empty `gates` for an ungated grid.
#[allow(clippy::too_many_arguments)]
pub fn lower_gated_gemm(
    prog: &mut Program,
    ids: &mut IdAlloc,
    low: &GemmLowering,
    n_gpus: usize,
    name: &str,
    m: u64,
    n: u64,
    k: u64,
    after: Vec<KernelId>,
    gates: &[Vec<Vec<TileId>>],
) -> Vec<KernelId> {
    let tile = low.tiling.tile;
    let n_mb = m.div_ceil(tile);
    let n_nb = n.div_ceil(tile);
    let mut kernel_ids = Vec::with_capacity(n_gpus);
    for g in 0..n_gpus {
        let mut tbs = Vec::with_capacity((n_mb * n_nb) as usize);
        for mi in 0..n_mb {
            let m_len = tile.min(m - mi * tile);
            for ni in 0..n_nb {
                let n_len = tile.min(n - ni * tile);
                let id = ids.tb();
                tbs.push(TbDesc {
                    id,
                    order_key: mi * n_nb + ni,
                    group: None,
                    pre_launch_sync: false,
                    phases: vec![Phase::Compute(low.gemm_tb_time(m_len, n_len, k))],
                });
                if !gates.is_empty() {
                    prog.tb_ready_deps.insert(id, gates[g][mi as usize].clone());
                }
            }
        }
        let kid = ids.kernel();
        let mut desc = KernelDesc::new(kid, name.to_string(), tbs);
        desc.tbs_auto_ready = gates.is_empty();
        prog.push(PlannedKernel {
            gpu: GpuId(g as u16),
            desc,
            after: after.clone(),
        });
        kernel_ids.push(kid);
    }
    kernel_ids
}

/// Convenience: a direct reduction epilogue for T3-style track & trigger.
/// Each output tile is pushed to its row-shard owner: remote GPUs write
/// a counted contribution, the owner accumulates locally.
#[allow(clippy::too_many_arguments)]
pub fn t3_epilogue(
    addrs: Vec<Vec<Addr>>,
    red_tiles: Vec<Vec<TileId>>,
    tile_bytes: u64,
    n_mb: u64,
    p: u64,
) -> impl Fn(u64, u64, usize) -> Vec<MemOp> {
    move |mi, ni, g| {
        let owner = ((mi * p) / n_mb) as usize;
        let addr = addrs[mi as usize][ni as usize];
        let rtile = red_tiles[mi as usize][ni as usize];
        if g == owner {
            // Local accumulate (no fabric traffic).
            vec![MemOp {
                kind: MemOpKind::RemoteReduce,
                addr,
                bytes: tile_bytes,
                cais: true, // local-accumulate semantics in the engine
                tile: Some(rtile),
            }]
        } else {
            vec![MemOp {
                kind: MemOpKind::RemoteWrite,
                addr,
                bytes: tile_bytes,
                cais: false,
                tile: Some(rtile),
            }]
        }
    }
}

/// Small waiter kernel per GPU gated on `gates[g]` — gives barriered
/// baselines a kernel whose completion means "this GPU's share of the
/// data arrived".
pub fn waiter_kernels(
    prog: &mut Program,
    ids: &mut IdAlloc,
    n_gpus: usize,
    name: &str,
    gates: &[Vec<TileId>],
    after: Vec<KernelId>,
) -> Vec<KernelId> {
    let mut out = Vec::with_capacity(n_gpus);
    for (g, gate) in gates.iter().enumerate().take(n_gpus) {
        let id = ids.tb();
        let tb = TbDesc {
            id,
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::Compute(SimDuration::from_ns(100))],
        };
        prog.tb_ready_deps.insert(id, gate.clone());
        let kid = ids.kernel();
        let mut desc = KernelDesc::new(kid, format!("{name}.wait"), vec![tb]);
        desc.tbs_auto_ready = false;
        desc.fused_launch = true;
        prog.push(PlannedKernel {
            gpu: GpuId(g as u16),
            desc,
            after: after.clone(),
        });
        out.push(kid);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_engine::SystemConfig;
    use gpu_sim::KernelCost;

    fn low() -> GemmLowering {
        let cfg = SystemConfig::dgx_h100();
        GemmLowering::new(KernelCost::new(&cfg.gpu), 128, 2)
    }

    #[test]
    fn tiled_gemm_signals_every_tile() {
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(2);
        let g = lower_tiled_gemm(
            &mut prog,
            &mut ids,
            &low(),
            2,
            TiledGemmOpts {
                name: "gemm",
                m: 256,
                n: 384,
                k: 512,
                after: vec![],
                fused_launch: false,
                epilogue: None,
            },
        );
        assert_eq!(g.grid, (2, 3));
        assert_eq!(g.tiles.len(), 2);
        assert_eq!(g.tiles[0].len(), 3);
        assert_eq!(prog.kernels.len(), 2);
        assert_eq!(prog.kernels[0].desc.tbs.len(), 6);
        assert!(prog.validate().is_ok());
    }

    #[test]
    fn bands_for_chunk_maps_rows() {
        // 1024 rows x 512 cols x 2B, p=4 => shard = 256 rows = 256KiB.
        // Chunk at shard 1, offset 0, 64KiB => rows 256..320 => bands 2..3
        // (tile=128).
        let r = bands_for_chunk(1024, 512, 2, 4, 128, 1, 0, 64 * 1024);
        assert_eq!(r, 2..3);
        // Chunk crossing a band boundary.
        let r = bands_for_chunk(1024, 512, 2, 4, 128, 0, 96 * 1024, 64 * 1024);
        // rows 96..160 => bands 0..2
        assert_eq!(r, 0..2);
    }

    #[test]
    fn chunk_input_tiles_cover_chunks() {
        let chunks = vec![(0usize, 0u64, 64 * 1024u64), (1, 0, 64 * 1024)];
        let tiles: Vec<Vec<TileId>> = (0..8).map(|i| vec![TileId(i)]).collect();
        let input = chunk_input_tiles(&chunks, &tiles, 1024, 512, 2, 4, 128);
        assert_eq!(input.len(), 4);
        assert_eq!(input[0].len(), 2);
        assert!(!input[0][0].is_empty());
    }

    #[test]
    fn gated_gemm_registers_ready_deps() {
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(2);
        let gates: Vec<Vec<Vec<TileId>>> = (0..2)
            .map(|g| (0..2).map(|i| vec![TileId(g * 2 + i)]).collect())
            .collect();
        let kids = lower_gated_gemm(
            &mut prog,
            &mut ids,
            &low(),
            2,
            "gemm",
            256,
            128,
            128,
            vec![],
            &gates,
        );
        assert_eq!(kids.len(), 2);
        assert!(!prog.kernels[0].desc.tbs_auto_ready);
        assert_eq!(prog.tb_ready_deps.len(), 2 * 2);
    }
}
