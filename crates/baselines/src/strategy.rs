//! The configurable baseline strategy covering TP-NVLS, SP-NVLS,
//! CoCoNet, FuseLib, T3 and their NVLS-enhanced variants.

use crate::producers::{
    chunk_input_tiles, lower_gated_gemm, lower_tiled_gemm, t3_epilogue, waiter_kernels, TiledGemm,
    TiledGemmOpts,
};
use cais_engine::{
    lower::GemmLowering, ExecReport, IdAlloc, Msg, PlannedKernel, Program, SimError, Strategy,
    SystemConfig, SystemSim,
};
use gpu_sim::KernelCost;
use llm_workload::{CollKind, Dfg, NodeId, NodeKind};
use noc_sim::{PureRouter, SwitchLogic};
use nvls::{
    nvls_all_gather, nvls_all_reduce, nvls_reduce_scatter, ring_all_gather, ring_all_reduce,
    ring_reduce_scatter, CollOutput, InputTiles, NvlsLogic,
};
use sim_core::{GpuId, KernelId, TileId};

/// How collectives travel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// GPU-driven ring schedules through a plain routing switch.
    Ring,
    /// NVLink-SHARP in-switch collectives.
    Nvls,
}

/// How much compute/communication overlap the scheduler extracts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overlap {
    /// None: strict kernel phases with global barriers (TP-NVLS, SP-NVLS).
    None,
    /// CoCoNet/FuseLib: the collective consumes the *producer* GEMM's
    /// output chunk-by-chunk; the consumer still waits for the whole
    /// collective. `fused` additionally removes kernel-launch overhead.
    Chunked {
        /// FuseLib-style single fused kernel (no launch overhead).
        fused: bool,
    },
    /// T3: per-tile track-&-trigger. GEMM→RS becomes direct in-flight
    /// stores as tiles complete; AG output gates the consumer GEMM's row
    /// bands (our AG-GEMM extension of T3, per the paper's methodology).
    Tile,
}

/// A baseline execution strategy.
///
/// ```no_run
/// use cais_baselines::BaselineStrategy;
/// use cais_engine::{strategy::execute, SystemConfig};
/// use llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};
///
/// let cfg = SystemConfig::dgx_h100();
/// let dfg = transformer_layer(
///     &ModelConfig::llama_7b(), cfg.tp(), TpMode::BasicTp, Pass::Forward);
/// let report = execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg).expect("run completes");
/// println!("TP-NVLS layer time: {}", report.total);
/// ```
#[derive(Debug)]
pub struct BaselineStrategy {
    name: String,
    transport: Transport,
    overlap: Overlap,
}

impl BaselineStrategy {
    /// Basic TP with NVLS collectives (run on a Basic-TP graph).
    pub fn tp_nvls() -> BaselineStrategy {
        BaselineStrategy {
            name: "TP-NVLS".into(),
            transport: Transport::Nvls,
            overlap: Overlap::None,
        }
    }

    /// TP with sequence parallelism and NVLS collectives (run on an SP
    /// graph).
    pub fn sp_nvls() -> BaselineStrategy {
        BaselineStrategy {
            name: "SP-NVLS".into(),
            transport: Transport::Nvls,
            overlap: Overlap::None,
        }
    }

    /// CoCoNet: ring collectives, chunked producer overlap.
    pub fn coconet() -> BaselineStrategy {
        BaselineStrategy {
            name: "CoCoNet".into(),
            transport: Transport::Ring,
            overlap: Overlap::Chunked { fused: false },
        }
    }

    /// FuseLib: ring collectives fused into the producer kernel.
    pub fn fuselib() -> BaselineStrategy {
        BaselineStrategy {
            name: "FuseLib".into(),
            transport: Transport::Ring,
            overlap: Overlap::Chunked { fused: true },
        }
    }

    /// T3: hardware track-&-trigger fine-grained overlap, no NVLS.
    pub fn t3() -> BaselineStrategy {
        BaselineStrategy {
            name: "T3".into(),
            transport: Transport::Ring,
            overlap: Overlap::Tile,
        }
    }

    /// CoCoNet with NVLS collectives.
    pub fn coconet_nvls() -> BaselineStrategy {
        BaselineStrategy {
            name: "CoCoNet-NVLS".into(),
            transport: Transport::Nvls,
            overlap: Overlap::Chunked { fused: false },
        }
    }

    /// FuseLib with NVLS collectives.
    pub fn fuselib_nvls() -> BaselineStrategy {
        BaselineStrategy {
            name: "FuseLib-NVLS".into(),
            transport: Transport::Nvls,
            overlap: Overlap::Chunked { fused: true },
        }
    }

    /// T3 with DMA-based NVLS reductions.
    pub fn t3_nvls() -> BaselineStrategy {
        BaselineStrategy {
            name: "T3-NVLS".into(),
            transport: Transport::Nvls,
            overlap: Overlap::Tile,
        }
    }
}

struct Ctx<'a> {
    cfg: &'a SystemConfig,
    cost: KernelCost,
    low: GemmLowering,
    ids: IdAlloc,
    prog: Program,
    /// Previous stage's kernels (global barrier set).
    prev: Vec<KernelId>,
    /// Tile signals of the previous node when it was a tiled GEMM
    /// (chunk/tile overlap input), plus its logical dims and the launch
    /// dependencies the producer itself used (so an overlapping
    /// collective can launch alongside it).
    prev_gemm: Option<(TiledGemm, u64, u64)>,
    prev_gemm_after: Vec<KernelId>,
    /// Output tiles of the previous collective (gates the consumer for
    /// T3-style AG-GEMM overlap): `gates[gpu][band]` over `rows`.
    prev_coll_gates: Option<(Vec<Vec<Vec<TileId>>>, u64)>,
}

impl Strategy for BaselineStrategy {
    fn name(&self) -> &str {
        &self.name
    }

    fn lower(&self, dfg: &Dfg, cfg: &SystemConfig) -> Program {
        let cost = KernelCost::new(&cfg.gpu);
        let mut ctx = Ctx {
            cfg,
            low: GemmLowering::new(KernelCost::new(&cfg.gpu), cfg.tile, dfg.elem_bytes),
            cost,
            ids: IdAlloc::new(cfg.n_gpus),
            prog: Program::new(),
            prev: Vec::new(),
            prev_gemm: None,
            prev_gemm_after: Vec::new(),
            prev_coll_gates: None,
        };
        for id in dfg.ids() {
            match &dfg.node(id).kind {
                NodeKind::Collective { kind, rows, cols } => {
                    self.lower_collective(&mut ctx, dfg, id, *kind, *rows, *cols)
                }
                _ => self.lower_compute(&mut ctx, dfg, id),
            }
        }
        let prog = ctx.prog;
        debug_assert!(prog.validate().is_ok());
        prog
    }

    fn switch_logic(&self, cfg: &SystemConfig) -> Box<dyn SwitchLogic<Msg>> {
        match self.transport {
            Transport::Ring => Box::new(PureRouter),
            Transport::Nvls => Box::new(NvlsLogic::new(cfg.n_gpus)),
        }
    }

    fn run(&self, cfg: SystemConfig, program: Program) -> Result<ExecReport, SimError> {
        // Concrete logic types so the fabric's per-packet dispatch
        // monomorphizes instead of going through `Box<dyn SwitchLogic>`.
        match self.transport {
            Transport::Ring => SystemSim::new(cfg, program, PureRouter).run(),
            Transport::Nvls => {
                let logic = NvlsLogic::new(cfg.n_gpus);
                SystemSim::new(cfg, program, logic).run()
            }
        }
    }
}

impl BaselineStrategy {
    fn lower_compute(&self, ctx: &mut Ctx, dfg: &Dfg, id: NodeId) {
        let node = dfg.node(id);
        let overlapping = !matches!(self.overlap, Overlap::None);
        match &node.kind {
            NodeKind::Gemm { m, n, k } => {
                // Does a collective consume this GEMM directly? Then emit
                // tile signals (chunk/tile overlap) or T3 epilogues.
                let feeds_collective = dfg
                    .consumers(id)
                    .into_iter()
                    .any(|c| matches!(dfg.node(c).kind, NodeKind::Collective { .. }));
                // Is this GEMM consuming a just-gathered tensor (T3
                // AG-GEMM overlap)?
                let gates = ctx.prev_coll_gates.take();
                if let Some((gates, _rows)) = gates.filter(|_| self.overlap == Overlap::Tile) {
                    // Band gating carries the true data dependencies; an
                    // empty `after` lets early bands start while the tail
                    // of the gather is still in flight.
                    let after = Vec::new();
                    let kids = lower_gated_gemm(
                        &mut ctx.prog,
                        &mut ctx.ids,
                        &ctx.low,
                        ctx.cfg.n_gpus,
                        &format!("gemm.{}", node.name),
                        *m,
                        *n,
                        *k,
                        after,
                        &gates,
                    );
                    ctx.prev = kids;
                    ctx.prev_gemm = None;
                    return;
                }
                if overlapping && feeds_collective {
                    let after = ctx.prev.clone();
                    ctx.prev_gemm_after = after.clone();
                    let fused = matches!(self.overlap, Overlap::Chunked { fused: true });
                    let tg = lower_tiled_gemm(
                        &mut ctx.prog,
                        &mut ctx.ids,
                        &ctx.low,
                        ctx.cfg.n_gpus,
                        TiledGemmOpts {
                            name: &format!("gemm.{}", node.name),
                            m: *m,
                            n: *n,
                            k: *k,
                            after,
                            fused_launch: fused,
                            epilogue: None,
                        },
                    );
                    ctx.prev = tg.kernel_ids.clone();
                    ctx.prev_gemm = Some((tg, *m, *n));
                    return;
                }
                self.plain_node(ctx, dfg, id);
            }
            _ => self.plain_node(ctx, dfg, id),
        }
    }

    fn plain_node(&self, ctx: &mut Ctx, dfg: &Dfg, id: NodeId) {
        let node = dfg.node(id);
        let after = ctx.prev.clone();
        let mut kids = Vec::with_capacity(ctx.cfg.n_gpus);
        for g in 0..ctx.cfg.n_gpus {
            let kid = ctx.ids.kernel();
            let desc = ctx.low.plain_compute_kernel(
                &mut ctx.ids,
                kid,
                &node.name,
                GpuId(g as u16),
                &node.kind,
                ctx.cfg.gpu.sm_count,
            );
            ctx.prog.push(PlannedKernel {
                gpu: GpuId(g as u16),
                desc,
                after: after.clone(),
            });
            kids.push(kid);
        }
        ctx.prev = kids;
        ctx.prev_gemm = None;
        ctx.prev_coll_gates = None;
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_collective(
        &self,
        ctx: &mut Ctx,
        dfg: &Dfg,
        id: NodeId,
        kind: CollKind,
        rows: u64,
        cols: u64,
    ) {
        let elem = dfg.elem_bytes;
        let bytes_full = rows * cols * elem;
        let name = dfg.node(id).name.replace('.', "_");

        // T3-style fused GEMM→RS: direct stores from the producer's tile
        // epilogues replace the collective kernel entirely.
        if self.overlap == Overlap::Tile
            && matches!(kind, CollKind::ReduceScatter | CollKind::AllReduce)
            && ctx.prev_gemm.is_some()
        {
            self.lower_t3_reduce(ctx, kind, rows, cols, elem, &name);
            return;
        }

        // Chunk-level producer gating for CoCoNet/FuseLib.
        let input: Option<InputTiles> = match (&self.overlap, &ctx.prev_gemm) {
            (Overlap::Chunked { .. }, Some((tg, m, n))) => {
                let chunks =
                    nvls::ring::global_chunks(bytes_full, ctx.cfg.n_gpus, ctx.cfg.coll_chunk_bytes);
                Some(chunk_input_tiles(
                    &chunks,
                    &tg.tiles,
                    *m,
                    *n,
                    elem,
                    ctx.cfg.n_gpus,
                    ctx.cfg.tile,
                ))
            }
            _ => None,
        };

        // With chunk gating the collective launches alongside the
        // producer (tiles pace it); otherwise it waits for the barrier.
        let after: Vec<KernelId> = if input.is_some() {
            ctx.prev_gemm_after.clone()
        } else {
            ctx.prev.clone()
        };
        let out: CollOutput = match (self.transport, kind) {
            (Transport::Ring, CollKind::AllGather) => ring_all_gather(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
            (Transport::Ring, CollKind::ReduceScatter) => ring_reduce_scatter(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
            (Transport::Ring, CollKind::AllReduce) => ring_all_reduce(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
            (Transport::Nvls, CollKind::AllGather) => nvls_all_gather(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
            (Transport::Nvls, CollKind::ReduceScatter) => nvls_reduce_scatter(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
            (Transport::Nvls, CollKind::AllReduce) => nvls_all_reduce(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &name,
                bytes_full,
                &after,
                input.as_ref(),
            ),
        };

        // T3 consumes AllGather output per band; everyone else barriers.
        if self.overlap == Overlap::Tile && kind == CollKind::AllGather {
            let gates = self.band_gates_from_chunks(ctx, &out, rows, cols, elem);
            ctx.prev_coll_gates = Some((gates, rows));
        } else {
            ctx.prev_coll_gates = None;
        }
        // Downstream consumers barrier on the collective; when it ran
        // alongside the producer, keep the producer in the barrier set
        // too (its kernels may outlive the last gated chunk injection).
        let mut next_prev = out.kernel_ids;
        if input.is_some() {
            next_prev.extend(ctx.prev.iter().copied());
        }
        ctx.prev = next_prev;
        ctx.prev_gemm = None;
    }

    /// Converts a collective's per-chunk arrival tiles into per-GPU,
    /// per-row-band gates for a downstream GEMM: GPU `g`'s band `mi`
    /// waits for the arrival (on `g`) of every chunk overlapping the
    /// band. Chunks local to `g` from the start have no arrival tile and
    /// impose no wait.
    fn band_gates_from_chunks(
        &self,
        ctx: &Ctx,
        out: &CollOutput,
        rows: u64,
        cols: u64,
        elem: u64,
    ) -> Vec<Vec<Vec<TileId>>> {
        let p = ctx.cfg.n_gpus as u64;
        let tile = ctx.cfg.tile;
        let n_mb = rows.div_ceil(tile);
        let row_bytes = cols * elem;
        let mut gates: Vec<Vec<Vec<TileId>>> =
            vec![vec![Vec::new(); n_mb as usize]; ctx.cfg.n_gpus];
        for (gidx, &(shard, off, len)) in out.chunks.iter().enumerate() {
            let shard_row0 = shard as u64 * rows / p;
            let start = shard_row0 + off / row_bytes;
            let end = shard_row0 + (off + len).div_ceil(row_bytes);
            for mi in (start / tile)..(end.div_ceil(tile)).min(n_mb) {
                for (g, arrival) in out.chunk_arrivals[gidx].iter().enumerate() {
                    if let Some(t) = arrival {
                        gates[g][mi as usize].push(*t);
                    }
                }
            }
        }
        for per_gpu in &mut gates {
            for band in per_gpu {
                band.sort_unstable();
                band.dedup();
            }
        }
        gates
    }

    fn lower_t3_reduce(
        &self,
        ctx: &mut Ctx,
        kind: CollKind,
        rows: u64,
        cols: u64,
        elem: u64,
        name: &str,
    ) {
        let p = ctx.cfg.n_gpus as u64;
        let tile = ctx.cfg.tile;
        let n_mb = rows.div_ceil(tile);
        let n_nb = cols.div_ceil(tile);
        let tile_bytes = tile * tile * elem;
        let (tg, m, n) = ctx.prev_gemm.take().expect("caller checked");
        // Re-lower the producer with a track-&-trigger epilogue: remove is
        // impossible, so instead we *replace* by noting the producer was
        // already emitted without an epilogue... To keep lowering
        // single-pass, the producer GEMM feeding a T3 reduction is
        // re-emitted here with its epilogue, and the original tiled GEMM
        // kernels double as the "trigger tracking" producer. In practice
        // the paper's T3 writes tiles as they complete; we model that by
        // attaching per-tile writes gated on the producer's tile signals.
        let _ = (m, n);
        let mut addrs = Vec::with_capacity(n_mb as usize);
        let mut red_tiles = Vec::with_capacity(n_mb as usize);
        for mi in 0..n_mb {
            let owner = GpuId(((mi * p) / n_mb) as u16);
            let mut arow = Vec::with_capacity(n_nb as usize);
            let mut trow = Vec::with_capacity(n_nb as usize);
            for _ni in 0..n_nb {
                arow.push(ctx.ids.addr(owner, tile_bytes));
                let t = ctx.ids.tile();
                ctx.prog.tile_expected.insert(t, p as u32);
                trow.push(t);
            }
            addrs.push(arow);
            red_tiles.push(trow);
        }
        // Trigger kernel per GPU: one TB per output tile, gated on the
        // producer's tile signal, firing the direct store.
        let ep = t3_epilogue(addrs, red_tiles.clone(), tile_bytes, n_mb, p);
        let mut trigger_kids = Vec::with_capacity(ctx.cfg.n_gpus);
        for g in 0..ctx.cfg.n_gpus {
            let mut tbs = Vec::new();
            for mi in 0..n_mb {
                for ni in 0..n_nb {
                    let id = ctx.ids.tb();
                    tbs.push(gpu_sim::TbDesc {
                        id,
                        order_key: mi * n_nb + ni,
                        group: None,
                        pre_launch_sync: false,
                        phases: vec![
                            gpu_sim::Phase::Compute(sim_core::SimDuration::from_ns(100)),
                            gpu_sim::Phase::IssueMem {
                                ops: ep(mi, ni, g),
                                wait: false,
                            },
                        ],
                    });
                    ctx.prog
                        .tb_ready_deps
                        .insert(id, vec![tg.tiles[mi as usize][ni as usize]]);
                }
            }
            let kid = ctx.ids.kernel();
            let mut desc = gpu_sim::KernelDesc::new(kid, format!("t3.{name}"), tbs);
            desc.tbs_auto_ready = false;
            desc.fused_launch = true;
            ctx.prog.push(PlannedKernel {
                gpu: GpuId(g as u16),
                desc,
                after: ctx.prev.clone(),
            });
            trigger_kids.push(kid);
        }
        // Waiters: the reduced shard is ready at its owner.
        let mut owner_gates: Vec<Vec<TileId>> = vec![Vec::new(); ctx.cfg.n_gpus];
        for mi in 0..n_mb {
            let owner = ((mi * p) / n_mb) as usize;
            owner_gates[owner].extend(red_tiles[mi as usize].iter().copied());
        }
        let wait_kids = waiter_kernels(
            &mut ctx.prog,
            &mut ctx.ids,
            ctx.cfg.n_gpus,
            &format!("t3.{name}"),
            &owner_gates,
            trigger_kids.clone(),
        );
        // AllReduce under T3: the gather half still runs as a ring AG.
        if kind == CollKind::AllReduce {
            let out = ring_all_gather(
                &mut ctx.prog,
                &mut ctx.ids,
                ctx.cfg,
                &ctx.cost,
                &format!("{name}_ag"),
                rows * cols * elem,
                &wait_kids,
                None,
            );
            ctx.prev = out.kernel_ids;
        } else {
            ctx.prev = wait_kids;
        }
        ctx.prev_coll_gates = None;
        ctx.prev_gemm = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_engine::strategy::execute;
    use llm_workload::{sublayer, transformer_layer, ModelConfig, Pass, SubLayer, TpMode};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = 4;
        cfg.n_planes = 2;
        cfg.fabric = noc_sim::FabricConfig::default_for(4, 2);
        cfg.coll_chunk_bytes = 128 * 1024;
        // Keep scheduling noise well below the comparison signal at this
        // reduced scale.
        cfg.gpu.dispatch_jitter = sim_core::SimDuration::from_us(1);
        cfg.gpu.launch_skew = sim_core::SimDuration::from_us(2);
        cfg.gpu.compute_jitter = sim_core::SimDuration::from_ns(200);
        cfg
    }

    fn small_model() -> ModelConfig {
        ModelConfig {
            hidden: 2048,
            ffn_hidden: 4096,
            heads: 16,
            seq_len: 1024,
            batch: 2,
            ..ModelConfig::llama_7b()
        }
    }

    #[test]
    fn all_baselines_run_a_sublayer() {
        let cfg = small_cfg();
        let dfg = sublayer(&small_model(), 4, SubLayer::L1);
        for s in [
            BaselineStrategy::sp_nvls(),
            BaselineStrategy::coconet(),
            BaselineStrategy::fuselib(),
            BaselineStrategy::t3(),
            BaselineStrategy::coconet_nvls(),
            BaselineStrategy::fuselib_nvls(),
            BaselineStrategy::t3_nvls(),
        ] {
            let report = execute(&s, &dfg, &cfg).expect("run completes");
            assert!(
                report.total > sim_core::SimDuration::from_us(10),
                "{} too fast: {}",
                s.name(),
                report.total
            );
        }
    }

    #[test]
    fn tp_nvls_runs_a_basic_layer() {
        let cfg = small_cfg();
        let dfg = transformer_layer(&small_model(), 4, TpMode::BasicTp, Pass::Forward);
        let report = execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg).expect("run completes");
        assert!(report.stat("nvls.reductions").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn sp_nvls_runs_an_sp_layer() {
        let cfg = small_cfg();
        let dfg = transformer_layer(&small_model(), 4, TpMode::SeqPar, Pass::Forward);
        let report = execute(&BaselineStrategy::sp_nvls(), &dfg, &cfg).expect("run completes");
        assert!(report.stat("nvls.multicasts").unwrap_or(0.0) > 0.0);
        assert!(report.stat("nvls.pulls").unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn nvls_variants_beat_ring_variants_on_allreduce() {
        // NVLS halves AllReduce volume (push-reduce + multicast vs. ring's
        // 2(p-1)/p in each direction), so the win shows on Basic TP. On
        // RS+AG sub-layers the bottleneck direction moves the same bytes
        // either way, and NVLS's advantage is latency, not volume.
        let cfg = small_cfg();
        let dfg = transformer_layer(&small_model(), 4, TpMode::BasicTp, Pass::Forward);
        let ring = execute(&BaselineStrategy::coconet(), &dfg, &cfg).expect("run completes");
        let nvls = execute(&BaselineStrategy::coconet_nvls(), &dfg, &cfg).expect("run completes");
        assert!(
            nvls.total < ring.total,
            "NVLS {} should beat ring {}",
            nvls.total,
            ring.total
        );
    }

    #[test]
    fn overlap_beats_no_overlap() {
        let cfg = small_cfg();
        let dfg = transformer_layer(&small_model(), 4, TpMode::BasicTp, Pass::Forward);
        let barriered = execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg).expect("run completes");
        let overlapped =
            execute(&BaselineStrategy::coconet_nvls(), &dfg, &cfg).expect("run completes");
        assert!(
            overlapped.total < barriered.total,
            "overlap {} vs barrier {}",
            overlapped.total,
            barriered.total
        );
    }
}
