//! The lowered program representation executed by [`SystemSim`](crate::SystemSim).

use gpu_sim::KernelDesc;
use sim_core::{GpuId, GroupId, KernelId, TbId, TileId};
use std::collections::{HashMap, HashSet};

/// A kernel instance scheduled on one GPU with launch dependencies.
#[derive(Debug, Clone)]
pub struct PlannedKernel {
    /// GPU this kernel runs on.
    pub gpu: GpuId,
    /// The kernel (grid of TBs).
    pub desc: KernelDesc,
    /// Kernel ids (on any GPU) that must complete before launch. Listing
    /// all per-GPU instances of an operator models a global barrier;
    /// listing only the same-GPU instance models a local dependency.
    pub after: Vec<KernelId>,
}

/// A fully lowered multi-GPU program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All kernel instances.
    pub kernels: Vec<PlannedKernel>,
    /// Fine-grained readiness: a TB (in a kernel with
    /// `tbs_auto_ready = false`) becomes dispatchable only when these
    /// tiles are present on its GPU.
    pub tb_ready_deps: HashMap<TbId, Vec<TileId>>,
    /// Reduction tiles needing more than one contribution before they
    /// count as present (e.g. `p` partial sums).
    pub tile_expected: HashMap<TileId, u32>,
    /// Expected sync participants per TB group (defaults to the GPU count
    /// when absent).
    pub group_expected: HashMap<GroupId, u32>,
}

/// Program validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// Two kernels share an id.
    DuplicateKernel(KernelId),
    /// Two TBs share an id.
    DuplicateTb(TbId),
    /// A dependency references an unknown kernel.
    UnknownDep(KernelId),
    /// The `after` relation has a cycle.
    DependencyCycle,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::DuplicateKernel(k) => write!(f, "duplicate kernel id {k}"),
            ProgramError::DuplicateTb(tb) => write!(f, "duplicate thread block id {tb}"),
            ProgramError::UnknownDep(k) => write!(f, "dependency on unknown kernel {k}"),
            ProgramError::DependencyCycle => write!(f, "kernel dependency cycle"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Adds a kernel instance; returns its id.
    pub fn push(&mut self, kernel: PlannedKernel) -> KernelId {
        let id = kernel.desc.id;
        self.kernels.push(kernel);
        id
    }

    /// Total TBs across all kernels.
    pub fn total_tbs(&self) -> usize {
        self.kernels.iter().map(|k| k.desc.tbs.len()).sum()
    }

    /// Checks id uniqueness and dependency sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn validate(&self) -> Result<(), ProgramError> {
        let mut kids = HashSet::new();
        let mut tbs = HashSet::new();
        for k in &self.kernels {
            if !kids.insert(k.desc.id) {
                return Err(ProgramError::DuplicateKernel(k.desc.id));
            }
            for tb in &k.desc.tbs {
                if !tbs.insert(tb.id) {
                    return Err(ProgramError::DuplicateTb(tb.id));
                }
            }
        }
        for k in &self.kernels {
            for dep in &k.after {
                if !kids.contains(dep) {
                    return Err(ProgramError::UnknownDep(*dep));
                }
            }
        }
        // Kahn's algorithm over the `after` relation.
        let index: HashMap<KernelId, usize> = self
            .kernels
            .iter()
            .enumerate()
            .map(|(i, k)| (k.desc.id, i))
            .collect();
        let mut indeg: Vec<usize> = self.kernels.iter().map(|k| k.after.len()).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.kernels.len()];
        for (i, k) in self.kernels.iter().enumerate() {
            for dep in &k.after {
                children[index[dep]].push(i);
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &c in &children[i] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen != self.kernels.len() {
            return Err(ProgramError::DependencyCycle);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::TbDesc;
    use sim_core::SimDuration;

    fn kernel(id: u32, tb0: u64, after: Vec<KernelId>) -> PlannedKernel {
        PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(
                KernelId(id),
                format!("k{id}"),
                vec![TbDesc::compute_only(TbId(tb0), 0, SimDuration::from_us(1))],
            ),
            after,
        }
    }

    #[test]
    fn valid_program() {
        let mut p = Program::new();
        let a = p.push(kernel(0, 0, vec![]));
        p.push(kernel(1, 1, vec![a]));
        assert!(p.validate().is_ok());
        assert_eq!(p.total_tbs(), 2);
    }

    #[test]
    fn duplicate_kernel_rejected() {
        let mut p = Program::new();
        p.push(kernel(0, 0, vec![]));
        p.push(kernel(0, 1, vec![]));
        assert_eq!(
            p.validate(),
            Err(ProgramError::DuplicateKernel(KernelId(0)))
        );
    }

    #[test]
    fn duplicate_tb_rejected() {
        let mut p = Program::new();
        p.push(kernel(0, 5, vec![]));
        p.push(kernel(1, 5, vec![]));
        assert_eq!(p.validate(), Err(ProgramError::DuplicateTb(TbId(5))));
    }

    #[test]
    fn unknown_dep_rejected() {
        let mut p = Program::new();
        p.push(kernel(0, 0, vec![KernelId(9)]));
        assert_eq!(p.validate(), Err(ProgramError::UnknownDep(KernelId(9))));
    }

    #[test]
    fn cycle_rejected() {
        let mut p = Program::new();
        p.push(kernel(0, 0, vec![KernelId(1)]));
        p.push(kernel(1, 1, vec![KernelId(0)]));
        assert_eq!(p.validate(), Err(ProgramError::DependencyCycle));
    }
}
