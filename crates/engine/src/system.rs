//! The multi-GPU system co-simulator.

use crate::config::SystemConfig;
use crate::error::{DeadlockDiag, SimError};
use crate::msg::Msg;
use crate::program::Program;
use crate::report::{ExecReport, KernelSpan};
use gpu_sim::{GpuConfig, GpuEffect, GpuSim, MemOp, MemOpKind, SyncKind};
use noc_sim::{Delivery, Fabric, SwitchLogic};
use sim_core::profile::{prof_scope, Subsystem};
use sim_core::{
    Addr, AuditPhase, AuditProbe, DenseMap, DenseSet, FastHash, GpuId, GroupId, KernelId, PlaneId,
    SimDuration, SimTime, TbId, TileId,
};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

#[derive(Debug, Default)]
struct TileEntry {
    present: bool,
    fetching: bool,
    contribs: u32,
    /// Inline storage: almost every tile has at most a couple of waiting
    /// TBs, so the common case never heap-allocates.
    resume_waiters: sim_core::SmallVec<TbId, 4>,
    /// TBs whose readiness counter decrements when this tile lands.
    ready_waiters: sim_core::SmallVec<TbId, 4>,
}

#[derive(Debug, Default)]
struct ThrottleState {
    outstanding: usize,
    queue: VecDeque<(GpuId, GpuId, Msg)>,
}

/// Executes a [`Program`] on a configured system with a given switch logic.
///
/// Construct with [`SystemSim::new`], then call [`SystemSim::run`].
///
/// Generic over the switch-logic type so the per-packet callback
/// monomorphizes to a direct call. Passing a concrete logic (possibly
/// boxed, e.g. `Box<PureRouter>`) compiles a dedicated fabric with no
/// virtual dispatch on the packet path; passing `Box<dyn SwitchLogic<Msg>>`
/// keeps the old fully-dynamic behaviour for callers that select logic at
/// runtime.
pub struct SystemSim<L: SwitchLogic<Msg>> {
    cfg: SystemConfig,
    gpus: Vec<GpuSim>,
    fabric: Fabric<Msg, L>,
    now: SimTime,

    pending_kernels: Vec<Option<crate::program::PlannedKernel>>,
    dep_remaining: Vec<usize>,
    children: DenseMap<KernelId, Vec<usize>>,
    kernels_remaining: usize,
    kernel_spans: BTreeMap<KernelId, KernelSpan>,

    tb_gpu: DenseMap<TbId, GpuId>,
    tb_blocked: DenseMap<TbId, usize>,
    tb_ready_remaining: DenseMap<TbId, usize>,
    ready_pending: DenseSet<TbId>,
    launched_tbs: DenseSet<TbId>,
    tiles: Vec<DenseMap<TileId, TileEntry>>,
    tile_expected: DenseMap<TileId, u32>,

    /// Pre-access-blocked TBs, flat-indexed `gpu * n_groups + group`.
    preaccess_blocked: Vec<Vec<TbId>>,
    n_groups: usize,

    /// Per-plane CAIS credit state, flat-indexed `gpu * n_planes + plane`.
    throttle: Vec<ThrottleState>,
    inflight_cais_loads: HashSet<(GpuId, Addr), FastHash>,

    deduped_fetches: u64,
    semantic_contribs: u64,

    /// Fabric event count at the last cadence audit check.
    last_audit_events: u64,

    /// Recycled drain buffers: effects/deliveries are swapped out of the
    /// producers into these instead of `mem::take`-ing a fresh `Vec`
    /// every cycle of the effect fixpoint.
    scratch_effects: Vec<(SimTime, GpuEffect)>,
    scratch_deliveries: Vec<Delivery<Msg>>,
}

impl<L: SwitchLogic<Msg>> std::fmt::Debug for SystemSim<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSim")
            .field("now", &self.now)
            .field("kernels_remaining", &self.kernels_remaining)
            .finish_non_exhaustive()
    }
}

impl<L: SwitchLogic<Msg>> SystemSim<L> {
    /// Builds a system ready to run `program` with `logic` installed in
    /// every switch plane.
    ///
    /// # Panics
    ///
    /// Panics if the program fails validation.
    pub fn new(cfg: SystemConfig, program: Program, logic: L) -> SystemSim<L> {
        program
            .validate()
            .unwrap_or_else(|e| panic!("invalid program: {e}"));

        // One shared config for the whole system; only a straggler GPU
        // (different compute scale) gets its own copy.
        let shared_cfg: Arc<GpuConfig> = Arc::new(cfg.gpu.clone());
        let gpus: Vec<GpuSim> = (0..cfg.n_gpus)
            .map(|i| {
                let gpu_cfg = match &cfg.faults.straggler {
                    Some(s) if s.gpu == i => {
                        let mut c = cfg.gpu.clone();
                        c.compute_scale = s.compute_factor;
                        Arc::new(c)
                    }
                    _ => Arc::clone(&shared_cfg),
                };
                GpuSim::new(gpu_cfg, cfg.seed ^ (0x9E37 + i as u64 * 0x1234_5678))
            })
            .collect();
        let mut fabric = Fabric::new(cfg.fabric_config(), logic);
        if cfg.audit.enabled {
            fabric.enable_audit_ring(cfg.audit.ring_capacity);
        }

        // Size the dense tables from one program scan; IDs are allocated
        // densely from zero by `IdAlloc`, so `max + 1` is the table extent
        // (the tables still auto-grow if a later ID appears).
        let n_tbs = program
            .kernels
            .iter()
            .flat_map(|k| k.desc.tbs.iter())
            .map(|tb| tb.id.index() + 1)
            .max()
            .unwrap_or(0);
        let n_kernels = program
            .kernels
            .iter()
            .map(|k| k.desc.id.index() + 1)
            .max()
            .unwrap_or(0);
        let n_groups = program
            .kernels
            .iter()
            .flat_map(|k| k.desc.tbs.iter())
            .filter_map(|tb| tb.group)
            .map(|g| g.index() + 1)
            .max()
            .unwrap_or(0);

        let mut tb_gpu: DenseMap<TbId, GpuId> = DenseMap::with_capacity(n_tbs);
        for k in &program.kernels {
            for tb in &k.desc.tbs {
                tb_gpu.insert(tb.id, k.gpu);
            }
        }

        let mut index: DenseMap<KernelId, usize> = DenseMap::with_capacity(n_kernels);
        for (i, k) in program.kernels.iter().enumerate() {
            index.insert(k.desc.id, i);
        }
        let mut children: DenseMap<KernelId, Vec<usize>> = DenseMap::with_capacity(n_kernels);
        let dep_remaining: Vec<usize> = program.kernels.iter().map(|k| k.after.len()).collect();
        for (i, k) in program.kernels.iter().enumerate() {
            for dep in &k.after {
                debug_assert!(index.contains_key(*dep));
                children.get_or_default(*dep).push(i);
            }
        }

        let mut tiles: Vec<DenseMap<TileId, TileEntry>> =
            (0..cfg.n_gpus).map(|_| DenseMap::new()).collect();
        let mut tb_ready_remaining: DenseMap<TbId, usize> = DenseMap::with_capacity(n_tbs);
        let mut ready_pending: DenseSet<TbId> = DenseSet::with_capacity(n_tbs);
        // Deterministic registration order: waiter lists (and therefore
        // FIFO tie-breaks downstream) must not depend on hash order.
        let mut ready_deps: Vec<(&TbId, &Vec<TileId>)> = program.tb_ready_deps.iter().collect();
        ready_deps.sort_by_key(|(tb, _)| **tb);
        for (tb, dep_tiles) in ready_deps {
            let gpu = *tb_gpu
                .get(*tb)
                .unwrap_or_else(|| panic!("ready dep for unknown TB {tb}"));
            if dep_tiles.is_empty() {
                // Dependency-gated kernel but this TB has no prerequisites:
                // it is ready the moment its kernel launches.
                ready_pending.insert(*tb);
                continue;
            }
            tb_ready_remaining.insert(*tb, dep_tiles.len());
            for tile in dep_tiles {
                tiles[gpu.index()]
                    .get_or_default(*tile)
                    .ready_waiters
                    .push(*tb);
            }
        }

        let mut tile_expected: DenseMap<TileId, u32> = DenseMap::new();
        for (tile, expected) in &program.tile_expected {
            tile_expected.insert(*tile, *expected);
        }

        let kernels_remaining = program.kernels.len();
        let throttle = (0..cfg.n_gpus * cfg.n_planes)
            .map(|_| ThrottleState::default())
            .collect();

        SystemSim {
            gpus,
            fabric,
            now: SimTime::ZERO,
            pending_kernels: program.kernels.into_iter().map(Some).collect(),
            dep_remaining,
            children,
            kernels_remaining,
            kernel_spans: BTreeMap::new(),
            tb_gpu,
            tb_blocked: DenseMap::with_capacity(n_tbs),
            tb_ready_remaining,
            ready_pending,
            launched_tbs: DenseSet::with_capacity(n_tbs),
            tiles,
            tile_expected,
            preaccess_blocked: vec![Vec::new(); cfg.n_gpus * n_groups],
            n_groups,
            throttle,
            inflight_cais_loads: HashSet::default(),
            deduped_fetches: 0,
            semantic_contribs: 0,
            last_audit_events: 0,
            scratch_effects: Vec::new(),
            scratch_deliveries: Vec::new(),
            cfg,
        }
    }

    /// Test-only access to the fabric, for audit corruption-injection
    /// tests that deliberately skew a tally before running.
    #[doc(hidden)]
    pub fn fabric_mut(&mut self) -> &mut Fabric<Msg, L> {
        &mut self.fabric
    }

    /// Runs the program to completion and full network quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] when no pending events remain while
    /// work does, [`SimError::DeadlineExceeded`] when simulated time passes
    /// the configured deadline, and [`SimError::FaultBudgetExhausted`] when
    /// fault injection force-delivered packets past their retransmit
    /// budget.
    pub fn run(mut self) -> Result<ExecReport, SimError> {
        let _prof = prof_scope(Subsystem::EngineLoop);
        let roots: Vec<usize> = self
            .dep_remaining
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        for i in roots {
            self.launch_kernel(SimTime::ZERO, i);
        }
        loop {
            {
                let _p = prof_scope(Subsystem::DrainEffects);
                self.drain_effects();
            }
            // One scan finds both the earliest pending time and which
            // components own it, so the advance pass below touches only
            // the components that actually have work at `t`. The global
            // minimum guarantees any due component's next event is at
            // exactly `t`, and GPU handlers cannot enqueue into other
            // components mid-advance (cross-component traffic flows
            // through drained effects), so skipping the rest is exact.
            let mut t: Option<SimTime> = None;
            let mut gpu_due: u64 = 0;
            let masked = self.gpus.len() <= 64;
            for (i, gpu) in self.gpus.iter().enumerate() {
                let Some(gt) = gpu.next_time() else { continue };
                match t {
                    Some(cur) if gt > cur => {}
                    Some(cur) if gt == cur => gpu_due |= 1u64.checked_shl(i as u32).unwrap_or(0),
                    _ => {
                        t = Some(gt);
                        gpu_due = 1u64.checked_shl(i as u32).unwrap_or(0);
                    }
                }
            }
            let mut fabric_due = false;
            if let Some(ft) = self.fabric.next_time() {
                match t {
                    Some(cur) if ft > cur => {}
                    Some(cur) if ft == cur => fabric_due = true,
                    _ => {
                        t = Some(ft);
                        gpu_due = 0;
                        fabric_due = true;
                    }
                }
            }
            let Some(t) = t else { break };
            if t > self.cfg.deadline {
                return Err(SimError::DeadlineExceeded {
                    deadline: self.cfg.deadline,
                    now: self.now,
                    kernels_remaining: self.kernels_remaining,
                });
            }
            {
                let _p = prof_scope(Subsystem::GpuAdvance);
                if masked {
                    let mut mask = gpu_due;
                    while mask != 0 {
                        let i = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        self.gpus[i].advance(t);
                    }
                } else {
                    // >64 GPUs overflows the due bitmask; fall back to
                    // advancing everyone (correct, just does idle peeks).
                    for gpu in &mut self.gpus {
                        gpu.advance(t);
                    }
                }
            }
            if fabric_due || !masked {
                let _p = prof_scope(Subsystem::FabricAdvance);
                self.fabric.advance(t);
            }
            self.now = t;
            if self.cfg.audit.enabled {
                let done = self.fabric.events_processed();
                if done - self.last_audit_events >= self.cfg.audit.cadence_events {
                    self.last_audit_events = done;
                    self.audit_check(AuditPhase::Cadence)?;
                }
            }
        }
        self.finish()
    }

    /// Runs one audit pass over every subsystem; a violated ledger becomes
    /// [`SimError::AuditViolation`] with the full forensic report.
    fn audit_check(&self, phase: AuditPhase) -> Result<(), SimError> {
        let mut probe = AuditProbe::new(phase);
        self.fabric.audit_probe(&mut probe);
        self.engine_audit_probe(&mut probe);
        if probe.has_violations() {
            return Err(SimError::AuditViolation(Box::new(
                probe.into_report(self.now, self.fabric.audit_recent_events()),
            )));
        }
        Ok(())
    }

    /// Engine-owned counters and quiescence requirements: blocked TBs,
    /// in-flight CAIS loads, throttle credit state, pre-access waiters.
    fn engine_audit_probe(&self, probe: &mut AuditProbe) {
        let outstanding: usize = self.throttle.iter().map(|t| t.outstanding).sum();
        let queued: usize = self.throttle.iter().map(|t| t.queue.len()).sum();
        let preaccess: usize = self.preaccess_blocked.iter().map(|v| v.len()).sum();
        probe.counter("engine.blocked_tbs", self.tb_blocked.len() as u64);
        probe.counter(
            "engine.inflight_cais_loads",
            self.inflight_cais_loads.len() as u64,
        );
        probe.counter("engine.throttle_outstanding", outstanding as u64);
        probe.counter("engine.throttle_queued", queued as u64);
        probe.counter("engine.preaccess_blocked", preaccess as u64);
        probe.counter("engine.kernels_remaining", self.kernels_remaining as u64);
        probe.counter("engine.semantic_contribs", self.semantic_contribs);
        if probe.is_quiescence() {
            probe.require_zero(
                "engine",
                "quiescence: no TBs still blocked on tiles or loads",
                self.tb_blocked.len() as u64,
            );
            probe.require_zero(
                "engine",
                "quiescence: no CAIS loads still in flight",
                self.inflight_cais_loads.len() as u64,
            );
            probe.require_zero(
                "engine",
                "quiescence: no requests queued behind throttle credits",
                queued as u64,
            );
            probe.require_zero(
                "engine",
                "quiescence: no outstanding throttle credits",
                outstanding as u64,
            );
            probe.require_zero(
                "engine",
                "quiescence: no TBs blocked on pre-access sync",
                preaccess as u64,
            );
        }
    }

    /// Builds the waits-for edge list attached to deadlock diagnostics:
    /// which TB waits on which tile (and whether a fetch is outstanding),
    /// which GPU/plane pairs have requests stuck behind throttle credits,
    /// and which GPU/group pairs are blocked on pre-access sync.
    fn waits_for_edges(&self) -> Vec<String> {
        const MAX_EDGES: usize = 16;
        let mut edges = Vec::new();
        'tiles: for (gi, tiles) in self.tiles.iter().enumerate() {
            for (tile, entry) in tiles.iter() {
                if entry.present {
                    continue;
                }
                for &tb in entry.resume_waiters.iter() {
                    let state = if entry.fetching {
                        "fetch in flight"
                    } else {
                        "no fetch outstanding"
                    };
                    edges.push(format!("{tb} -> {tile}@g{gi} ({state})"));
                    if edges.len() >= MAX_EDGES {
                        break 'tiles;
                    }
                }
            }
        }
        for (i, st) in self.throttle.iter().enumerate() {
            if st.queue.is_empty() || edges.len() >= MAX_EDGES {
                continue;
            }
            let g = i / self.cfg.n_planes;
            let p = i % self.cfg.n_planes;
            edges.push(format!(
                "g{g} -> plane{p} ({} queued behind {} outstanding credits)",
                st.queue.len(),
                st.outstanding
            ));
        }
        let n_groups = self.n_groups.max(1);
        for (i, tbs) in self.preaccess_blocked.iter().enumerate() {
            if tbs.is_empty() || edges.len() >= MAX_EDGES {
                continue;
            }
            let g = i / n_groups;
            let grp = i % n_groups;
            edges.push(format!(
                "g{g} -> group{grp} ({} TBs awaiting pre-access release)",
                tbs.len()
            ));
        }
        edges
    }

    fn drain_effects(&mut self) {
        let mut effects = std::mem::take(&mut self.scratch_effects);
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        loop {
            let mut any = false;
            for gi in 0..self.gpus.len() {
                if !self.gpus[gi].has_effects() {
                    continue;
                }
                self.gpus[gi].drain_effects_into(&mut effects);
                any = true;
                for (t, e) in effects.drain(..) {
                    self.handle_gpu_effect(t, GpuId(gi as u16), e);
                }
            }
            if self.fabric.has_deliveries() {
                self.fabric.drain_deliveries_into(&mut deliveries);
                any = true;
                for d in deliveries.drain(..) {
                    self.handle_delivery(d);
                }
            }
            if !any {
                break;
            }
        }
        self.scratch_effects = effects;
        self.scratch_deliveries = deliveries;
    }

    fn launch_kernel(&mut self, now: SimTime, idx: usize) {
        let planned = self.pending_kernels[idx]
            .take()
            .expect("kernel launched twice");
        let kid = planned.desc.id;
        self.kernel_spans.insert(
            kid,
            KernelSpan {
                // Interned symbol: a Copy, not a per-launch heap clone.
                name: planned.desc.name,
                gpu: planned.gpu,
                start: now,
                end: now,
            },
        );
        for tb in &planned.desc.tbs {
            self.launched_tbs.insert(tb.id);
        }
        let gpu = planned.gpu;
        let ready_now: Vec<TbId> = planned
            .desc
            .tbs
            .iter()
            .map(|tb| tb.id)
            .filter(|id| self.ready_pending.remove(*id))
            .collect();
        self.gpus[gpu.index()].launch_kernel(now, planned.desc);
        for tb in ready_now {
            self.gpus[gpu.index()].make_tb_ready(now, tb);
        }
    }

    // ---- tile state ----------------------------------------------------

    fn tile_entry(&mut self, gpu: GpuId, tile: TileId) -> &mut TileEntry {
        self.tiles[gpu.index()].get_or_default(tile)
    }

    fn mark_tile_present(&mut self, now: SimTime, gpu: GpuId, tile: TileId) {
        let entry = self.tile_entry(gpu, tile);
        if entry.present {
            return;
        }
        entry.present = true;
        let waiters = std::mem::take(&mut entry.resume_waiters);
        let ready = std::mem::take(&mut entry.ready_waiters);
        for &tb in waiters.iter() {
            self.dec_blocked(now, tb);
        }
        for &tb in ready.iter() {
            let rem = self
                .tb_ready_remaining
                .get_mut(tb)
                .expect("ready waiter without counter");
            *rem -= 1;
            if *rem == 0 {
                if self.launched_tbs.contains(tb) {
                    let g = *self.tb_gpu.get(tb).expect("waiter TB without a GPU");
                    self.gpus[g.index()].make_tb_ready(now, tb);
                } else {
                    self.ready_pending.insert(tb);
                }
            }
        }
    }

    fn add_contrib(&mut self, now: SimTime, gpu: GpuId, tile: TileId, n: u32) {
        let expected = self.tile_expected.get(tile).copied().unwrap_or(1);
        self.semantic_contribs += n as u64;
        let entry = self.tile_entry(gpu, tile);
        entry.contribs += n;
        debug_assert!(
            entry.contribs <= expected,
            "tile {tile} on {gpu} got {} contributions, expected {expected}",
            entry.contribs
        );
        if entry.contribs >= expected {
            self.mark_tile_present(now, gpu, tile);
        }
    }

    fn dec_blocked(&mut self, now: SimTime, tb: TbId) {
        let count = self
            .tb_blocked
            .get_mut(tb)
            .unwrap_or_else(|| panic!("TB {tb} not blocked"));
        *count -= 1;
        if *count == 0 {
            self.tb_blocked.remove(tb);
            let g = *self.tb_gpu.get(tb).expect("blocked TB without a GPU");
            self.gpus[g.index()].resume_tb(now, tb);
        }
    }

    // ---- fabric injection ----------------------------------------------

    fn plane_for(&self, msg: &Msg) -> PlaneId {
        match msg {
            Msg::SyncReq { group, .. } | Msg::SyncRel { group, .. } => {
                PlaneId((group.0 % self.cfg.n_planes as u32) as u16)
            }
            m => m
                .addr()
                .map(|a| a.plane(self.cfg.n_planes))
                .unwrap_or(PlaneId(0)),
        }
    }

    fn inject(&mut self, now: SimTime, src: GpuId, dst: GpuId, msg: Msg) {
        let plane = self.plane_for(&msg);
        self.fabric.inject(now, src, dst, plane, msg);
    }

    /// Injects a CAIS-tagged request, honoring per-plane throttle credits.
    fn inject_cais(&mut self, now: SimTime, src: GpuId, dst: GpuId, msg: Msg) {
        let Some(limit) = self.cfg.cais_credits_per_plane else {
            self.inject(now, src, dst, msg);
            return;
        };
        let plane = self.plane_for(&msg);
        let st = &mut self.throttle[src.index() * self.cfg.n_planes + plane.index()];
        if st.outstanding < limit {
            st.outstanding += 1;
            self.fabric.inject(now, src, dst, plane, msg);
        } else {
            st.queue.push_back((src, dst, msg));
        }
    }

    fn return_credits(&mut self, now: SimTime, gpu: GpuId, plane: PlaneId, mut n: u32) {
        if self.cfg.cais_credits_per_plane.is_none() {
            return;
        }
        let limit = self.cfg.cais_credits_per_plane.expect("checked");
        loop {
            let st = &mut self.throttle[gpu.index() * self.cfg.n_planes + plane.index()];
            st.outstanding = st.outstanding.saturating_sub(n as usize);
            n = 0;
            if st.outstanding >= limit {
                break;
            }
            let Some((src, dst, msg)) = st.queue.pop_front() else {
                break;
            };
            st.outstanding += 1;
            self.fabric.inject(now, src, dst, plane, msg);
        }
    }

    // ---- GPU effects ----------------------------------------------------

    fn handle_gpu_effect(&mut self, t: SimTime, gpu: GpuId, effect: GpuEffect) {
        match effect {
            GpuEffect::MemIssued { tb, ops, blocking } => {
                self.handle_mem_issued(t, gpu, tb, ops, blocking)
            }
            GpuEffect::TileReady { tile } => self.mark_tile_present(t, gpu, tile),
            GpuEffect::GroupSyncRequest { tb, group, kind } => {
                let kind_raw = match kind {
                    SyncKind::PreLaunch => 0,
                    SyncKind::PreAccess => 1,
                };
                if kind == SyncKind::PreAccess {
                    self.preaccess_blocked[gpu.index() * self.n_groups + group.index()].push(tb);
                }
                self.inject(
                    t,
                    gpu,
                    gpu,
                    Msg::SyncReq {
                        group,
                        gpu,
                        kind: kind_raw,
                    },
                );
            }
            GpuEffect::NeedTiles { tb, tiles } => {
                let mut missing = 0;
                for tile in tiles {
                    let entry = self.tile_entry(gpu, tile);
                    if !entry.present {
                        missing += 1;
                        entry.resume_waiters.push(tb);
                    }
                }
                if missing == 0 {
                    self.gpus[gpu.index()].resume_tb(t, tb);
                } else {
                    *self.tb_blocked.get_or_default(tb) += missing;
                }
            }
            GpuEffect::TbCompleted { .. } => {}
            GpuEffect::KernelCompleted { kernel } => {
                if let Some(span) = self.kernel_spans.get_mut(&kernel) {
                    span.end = t;
                }
                self.kernels_remaining -= 1;
                if let Some(children) = self.children.remove(kernel) {
                    for idx in children {
                        self.dep_remaining[idx] -= 1;
                        if self.dep_remaining[idx] == 0 {
                            self.launch_kernel(t, idx);
                        }
                    }
                }
            }
        }
    }

    fn handle_mem_issued(
        &mut self,
        t: SimTime,
        gpu: GpuId,
        tb: TbId,
        ops: Vec<MemOp>,
        blocking: bool,
    ) {
        let mut outstanding = 0usize;
        for op in ops {
            let home = op.addr.home_gpu();
            match op.kind {
                MemOpKind::RemoteLoad => {
                    if home == gpu {
                        // Local read: covered by the roofline compute time;
                        // just materialize the tile.
                        if let Some(tile) = op.tile {
                            self.mark_tile_present(t, gpu, tile);
                        }
                        continue;
                    }
                    if let Some(tile) = op.tile {
                        let entry = self.tile_entry(gpu, tile);
                        if entry.present {
                            continue;
                        }
                        if blocking {
                            outstanding += 1;
                            entry.resume_waiters.push(tb);
                        }
                        if entry.fetching {
                            // L2 capture: another TB already fetching.
                            self.deduped_fetches += 1;
                            continue;
                        }
                        entry.fetching = true;
                        let msg = Msg::LoadReq {
                            addr: op.addr,
                            bytes: op.bytes,
                            requester: gpu,
                            tb,
                            tile: Some(tile),
                            cais: op.cais,
                        };
                        if op.cais {
                            self.inflight_cais_loads.insert((gpu, op.addr));
                            self.inject_cais(t, gpu, home, msg);
                        } else {
                            self.inject(t, gpu, home, msg);
                        }
                    } else {
                        if blocking {
                            outstanding += 1;
                        }
                        let msg = Msg::LoadReq {
                            addr: op.addr,
                            bytes: op.bytes,
                            requester: gpu,
                            tb,
                            tile: None,
                            cais: op.cais,
                        };
                        if op.cais {
                            self.inflight_cais_loads.insert((gpu, op.addr));
                            self.inject_cais(t, gpu, home, msg);
                        } else {
                            self.inject(t, gpu, home, msg);
                        }
                    }
                }
                MemOpKind::RemoteReduce => {
                    // CAIS `red.cais` to a locally-homed address is a plain
                    // HBM accumulate; NVLS `multimem.red` (cais = false)
                    // always traverses the switch, which owns the
                    // reduce-and-multicast semantics.
                    if home == gpu && op.cais {
                        if let Some(tile) = op.tile {
                            self.add_contrib(t, gpu, tile, 1);
                        }
                        continue;
                    }
                    let msg = Msg::Reduce {
                        addr: op.addr,
                        bytes: op.bytes,
                        src: gpu,
                        contribs: 1,
                        tile: op.tile,
                        cais: op.cais,
                    };
                    if op.cais {
                        self.inject_cais(t, gpu, home, msg);
                    } else {
                        self.inject(t, gpu, home, msg);
                    }
                }
                MemOpKind::RemoteWrite => {
                    if home == gpu {
                        if let Some(tile) = op.tile {
                            self.mark_tile_present(t, gpu, tile);
                        }
                        continue;
                    }
                    self.inject(
                        t,
                        gpu,
                        home,
                        Msg::Write {
                            addr: op.addr,
                            bytes: op.bytes,
                            src: gpu,
                            tile: op.tile,
                            contrib: false,
                        },
                    );
                }
                MemOpKind::MulticastStore => {
                    // Push once; the switch logic replicates to the other
                    // GPUs (each marks `tile` present on delivery).
                    self.inject(
                        t,
                        gpu,
                        home,
                        Msg::MulticastStore {
                            addr: op.addr,
                            bytes: op.bytes,
                            src: gpu,
                            tile: op.tile,
                        },
                    );
                }
                MemOpKind::LoadReduce => {
                    if blocking {
                        outstanding += 1;
                        // Completion is signaled through the tile; for
                        // tile-less ops the LoadResp credits the TB
                        // directly in `handle_delivery`.
                        if let Some(tile) = op.tile {
                            self.tile_entry(gpu, tile).resume_waiters.push(tb);
                        }
                    }
                    self.inject(
                        t,
                        gpu,
                        home,
                        Msg::LoadReduceReq {
                            addr: op.addr,
                            bytes: op.bytes,
                            requester: gpu,
                            tb,
                            tile: op.tile,
                        },
                    );
                }
            }
        }
        if blocking && outstanding == 0 {
            self.gpus[gpu.index()].resume_tb(t, tb);
        } else if blocking {
            *self.tb_blocked.get_or_default(tb) += outstanding;
        }
    }

    // ---- fabric deliveries ----------------------------------------------

    fn handle_delivery(&mut self, d: Delivery<Msg>) {
        let Delivery {
            time: t,
            dst: gpu,
            plane,
            payload,
            ..
        } = d;
        match payload {
            Msg::LoadReq {
                addr,
                bytes,
                requester,
                tb,
                tile,
                ..
            } => {
                // We are the home GPU: the memory system answers after its
                // read latency; no SM involvement.
                debug_assert_eq!(addr.home_gpu(), gpu, "load routed to wrong GPU");
                let resp = Msg::LoadResp {
                    addr,
                    bytes,
                    requester,
                    tb,
                    tile,
                };
                let at = t + self.cfg.mem_read_latency;
                let plane = self.plane_for(&resp);
                self.fabric.inject(at, gpu, requester, plane, resp);
            }
            Msg::LoadResp { addr, tb, tile, .. } => {
                if self.inflight_cais_loads.remove(&(gpu, addr)) {
                    self.return_credits(t, gpu, plane, 1);
                }
                match tile {
                    Some(tile) => self.mark_tile_present(t, gpu, tile),
                    None => self.dec_blocked(t, tb),
                }
            }
            Msg::Reduce { tile, contribs, .. } => {
                // A (possibly switch-merged) reduction contribution reached
                // the home GPU.
                if let Some(tile) = tile {
                    self.add_contrib(t, gpu, tile, contribs);
                }
            }
            Msg::Write { tile, contrib, .. } => {
                if let Some(tile) = tile {
                    if contrib {
                        self.add_contrib(t, gpu, tile, 1);
                    } else {
                        self.mark_tile_present(t, gpu, tile);
                    }
                }
            }
            Msg::MulticastStore { tile, .. } => {
                if let Some(tile) = tile {
                    self.mark_tile_present(t, gpu, tile);
                }
            }
            Msg::FetchReq {
                addr,
                bytes,
                session,
                ..
            } => {
                // Supply our partial to the switch's reduction session.
                let resp = Msg::FetchResp {
                    addr,
                    bytes,
                    src: gpu,
                    session,
                };
                let at = t + self.cfg.mem_read_latency;
                self.fabric.inject(at, gpu, gpu, plane, resp);
            }
            Msg::FetchResp { .. } => {
                panic!("FetchResp must be consumed by switch logic, not a GPU");
            }
            Msg::LoadReduceReq { .. } => {
                panic!("LoadReduceReq reached a GPU; switch logic must implement it");
            }
            Msg::SyncReq { .. } => {
                panic!("SyncReq reached a GPU; switch logic must implement the sync table");
            }
            Msg::SyncRel { group, kind } => match kind {
                0 => self.gpus[gpu.index()].release_group(t, group),
                _ => {
                    let slot = gpu.index() * self.n_groups + group.index();
                    let waiters = self
                        .preaccess_blocked
                        .get_mut(slot)
                        .map(std::mem::take)
                        .unwrap_or_default();
                    for tb in waiters {
                        self.gpus[gpu.index()].resume_tb(t, tb);
                    }
                }
            },
            Msg::CreditGrant { credits } => {
                self.return_credits(t, gpu, plane, credits);
            }
        }
    }

    // ---- teardown --------------------------------------------------------

    fn finish(self) -> Result<ExecReport, SimError> {
        // Fault pressure first: a run that only completed because packets
        // were force-delivered past their retransmit budget is not a valid
        // result even if every kernel finished.
        if let Some(c) = self.fabric.resilience_counters() {
            if c.budget_exhausted > 0 {
                return Err(SimError::FaultBudgetExhausted {
                    exhausted: c.budget_exhausted,
                    drops: c.drops,
                    retries: c.retries,
                });
            }
        }
        if self.kernels_remaining > 0 {
            let incomplete: Vec<String> = self
                .pending_kernels
                .iter()
                .flatten()
                .map(|k| format!("unlaunched {} on {}", k.desc.name, k.gpu))
                .chain(self.kernel_spans.iter().filter_map(|(id, s)| {
                    // Spans whose end never moved past start and whose
                    // kernel still has live TBs are the stuck ones.
                    let live = self.gpus[s.gpu.index()]
                        .stuck_tbs()
                        .iter()
                        .any(|tb| self.tb_gpu.get(*tb) == Some(&s.gpu));
                    (live).then(|| format!("incomplete {id} {} on {}", s.name, s.gpu))
                }))
                .take(12)
                .collect();
            let n_groups = self.n_groups.max(1);
            let preaccess: Vec<String> = self
                .preaccess_blocked
                .iter()
                .enumerate()
                .filter(|(_, tbs)| !tbs.is_empty())
                .map(|(i, tbs)| {
                    let g = GpuId((i / n_groups) as u16);
                    let grp = GroupId((i % n_groups) as u32);
                    format!("{g}/{grp}:{}", tbs.len())
                })
                .take(8)
                .collect();
            return Err(SimError::Deadlock(Box::new(DeadlockDiag {
                kernels_remaining: self.kernels_remaining,
                engine_blocked_tbs: self.tb_blocked.len(),
                preaccess_waiters: preaccess,
                throttle_queued: self.throttle.iter().map(|t| t.queue.len()).sum(),
                kernels: incomplete,
                blocked_tbs: Vec::new(),
                waits_for: self.waits_for_edges(),
                recent_events: self.fabric.audit_recent_events(),
            })));
        }
        if !self.tb_blocked.is_empty() {
            return Err(SimError::Deadlock(Box::new(DeadlockDiag {
                kernels_remaining: 0,
                engine_blocked_tbs: self.tb_blocked.len(),
                preaccess_waiters: Vec::new(),
                throttle_queued: self.throttle.iter().map(|t| t.queue.len()).sum(),
                kernels: Vec::new(),
                blocked_tbs: self
                    .tb_blocked
                    .keys()
                    .take(16)
                    .map(|tb| tb.to_string())
                    .collect(),
                waits_for: self.waits_for_edges(),
                recent_events: self.fabric.audit_recent_events(),
            })));
        }
        // Mandatory end-of-run quiescence verification: every queue
        // drained, every slab empty, no orphaned retransmission state.
        // Runs on the success path precisely so that silent bookkeeping
        // leaks cannot survive a "passing" run.
        if self.cfg.audit.enabled {
            self.audit_check(AuditPhase::Quiescence)?;
        }
        let total = self.now.since(SimTime::ZERO);
        let logic_stats = self.fabric.logic().stats();
        let mean_request_spread = logic_stats
            .iter()
            .find(|(k, _)| k == "cais.mean_spread_us")
            .map(|(_, v)| SimDuration::from_ps((*v * 1e6) as u64));
        let events_processed = self.gpus.iter().map(|g| g.events_processed()).sum::<u64>()
            + self.fabric.events_processed();
        let queue_peak = self
            .gpus
            .iter()
            .map(|g| g.queue_peak())
            .chain(std::iter::once(self.fabric.queue_peak()))
            .max()
            .unwrap_or(0);
        Ok(ExecReport {
            total,
            gpu_occupancy: self.gpus.iter().map(|g| g.occupancy(total)).collect(),
            fabric: self.fabric.report(total),
            kernel_spans: self.kernel_spans,
            logic_stats,
            deduped_fetches: self.deduped_fetches,
            semantic_contribs: self.semantic_contribs,
            mean_request_spread,
            events_processed,
            queue_peak,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::IdAlloc;
    use crate::program::PlannedKernel;
    use gpu_sim::{KernelDesc, Phase, TbDesc};
    use noc_sim::PureRouter;

    fn quiet_cfg(n_gpus: usize) -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = n_gpus;
        cfg.n_planes = 1;
        cfg.fabric = noc_sim::FabricConfig::default_for(n_gpus, 1);
        cfg.gpu.dispatch_jitter = SimDuration::ZERO;
        cfg.gpu.launch_skew = SimDuration::ZERO;
        cfg.gpu.compute_jitter = SimDuration::ZERO;
        cfg
    }

    fn run(cfg: SystemConfig, program: Program) -> ExecReport {
        SystemSim::new(cfg, program, Box::new(PureRouter))
            .run()
            .expect("test program must complete")
    }

    #[test]
    fn remote_load_blocks_until_response() {
        let cfg = quiet_cfg(2);
        let mut ids = IdAlloc::new(2);
        let addr = ids.addr(GpuId(1), 4096);
        let tb = TbDesc {
            id: ids.tb(),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::IssueMem {
                    ops: vec![MemOp {
                        kind: MemOpKind::RemoteLoad,
                        addr,
                        bytes: 4096,
                        cais: false,
                        tile: None,
                    }],
                    wait: true,
                },
                Phase::Compute(SimDuration::from_us(1)),
            ],
        };
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
            after: vec![],
        });
        let report = run(cfg, p);
        // 3us launch + round trip (~1us links + serialization) + mem
        // latency + 1us compute: must exceed 5us and be well under 100us.
        assert!(
            report.total > SimDuration::from_us(5),
            "total {}",
            report.total
        );
        assert!(report.total < SimDuration::from_us(100));
    }

    #[test]
    fn tile_dedup_avoids_duplicate_fetches() {
        let cfg = quiet_cfg(2);
        let mut ids = IdAlloc::new(2);
        let addr = ids.addr(GpuId(1), 4096);
        let tile = ids.tile();
        let mk_tb = |ids: &mut IdAlloc, key| TbDesc {
            id: ids.tb(),
            order_key: key,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::IssueMem {
                ops: vec![MemOp {
                    kind: MemOpKind::RemoteLoad,
                    addr,
                    bytes: 4096,
                    cais: false,
                    tile: Some(tile),
                }],
                wait: true,
            }],
        };
        let tbs = vec![mk_tb(&mut ids, 0), mk_tb(&mut ids, 1), mk_tb(&mut ids, 2)];
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "loaders", vec![]),
            after: vec![],
        });
        p.kernels[0].desc.tbs = tbs;
        let report = run(cfg, p);
        assert_eq!(report.deduped_fetches, 2, "two of three loads deduped");
    }

    #[test]
    fn reduce_contributions_complete_consumer_tile() {
        // Two producer GPUs reduce into a tile on GPU 0; a consumer kernel
        // TB on GPU 0 is gated on that tile.
        let cfg = quiet_cfg(3);
        let mut ids = IdAlloc::new(3);
        let addr = ids.addr(GpuId(0), 8192);
        let tile = ids.tile();
        let mut p = Program::new();
        let mut producer_ids = vec![];
        for g in 0..3u16 {
            let tb = TbDesc {
                id: ids.tb(),
                order_key: 0,
                group: None,
                pre_launch_sync: false,
                phases: vec![
                    Phase::Compute(SimDuration::from_us(2)),
                    Phase::IssueMem {
                        ops: vec![MemOp {
                            kind: MemOpKind::RemoteReduce,
                            addr,
                            bytes: 8192,
                            cais: false,
                            tile: Some(tile),
                        }],
                        wait: false,
                    },
                ],
            };
            let kid = ids.kernel();
            producer_ids.push(kid);
            p.push(PlannedKernel {
                gpu: GpuId(g),
                desc: KernelDesc::new(kid, format!("prod{g}"), vec![tb]),
                after: vec![],
            });
        }
        let consumer_tb = ids.tb();
        let mut desc = KernelDesc::new(
            ids.kernel(),
            "consumer",
            vec![TbDesc::compute_only(
                consumer_tb,
                0,
                SimDuration::from_us(1),
            )],
        );
        desc.tbs_auto_ready = false;
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc,
            after: vec![],
        });
        p.tb_ready_deps.insert(consumer_tb, vec![tile]);
        p.tile_expected.insert(tile, 3);
        let report = run(cfg, p);
        let span = report
            .kernel_spans
            .values()
            .find(|s| s.name == "consumer")
            .unwrap();
        // Consumer can only finish after remote contributions arrived
        // (launch 3us + produce 2us + wire time), then 1us compute.
        assert!(span.end > SimTime::from_us(6));
    }

    #[test]
    fn kernel_barrier_orders_execution() {
        let cfg = quiet_cfg(2);
        let mut ids = IdAlloc::new(2);
        let mut p = Program::new();
        let mut first = vec![];
        for g in 0..2u16 {
            let kid = ids.kernel();
            first.push(kid);
            p.push(PlannedKernel {
                gpu: GpuId(g),
                desc: KernelDesc::new(
                    kid,
                    "first",
                    vec![TbDesc::compute_only(ids.tb(), 0, SimDuration::from_us(5))],
                ),
                after: vec![],
            });
        }
        let second = ids.kernel();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(
                second,
                "second",
                vec![TbDesc::compute_only(ids.tb(), 0, SimDuration::from_us(1))],
            ),
            after: first.clone(),
        });
        let report = run(cfg, p);
        let s = &report.kernel_spans[&second];
        for f in &first {
            assert!(s.start >= report.kernel_spans[f].end);
        }
    }

    #[test]
    fn throttle_credits_serialize_cais_loads() {
        // One credit per plane: two CAIS loads to tiles on the same plane
        // must round-trip one at a time (the second waits for the first
        // response to return the credit).
        let mut unthrottled_cfg = quiet_cfg(2);
        unthrottled_cfg.n_planes = 1;
        unthrottled_cfg.fabric = noc_sim::FabricConfig::default_for(2, 1);
        let mut throttled_cfg = unthrottled_cfg.clone();
        throttled_cfg.cais_credits_per_plane = Some(1);

        let build = |cfg: &SystemConfig| {
            let mut ids = IdAlloc::new(2);
            let ops: Vec<MemOp> = (0..2)
                .map(|_| MemOp {
                    kind: MemOpKind::RemoteLoad,
                    addr: ids.addr(GpuId(1), 1 << 20),
                    bytes: 1 << 20,
                    cais: true,
                    tile: Some(ids.tile()),
                })
                .collect();
            let tb = TbDesc {
                id: ids.tb(),
                order_key: 0,
                group: None,
                pre_launch_sync: false,
                phases: vec![Phase::IssueMem { ops, wait: true }],
            };
            let mut p = Program::new();
            p.push(PlannedKernel {
                gpu: GpuId(0),
                desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
                after: vec![],
            });
            let _ = cfg;
            p
        };
        let fast = SystemSim::new(
            unthrottled_cfg.clone(),
            build(&unthrottled_cfg),
            Box::new(PureRouter),
        )
        .run()
        .expect("unthrottled run completes");
        let slow = SystemSim::new(
            throttled_cfg.clone(),
            build(&throttled_cfg),
            Box::new(PureRouter),
        )
        .run()
        .expect("throttled run completes");
        // With one credit the two 1 MB responses cannot overlap on the
        // wire, so the throttled run is measurably longer.
        assert!(
            slow.total.as_ns() > fast.total.as_ns() + 1_000,
            "throttled {} vs unthrottled {}",
            slow.total,
            fast.total
        );
    }

    /// A one-kernel program whose sole TB waits on a tile nobody produces.
    fn deadlocking_program(ids: &mut IdAlloc) -> Program {
        let tile = ids.tile();
        let tb = TbDesc {
            id: ids.tb(),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::WaitTiles(vec![tile])],
        };
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "stuck", vec![tb]),
            after: vec![],
        });
        p
    }

    #[test]
    fn missing_tile_returns_deadlock_with_diagnostics() {
        let cfg = quiet_cfg(2);
        let mut ids = IdAlloc::new(2);
        let p = deadlocking_program(&mut ids);
        let err = SystemSim::new(cfg, p, Box::new(PureRouter))
            .run()
            .expect_err("unsatisfiable tile wait must deadlock");
        match &err {
            SimError::Deadlock(d) => {
                assert_eq!(d.kernels_remaining, 1);
                assert_eq!(d.engine_blocked_tbs, 1);
                assert!(d.kernels.iter().any(|k| k.contains("stuck")));
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn tiny_deadline_returns_deadline_exceeded() {
        let mut cfg = quiet_cfg(2);
        cfg.deadline = SimTime::from_ns(1);
        let mut ids = IdAlloc::new(2);
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(
                ids.kernel(),
                "slow",
                vec![TbDesc::compute_only(ids.tb(), 0, SimDuration::from_us(50))],
            ),
            after: vec![],
        });
        let err = SystemSim::new(cfg, p, Box::new(PureRouter))
            .run()
            .expect_err("1 ns deadline must be exceeded");
        match &err {
            SimError::DeadlineExceeded {
                deadline,
                kernels_remaining,
                ..
            } => {
                assert_eq!(*deadline, SimTime::from_ns(1));
                assert_eq!(*kernels_remaining, 1);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn certain_drops_return_fault_budget_exhausted() {
        let mut cfg = quiet_cfg(2);
        cfg.faults = cfg.faults.with_drop_rate(1.0);
        let mut ids = IdAlloc::new(2);
        let addr = ids.addr(GpuId(1), 4096);
        let tb = TbDesc {
            id: ids.tb(),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::IssueMem {
                ops: vec![MemOp {
                    kind: MemOpKind::RemoteLoad,
                    addr,
                    bytes: 4096,
                    cais: false,
                    tile: None,
                }],
                wait: true,
            }],
        };
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
            after: vec![],
        });
        let err = SystemSim::new(cfg, p, Box::new(PureRouter))
            .run()
            .expect_err("drop_rate 1.0 must exhaust the retransmit budget");
        match &err {
            SimError::FaultBudgetExhausted {
                exhausted, drops, ..
            } => {
                assert!(*exhausted > 0);
                assert!(*drops > 0);
            }
            other => panic!("expected FaultBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn moderate_drop_rate_completes_with_retry_counters() {
        let mut cfg = quiet_cfg(2);
        cfg.faults = cfg.faults.with_drop_rate(0.2);
        let mut ids = IdAlloc::new(2);
        let addr = ids.addr(GpuId(1), 64 * 1024);
        let ops: Vec<MemOp> = (0..16)
            .map(|_| MemOp {
                kind: MemOpKind::RemoteLoad,
                addr,
                bytes: 64 * 1024,
                cais: false,
                tile: None,
            })
            .collect();
        let tb = TbDesc {
            id: ids.tb(),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::IssueMem { ops, wait: true }],
        };
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
            after: vec![],
        });
        let report = run(cfg, p);
        let c = report.fabric.resilience();
        assert!(c.drops > 0, "20% loss over 32+ hops must drop something");
        assert_eq!(c.retries, c.drops + c.corruptions);
        assert_eq!(c.budget_exhausted, 0);
    }

    #[test]
    fn zero_fault_plan_matches_no_plan_byte_for_byte() {
        let mut ids = IdAlloc::new(2);
        let p = |ids: &mut IdAlloc| {
            let addr = ids.addr(GpuId(1), 4096);
            let tb = TbDesc {
                id: ids.tb(),
                order_key: 0,
                group: None,
                pre_launch_sync: false,
                phases: vec![
                    Phase::IssueMem {
                        ops: vec![MemOp {
                            kind: MemOpKind::RemoteLoad,
                            addr,
                            bytes: 4096,
                            cais: false,
                            tile: None,
                        }],
                        wait: true,
                    },
                    Phase::Compute(SimDuration::from_us(1)),
                ],
            };
            let mut p = Program::new();
            p.push(PlannedKernel {
                gpu: GpuId(0),
                desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
                after: vec![],
            });
            p
        };
        let base = run(quiet_cfg(2), p(&mut ids));
        let mut cfg = quiet_cfg(2);
        // Zero rates with a different fault seed: provably zero-cost.
        cfg.faults = cfg.faults.with_seed(0x1234_5678);
        let mut ids2 = IdAlloc::new(2);
        let faulted = run(cfg, p(&mut ids2));
        assert_eq!(base.total, faulted.total);
        assert_eq!(base.events_processed, faulted.events_processed);
        assert!(faulted.fabric.resilience().is_clean());
    }

    #[test]
    fn straggler_slows_the_run() {
        let build = |ids: &mut IdAlloc| {
            let mut p = Program::new();
            for g in 0..2u16 {
                p.push(PlannedKernel {
                    gpu: GpuId(g),
                    desc: KernelDesc::new(
                        ids.kernel(),
                        format!("work{g}"),
                        vec![TbDesc::compute_only(ids.tb(), 0, SimDuration::from_us(40))],
                    ),
                    after: vec![],
                });
            }
            p
        };
        let mut ids = IdAlloc::new(2);
        let base = run(quiet_cfg(2), build(&mut ids));
        let mut cfg = quiet_cfg(2);
        cfg.faults = cfg.faults.with_straggler(sim_core::StragglerSpec {
            gpu: 1,
            compute_factor: 2.0,
        });
        let mut ids2 = IdAlloc::new(2);
        let slow = run(cfg, build(&mut ids2));
        // GPU 1's 40 us compute doubles; end-to-end must grow by ~40 us.
        assert!(
            slow.total > base.total + SimDuration::from_us(30),
            "straggler {} vs base {}",
            slow.total,
            base.total
        );
    }

    #[test]
    fn remote_write_marks_tile_at_destination() {
        let cfg = quiet_cfg(2);
        let mut ids = IdAlloc::new(2);
        let addr = ids.addr(GpuId(1), 1 << 20);
        let tile = ids.tile();
        let writer = TbDesc {
            id: ids.tb(),
            order_key: 0,
            group: None,
            pre_launch_sync: false,
            phases: vec![Phase::IssueMem {
                ops: vec![MemOp {
                    kind: MemOpKind::RemoteWrite,
                    addr,
                    bytes: 1 << 20,
                    cais: false,
                    tile: Some(tile),
                }],
                wait: false,
            }],
        };
        let consumer_tb = ids.tb();
        let mut p = Program::new();
        p.push(PlannedKernel {
            gpu: GpuId(0),
            desc: KernelDesc::new(ids.kernel(), "writer", vec![writer]),
            after: vec![],
        });
        let mut desc = KernelDesc::new(
            ids.kernel(),
            "reader",
            vec![TbDesc::compute_only(
                consumer_tb,
                0,
                SimDuration::from_us(1),
            )],
        );
        desc.tbs_auto_ready = false;
        p.push(PlannedKernel {
            gpu: GpuId(1),
            desc,
            after: vec![],
        });
        p.tb_ready_deps.insert(consumer_tb, vec![tile]);
        let report = run(cfg, p);
        let span = report
            .kernel_spans
            .values()
            .find(|s| s.name == "reader")
            .unwrap();
        // 1 MB at 450 GB/s per link ~ 2.3us per hop + latency.
        assert!(span.end > SimTime::from_us(7), "end {}", span.end);
    }
}
