//! System co-simulation engine.
//!
//! Glues the GPU simulators ([`gpu_sim`]) and the interconnect simulator
//! ([`noc_sim`]) into one multi-GPU system, executes a [`Program`] (the
//! lowered form of an LLM dataflow graph), and produces an [`ExecReport`].
//!
//! The engine is strategy-agnostic: an execution strategy (TP-NVLS,
//! CoCoNet, T3, CAIS, ...) is a [`Strategy`] implementation that lowers a
//! workload [`Dfg`](llm_workload::Dfg) into kernels/thread blocks and
//! supplies the [`SwitchLogic`](noc_sim::SwitchLogic) the switches run
//! (plain routing, NVLS multicast/reduction, or the CAIS merge unit).
//!
//! Responsibilities:
//!
//! * **message vocabulary** ([`Msg`]) — every packet type in the system,
//!   from remote loads to TB-group sync;
//! * **tile directory** — per-GPU producer/consumer state for fine-grained
//!   TB dependencies and intra-GPU fetch deduplication (the L2 would
//!   capture duplicate reads of a gathered row within one GPU);
//! * **memory semantics** — auto-responding to remote load requests,
//!   counting reduction contributions, releasing blocked TBs;
//! * **kernel scheduling** — local and global kernel-completion barriers;
//! * **TB-group synchronization plumbing** between GPUs and the switch.

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod ids;
pub mod lower;
pub mod msg;
pub mod program;
pub mod report;
pub mod strategy;
pub mod system;

pub use config::SystemConfig;
pub use error::{DeadlockDiag, SimError};
pub use ids::IdAlloc;
pub use lower::{GemmLowering, Tiling};
pub use msg::Msg;
pub use program::{PlannedKernel, Program};
pub use report::ExecReport;
pub use strategy::Strategy;
pub use system::SystemSim;
