//! The execution-strategy interface.

use crate::config::SystemConfig;
use crate::error::SimError;
use crate::msg::Msg;
use crate::program::Program;
use crate::report::ExecReport;
use crate::system::SystemSim;
use llm_workload::Dfg;
use noc_sim::SwitchLogic;

/// An execution strategy: how a logical dataflow graph becomes kernels,
/// thread blocks and switch behaviour.
///
/// Implementations: the nine baselines in `cais-baselines` and the CAIS
/// variants in `cais-core`.
///
/// `Send` is a supertrait so strategies (and `Box<dyn Strategy>`) can be
/// moved into sweep worker threads; each job constructs and consumes its
/// strategy on one thread, so no `Sync` is required.
pub trait Strategy: Send {
    /// Display name used in experiment tables ("TP-NVLS", "CAIS", ...).
    fn name(&self) -> &str;

    /// Adjusts system knobs this strategy requires (ready-queue policy,
    /// traffic control, throttle credits). Called before lowering.
    fn tune(&self, _cfg: &mut SystemConfig) {}

    /// Lowers the workload graph into an executable program.
    fn lower(&self, dfg: &Dfg, cfg: &SystemConfig) -> Program;

    /// The in-switch logic this strategy runs (plain router, NVLS
    /// multicast/reduction, CAIS merge unit).
    fn switch_logic(&self, cfg: &SystemConfig) -> Box<dyn SwitchLogic<Msg>>;

    /// Runs an already-lowered `program` on `cfg`.
    ///
    /// The default builds the dyn-boxed [`Strategy::switch_logic`] and
    /// pays one virtual call per packet. Strategies override this to
    /// construct their concrete logic type and instantiate a
    /// monomorphized [`SystemSim`], so the whole run costs exactly one
    /// virtual call — this method — at the strategy boundary.
    ///
    /// # Errors
    ///
    /// Propagates the typed [`SimError`] from [`SystemSim::run`].
    fn run(&self, cfg: SystemConfig, program: Program) -> Result<ExecReport, SimError> {
        let logic = self.switch_logic(&cfg);
        SystemSim::new(cfg, program, logic).run()
    }
}

/// Lowers and executes `dfg` under `strategy`, returning the report.
///
/// This is the single entry point the experiment harness uses.
///
/// # Errors
///
/// Returns the typed [`SimError`] from [`SystemSim::run`] — deadlock,
/// deadline overrun, or fault-budget exhaustion — instead of panicking.
pub fn execute(
    strategy: &dyn Strategy,
    dfg: &Dfg,
    base_cfg: &SystemConfig,
) -> Result<ExecReport, SimError> {
    let mut cfg = base_cfg.clone();
    strategy.tune(&mut cfg);
    let program = strategy.lower(dfg, &cfg);
    strategy.run(cfg, program)
}
