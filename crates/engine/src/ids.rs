//! Central id and address allocation for program lowering.

use sim_core::{Addr, GpuId, GroupId, KernelId, TbId, TileId};

/// Allocates globally unique kernel/TB/tile/group ids and per-GPU
/// addresses during lowering.
///
/// One allocator per lowered [`Program`](crate::Program); strategies pass
/// it through their lowering helpers so ids never collide across kernels.
#[derive(Debug, Clone)]
pub struct IdAlloc {
    next_kernel: u32,
    next_tb: u64,
    next_tile: u64,
    next_group: u32,
    heap: Vec<u64>,
}

impl IdAlloc {
    /// Creates an allocator for a system with `n_gpus` GPUs.
    pub fn new(n_gpus: usize) -> IdAlloc {
        IdAlloc {
            next_kernel: 0,
            next_tb: 0,
            next_tile: 0,
            next_group: 0,
            heap: vec![0; n_gpus],
        }
    }

    /// Fresh kernel id.
    pub fn kernel(&mut self) -> KernelId {
        let id = KernelId(self.next_kernel);
        self.next_kernel += 1;
        id
    }

    /// Fresh thread-block id.
    pub fn tb(&mut self) -> TbId {
        let id = TbId(self.next_tb);
        self.next_tb += 1;
        id
    }

    /// Fresh tile id.
    pub fn tile(&mut self) -> TileId {
        let id = TileId(self.next_tile);
        self.next_tile += 1;
        id
    }

    /// Fresh TB-group id.
    pub fn group(&mut self) -> GroupId {
        let id = GroupId(self.next_group);
        self.next_group += 1;
        id
    }

    /// Allocates `bytes` of address space on `gpu`, 128-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range for this allocator.
    pub fn addr(&mut self, gpu: GpuId, bytes: u64) -> Addr {
        let heap = &mut self.heap[gpu.index()];
        let aligned = (*heap + 127) & !127;
        *heap = aligned + bytes;
        Addr::new(gpu, aligned)
    }

    /// Number of tiles allocated so far (diagnostics).
    pub fn tiles_allocated(&self) -> u64 {
        self.next_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut a = IdAlloc::new(2);
        assert_eq!(a.kernel(), KernelId(0));
        assert_eq!(a.kernel(), KernelId(1));
        assert_eq!(a.tb(), TbId(0));
        assert_eq!(a.tile(), TileId(0));
        assert_eq!(a.tile(), TileId(1));
        assert_eq!(a.group(), GroupId(0));
        assert_eq!(a.tiles_allocated(), 2);
    }

    #[test]
    fn addresses_are_aligned_and_disjoint() {
        let mut a = IdAlloc::new(2);
        let x = a.addr(GpuId(0), 100);
        let y = a.addr(GpuId(0), 100);
        assert_eq!(x.offset() % 128, 0);
        assert_eq!(y.offset() % 128, 0);
        assert!(y.offset() >= x.offset() + 100);
        // Different GPUs have independent heaps.
        let z = a.addr(GpuId(1), 100);
        assert_eq!(z.offset(), 0);
        assert_eq!(z.home_gpu(), GpuId(1));
    }
}
