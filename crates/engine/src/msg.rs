//! The system-wide fabric message vocabulary.

use noc_sim::{FlowClass, Payload};
use sim_core::{Addr, GpuId, GroupId, TbId, TileId};

/// Header-only message size on the wire (a sync/control packet carries no
/// payload beyond the fabric header, matching the paper's "empty packets").
pub const EMPTY: u64 = 0;

/// Every message that can traverse the fabric.
///
/// `*.cais`-tagged requests are eligible for in-switch merging; the same
/// message types with `cais: false` are plain point-to-point traffic that
/// any router forwards.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote read request (requester pulls `bytes` at `addr`).
    LoadReq {
        /// Target address (home GPU owns the data).
        addr: Addr,
        /// Requested bytes.
        bytes: u64,
        /// GPU that wants the data.
        requester: GpuId,
        /// TB blocked on this load (engine bookkeeping).
        tb: TbId,
        /// Tile materialized at the requester when data arrives.
        tile: Option<TileId>,
        /// `ld.cais`: eligible for in-switch load merging.
        cais: bool,
    },
    /// Remote read response carrying data back to `requester`.
    LoadResp {
        /// Address served.
        addr: Addr,
        /// Data bytes.
        bytes: u64,
        /// Destination GPU.
        requester: GpuId,
        /// TB to credit.
        tb: TbId,
        /// Tile to mark present at the requester.
        tile: Option<TileId>,
    },
    /// A reduction contribution pushed toward `addr`'s home GPU
    /// (`red.cais` when `cais`, NVLS `multimem.red` otherwise).
    Reduce {
        /// Accumulation address.
        addr: Addr,
        /// Contribution bytes.
        bytes: u64,
        /// Contributing GPU.
        src: GpuId,
        /// Number of partial contributions already folded into this
        /// message (1 from a GPU; >1 when a switch flushes a merged
        /// partial).
        contribs: u32,
        /// Tile the reduction completes at the home GPU.
        tile: Option<TileId>,
        /// `red.cais`: eligible for in-switch reduction merging.
        cais: bool,
    },
    /// Direct peer write (ring collective step, T3 track-&-trigger store).
    Write {
        /// Destination address.
        addr: Addr,
        /// Data bytes.
        bytes: u64,
        /// Writing GPU.
        src: GpuId,
        /// Tile marked present at the destination on arrival.
        tile: Option<TileId>,
        /// Counted as a reduction contribution rather than a plain
        /// overwrite (T3 accumulates partials at the home GPU).
        contrib: bool,
    },
    /// NVLS push-mode multicast store (`multimem.st`): the switch
    /// replicates the payload to every GPU except `src`.
    MulticastStore {
        /// Address in the multicast window (identifies the chunk).
        addr: Addr,
        /// Data bytes.
        bytes: u64,
        /// Pushing GPU.
        src: GpuId,
        /// Tile marked present at each receiving GPU.
        tile: Option<TileId>,
    },
    /// NVLS pull-mode reduction (`multimem.ld_reduce`): the switch fetches
    /// the chunk from every other GPU, reduces in-flight and responds to
    /// the requester.
    LoadReduceReq {
        /// Chunk address (offset meaningful on every GPU).
        addr: Addr,
        /// Bytes per contribution.
        bytes: u64,
        /// Requesting GPU.
        requester: GpuId,
        /// TB blocked on the reduced data.
        tb: TbId,
        /// Tile marked present at the requester on completion.
        tile: Option<TileId>,
    },
    /// Switch-issued fetch of one contribution for an in-flight
    /// `LoadReduceReq` session.
    FetchReq {
        /// Chunk address.
        addr: Addr,
        /// Bytes.
        bytes: u64,
        /// GPU asked to supply its partial.
        target: GpuId,
        /// Session key on the switch.
        session: u64,
    },
    /// A GPU's reply to a [`Msg::FetchReq`].
    FetchResp {
        /// Chunk address.
        addr: Addr,
        /// Bytes.
        bytes: u64,
        /// Supplying GPU.
        src: GpuId,
        /// Session key on the switch.
        session: u64,
    },
    /// TB-group synchronization request (empty packet, GPU -> switch).
    SyncReq {
        /// The group.
        group: GroupId,
        /// Requesting GPU.
        gpu: GpuId,
        /// Pre-launch (0) or pre-access (1); kept as a raw discriminant so
        /// the message stays `gpu-sim`-independent.
        kind: u8,
    },
    /// TB-group release broadcast (empty packet, switch -> GPU).
    SyncRel {
        /// The group.
        group: GroupId,
        /// Pre-launch (0) or pre-access (1).
        kind: u8,
    },
    /// Throttling credit return from the switch to a GPU (empty packet):
    /// grants the GPU permission to issue more CAIS requests on a plane.
    CreditGrant {
        /// Credits returned.
        credits: u32,
    },
}

impl Payload for Msg {
    fn data_bytes(&self) -> u64 {
        match self {
            Msg::LoadReq { .. } => EMPTY,
            Msg::LoadResp { bytes, .. } => *bytes,
            Msg::Reduce { bytes, .. } => *bytes,
            Msg::Write { bytes, .. } => *bytes,
            Msg::MulticastStore { bytes, .. } => *bytes,
            Msg::LoadReduceReq { .. } => EMPTY,
            Msg::FetchReq { .. } => EMPTY,
            Msg::FetchResp { bytes, .. } => *bytes,
            Msg::SyncReq { .. } => EMPTY,
            Msg::SyncRel { .. } => EMPTY,
            Msg::CreditGrant { .. } => EMPTY,
        }
    }

    fn class(&self) -> FlowClass {
        match self {
            Msg::LoadReq { .. } | Msg::LoadReduceReq { .. } | Msg::FetchReq { .. } => {
                FlowClass::LoadReq
            }
            Msg::LoadResp { .. } | Msg::FetchResp { .. } => FlowClass::LoadResp,
            Msg::Reduce { .. } => FlowClass::Reduce,
            Msg::Write { .. } | Msg::MulticastStore { .. } => FlowClass::Bulk,
            Msg::SyncReq { .. } | Msg::SyncRel { .. } | Msg::CreditGrant { .. } => FlowClass::Sync,
        }
    }
}

impl Msg {
    /// The address this message concerns, when it has one.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Msg::LoadReq { addr, .. }
            | Msg::LoadResp { addr, .. }
            | Msg::Reduce { addr, .. }
            | Msg::Write { addr, .. }
            | Msg::MulticastStore { addr, .. }
            | Msg::LoadReduceReq { addr, .. }
            | Msg::FetchReq { addr, .. }
            | Msg::FetchResp { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_are_empty() {
        let m = Msg::SyncReq {
            group: GroupId(1),
            gpu: GpuId(0),
            kind: 0,
        };
        assert_eq!(m.data_bytes(), 0);
        assert_eq!(m.class(), FlowClass::Sync);
        assert!(m.addr().is_none());
    }

    #[test]
    fn load_request_is_small_but_response_is_heavy() {
        let addr = Addr::new(GpuId(3), 64);
        let req = Msg::LoadReq {
            addr,
            bytes: 32 * 1024,
            requester: GpuId(0),
            tb: TbId(1),
            tile: None,
            cais: true,
        };
        let resp = Msg::LoadResp {
            addr,
            bytes: 32 * 1024,
            requester: GpuId(0),
            tb: TbId(1),
            tile: None,
        };
        assert_eq!(req.data_bytes(), 0);
        assert_eq!(resp.data_bytes(), 32 * 1024);
        assert_eq!(req.addr(), Some(addr));
        assert_eq!(req.class(), FlowClass::LoadReq);
        assert_eq!(resp.class(), FlowClass::LoadResp);
    }

    #[test]
    fn reduce_and_load_use_distinct_classes() {
        let addr = Addr::new(GpuId(1), 0);
        let red = Msg::Reduce {
            addr,
            bytes: 1024,
            src: GpuId(0),
            contribs: 1,
            tile: None,
            cais: true,
        };
        let resp = Msg::LoadResp {
            addr,
            bytes: 1024,
            requester: GpuId(0),
            tb: TbId(0),
            tile: None,
        };
        // Separate classes let CAIS traffic control put them on distinct
        // virtual channels.
        assert_ne!(red.class(), resp.class());
    }
}
