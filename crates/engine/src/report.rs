//! Execution reports.

use noc_sim::FabricReport;
use sim_core::{GpuId, KernelId, SimDuration, SimTime, Symbol};
use std::collections::BTreeMap;

/// Recorded lifetime of one kernel instance.
#[derive(Debug, Clone)]
pub struct KernelSpan {
    /// Kernel name from lowering (interned: copying a span copies a
    /// 4-byte symbol, not a heap string).
    pub name: Symbol,
    /// GPU it ran on.
    pub gpu: GpuId,
    /// Launch time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
}

impl KernelSpan {
    /// Wall-clock duration of the kernel.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Result of executing one [`Program`](crate::Program).
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// End-to-end simulated time (to full quiescence).
    pub total: SimDuration,
    /// Per-GPU SM-slot occupancy over the run.
    pub gpu_occupancy: Vec<f64>,
    /// Link usage.
    pub fabric: FabricReport,
    /// Per-kernel lifetimes, ordered by [`KernelId`] so every iteration
    /// (report rows, prefix sums, golden comparisons) is deterministic.
    pub kernel_spans: BTreeMap<KernelId, KernelSpan>,
    /// Free-form counters exposed by the switch logic (merge statistics).
    pub logic_stats: Vec<(String, f64)>,
    /// Remote fetches avoided by the per-GPU tile directory (L2 capture).
    pub deduped_fetches: u64,
    /// Total semantic reduction contributions delivered to tiles. This is
    /// determined by the dataflow graph alone (the sum of every reduced
    /// tile's expected contribution count), so it is invariant across
    /// lowering strategies and fault plans — the chaos soak's
    /// semantic-reduction equivalence oracle.
    pub semantic_contribs: u64,
    /// Spread between the first and last request observed per merged
    /// address, averaged (reported by CAIS logic; `None` otherwise).
    pub mean_request_spread: Option<SimDuration>,
    /// Discrete events processed across all GPU queues and the fabric
    /// queue (perf accounting; drives `BENCH_sim.json`).
    pub events_processed: u64,
    /// Largest pending-event count reached by any single queue.
    pub queue_peak: usize,
}

impl ExecReport {
    /// Mean occupancy across GPUs.
    pub fn mean_occupancy(&self) -> f64 {
        if self.gpu_occupancy.is_empty() {
            return 0.0;
        }
        self.gpu_occupancy.iter().sum::<f64>() / self.gpu_occupancy.len() as f64
    }

    /// Looks up a logic counter by key.
    pub fn stat(&self, key: &str) -> Option<f64> {
        self.logic_stats
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Sum of wall time of kernels whose name starts with `prefix`,
    /// on GPU 0 (kernels are symmetric across GPUs).
    pub fn kernel_time_with_prefix(&self, prefix: &str) -> SimDuration {
        self.kernel_spans
            .values()
            .filter(|s| s.gpu == GpuId(0) && s.name.as_str().starts_with(prefix))
            .map(|s| s.duration())
            .sum()
    }

    /// Speedup of this report relative to `baseline` (baseline time /
    /// this time).
    pub fn speedup_over(&self, baseline: &ExecReport) -> f64 {
        baseline.total.as_secs_f64() / self.total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::FabricReport;

    fn report(total_us: u64) -> ExecReport {
        ExecReport {
            total: SimDuration::from_us(total_us),
            gpu_occupancy: vec![0.5, 0.7],
            fabric: FabricReport::new(SimDuration::from_us(total_us), vec![]),
            kernel_spans: BTreeMap::new(),
            logic_stats: vec![("merge.hits".into(), 42.0)],
            deduped_fetches: 0,
            semantic_contribs: 0,
            mean_request_spread: None,
            events_processed: 0,
            queue_peak: 0,
        }
    }

    #[test]
    fn aggregates() {
        let r = report(100);
        assert!((r.mean_occupancy() - 0.6).abs() < 1e-12);
        assert_eq!(r.stat("merge.hits"), Some(42.0));
        assert_eq!(r.stat("nope"), None);
    }

    #[test]
    fn speedup() {
        let fast = report(50);
        let slow = report(100);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_prefix_times() {
        let mut r = report(10);
        r.kernel_spans.insert(
            KernelId(0),
            KernelSpan {
                name: "coll.ar".into(),
                gpu: GpuId(0),
                start: SimTime::ZERO,
                end: SimTime::from_us(4),
            },
        );
        r.kernel_spans.insert(
            KernelId(1),
            KernelSpan {
                name: "gemm.fc1".into(),
                gpu: GpuId(0),
                start: SimTime::from_us(4),
                end: SimTime::from_us(9),
            },
        );
        // Same names on another GPU are excluded.
        r.kernel_spans.insert(
            KernelId(2),
            KernelSpan {
                name: "coll.ar".into(),
                gpu: GpuId(1),
                start: SimTime::ZERO,
                end: SimTime::from_us(4),
            },
        );
        assert_eq!(r.kernel_time_with_prefix("coll."), SimDuration::from_us(4));
        assert_eq!(r.kernel_time_with_prefix("gemm."), SimDuration::from_us(5));
    }
}
