//! Typed simulation failures.
//!
//! The engine used to `panic!` on deadlock, deadline overrun and fault
//! pressure; sweeps could only show an opaque FAILED row. [`SimError`]
//! carries the same diagnostics as structured data so callers (and sweep
//! rows) can distinguish a deadlock from a livelock from a run whose
//! retransmit budget was exhausted by fault injection.

use sim_core::{AuditReport, SimTime};
use std::fmt;

/// Diagnostics packaged with a deadlock: what was stuck and where.
#[derive(Debug, Clone, Default)]
pub struct DeadlockDiag {
    /// Kernels that never completed.
    pub kernels_remaining: usize,
    /// TBs blocked in the engine's tile/load wait tables.
    pub engine_blocked_tbs: usize,
    /// Per-(GPU, group) pre-access sync waiters, as `gpu/group:count`.
    pub preaccess_waiters: Vec<String>,
    /// CAIS requests still queued behind throttle credits.
    pub throttle_queued: usize,
    /// Unlaunched / incomplete kernels (truncated).
    pub kernels: Vec<String>,
    /// Blocked TBs still registered at quiescence (truncated; only set for
    /// the all-kernels-done-but-TBs-blocked variant).
    pub blocked_tbs: Vec<String>,
    /// Waits-for edges (`waiter -> resource it is stuck on`) across GPUs,
    /// switch ports and sync groups, truncated. Populated when the audit
    /// ring is enabled so deadlocks stop being opaque.
    pub waits_for: Vec<String>,
    /// Rendered tail of the fabric event ring, oldest first. Empty unless
    /// auditing was enabled for the run.
    pub recent_events: Vec<String>,
}

/// Why a simulation run failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// No pending events while work remains: the program can never finish.
    Deadlock(Box<DeadlockDiag>),
    /// Simulated time passed the configured deadline: runaway or livelock.
    DeadlineExceeded {
        /// The configured hard wall.
        deadline: SimTime,
        /// Simulation time when the wall was hit.
        now: SimTime,
        /// Kernels that had not completed yet.
        kernels_remaining: usize,
    },
    /// Fault injection dropped some packet more times than the retransmit
    /// budget allows; the run completed via force-delivery but its results
    /// model data loss and must not be trusted.
    FaultBudgetExhausted {
        /// Packets that ran out of retransmit budget.
        exhausted: u64,
        /// Total packet drops over the run.
        drops: u64,
        /// Total retransmissions over the run.
        retries: u64,
    },
    /// A conservation ledger failed a cadence or quiescence check: the
    /// simulator's own bookkeeping is inconsistent and the run's results
    /// cannot be trusted. Carries the full forensic report.
    AuditViolation(Box<AuditReport>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(d) => {
                if d.kernels_remaining > 0 {
                    write!(
                        f,
                        "deadlock: {} kernels never completed; engine-blocked TBs {}, \
                         pre-access waiters {:?}, throttle-queued {}; kernels: {:?}",
                        d.kernels_remaining,
                        d.engine_blocked_tbs,
                        d.preaccess_waiters,
                        d.throttle_queued,
                        d.kernels,
                    )?;
                } else {
                    write!(
                        f,
                        "deadlock: TBs still blocked at quiescence: {:?}",
                        d.blocked_tbs
                    )?;
                }
                if !d.waits_for.is_empty() {
                    write!(f, "; waits-for: {:?}", d.waits_for)?;
                }
                if !d.recent_events.is_empty() {
                    write!(f, "; last events: {:?}", d.recent_events)?;
                }
                Ok(())
            }
            SimError::DeadlineExceeded {
                deadline,
                now,
                kernels_remaining,
            } => write!(
                f,
                "deadline exceeded: simulation passed {deadline} (now {now}) with \
                 {kernels_remaining} kernels remaining; runaway or livelock"
            ),
            SimError::FaultBudgetExhausted {
                exhausted,
                drops,
                retries,
            } => write!(
                f,
                "fault budget exhausted: {exhausted} packets exceeded their retransmit \
                 budget ({drops} drops, {retries} retries); results model data loss"
            ),
            SimError::AuditViolation(report) => {
                write!(f, "audit violation: {report}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_variants() {
        let dl = SimError::Deadlock(Box::new(DeadlockDiag {
            kernels_remaining: 2,
            engine_blocked_tbs: 5,
            preaccess_waiters: vec!["g0/grp1:3".into()],
            throttle_queued: 1,
            kernels: vec!["incomplete k0".into()],
            blocked_tbs: vec![],
            waits_for: vec!["tb4@g0 -> tile t7@g1".into()],
            recent_events: vec!["1.2us arrive.gpu a=9 b=0".into()],
        }));
        let s = dl.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("2 kernels"));
        assert!(s.contains("g0/grp1:3"));
        assert!(s.contains("waits-for"));
        assert!(s.contains("tb4@g0 -> tile t7@g1"));
        assert!(s.contains("arrive.gpu"));

        let quiesce = SimError::Deadlock(Box::new(DeadlockDiag {
            blocked_tbs: vec!["tb3".into()],
            ..DeadlockDiag::default()
        }));
        assert!(quiesce.to_string().contains("quiescence"));

        let dead = SimError::DeadlineExceeded {
            deadline: SimTime::from_ms(10),
            now: SimTime::from_ms(11),
            kernels_remaining: 1,
        };
        assert!(dead.to_string().contains("deadline exceeded"));

        let fault = SimError::FaultBudgetExhausted {
            exhausted: 3,
            drops: 30,
            retries: 27,
        };
        assert!(fault.to_string().contains("fault budget exhausted"));

        let mut probe = sim_core::AuditProbe::new(sim_core::AuditPhase::Quiescence);
        probe.ledger("fabric", "enqueued == served + queued", 10, 9);
        let audit = SimError::AuditViolation(Box::new(
            probe.into_report(SimTime::from_ns(5), vec!["ev".into()]),
        ));
        let s = audit.to_string();
        assert!(s.contains("audit violation"), "{s}");
        assert!(s.contains("[fabric]"), "{s}");
        assert!(s.contains("enqueued == served + queued"), "{s}");
    }
}
