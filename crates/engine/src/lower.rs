//! Shared lowering helpers: tiling math and simple kernel builders.
//!
//! Execution strategies lower [`Dfg`](llm_workload::Dfg) nodes into
//! [`KernelDesc`]s. The per-strategy structure (which TBs issue which
//! remote operations, how kernels chain) lives in the strategy crates;
//! the tile geometry and roofline arithmetic shared by all of them live
//! here.

use crate::ids::IdAlloc;
use gpu_sim::{KernelCost, KernelDesc, Phase, TbDesc};
use llm_workload::NodeKind;
use sim_core::{GpuId, KernelId, SimDuration};

/// Square output-tile geometry used to decompose GEMMs into TBs.
#[derive(Debug, Clone, Copy)]
pub struct Tiling {
    /// Tile edge in elements.
    pub tile: u64,
}

impl Tiling {
    /// Creates a tiling.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is zero.
    pub fn new(tile: u64) -> Tiling {
        assert!(tile > 0, "tile size must be positive");
        Tiling { tile }
    }

    /// Number of tiles covering `dim`.
    pub fn count(&self, dim: u64) -> u64 {
        dim.div_ceil(self.tile)
    }

    /// `(offset, len)` ranges covering `dim`.
    pub fn ranges(&self, dim: u64) -> Vec<(u64, u64)> {
        (0..self.count(dim))
            .map(|i| {
                let off = i * self.tile;
                (off, self.tile.min(dim - off))
            })
            .collect()
    }
}

/// Splits `bytes` into `(offset, len)` chunks of at most `chunk` bytes.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn chunk_ranges(bytes: u64, chunk: u64) -> Vec<(u64, u64)> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..bytes.div_ceil(chunk))
        .map(|i| {
            let off = i * chunk;
            (off, chunk.min(bytes - off))
        })
        .collect()
}

/// Per-node lowering cost/geometry helper shared by all strategies.
#[derive(Debug)]
pub struct GemmLowering {
    /// Roofline cost model for the configured GPU.
    pub cost: KernelCost,
    /// Output tile geometry.
    pub tiling: Tiling,
    /// Bytes per element.
    pub elem: u64,
}

impl GemmLowering {
    /// Builds the helper from a cost model.
    pub fn new(cost: KernelCost, tile: u64, elem: u64) -> GemmLowering {
        GemmLowering {
            cost,
            tiling: Tiling::new(tile),
            elem,
        }
    }

    /// Duration of one `(m_len x n_len) @ k` output tile.
    pub fn gemm_tb_time(&self, m_len: u64, n_len: u64, k: u64) -> SimDuration {
        self.cost.gemm_tile(m_len, n_len, k, self.elem)
    }

    /// Duration of a whole compute node when executed as one dense grid,
    /// assuming perfect SM packing (used for quick estimates/tests).
    pub fn node_serial_time(&self, kind: &NodeKind) -> SimDuration {
        match kind {
            NodeKind::Gemm { m, n, k } => {
                let mut total = SimDuration::ZERO;
                for (_, ml) in self.tiling.ranges(*m) {
                    for (_, nl) in self.tiling.ranges(*n) {
                        total += self.gemm_tb_time(ml, nl, *k);
                    }
                }
                total
            }
            NodeKind::AttentionCore { flops, bytes } => self.cost.tb_time(*flops, *bytes as f64),
            NodeKind::LayerNorm { rows, cols } => {
                self.cost.elementwise(rows * cols, self.elem, 8.0)
            }
            NodeKind::Elementwise {
                rows,
                cols,
                flops_per_elem,
            } => self
                .cost
                .elementwise(rows * cols, self.elem, *flops_per_elem),
            NodeKind::Collective { .. } => SimDuration::ZERO,
        }
    }

    /// Lowers a communication-free compute node into one kernel on `gpu`:
    /// a grid of pure-compute TBs sized by the node kind.
    pub fn plain_compute_kernel(
        &self,
        ids: &mut IdAlloc,
        kid: KernelId,
        name: &str,
        _gpu: GpuId,
        kind: &NodeKind,
        sm_count: usize,
    ) -> KernelDesc {
        let mut tbs = Vec::new();
        let mut order = 0u64;
        match kind {
            NodeKind::Gemm { m, n, k } => {
                for (_, ml) in self.tiling.ranges(*m) {
                    for (_, nl) in self.tiling.ranges(*n) {
                        tbs.push(TbDesc::compute_only(
                            ids.tb(),
                            order,
                            self.gemm_tb_time(ml, nl, *k),
                        ));
                        order += 1;
                    }
                }
            }
            NodeKind::AttentionCore { flops, bytes } => {
                // Spread across the device: one TB per SM.
                let n = sm_count as u64;
                let t = self
                    .cost
                    .tb_time(*flops / n as f64, *bytes as f64 / n as f64);
                for _ in 0..n {
                    tbs.push(TbDesc::compute_only(ids.tb(), order, t));
                    order += 1;
                }
            }
            NodeKind::LayerNorm { rows, cols } => {
                for (_, rl) in self.tiling.ranges(*rows) {
                    tbs.push(TbDesc::compute_only(
                        ids.tb(),
                        order,
                        self.cost.elementwise(rl * cols, self.elem, 8.0),
                    ));
                    order += 1;
                }
            }
            NodeKind::Elementwise {
                rows,
                cols,
                flops_per_elem,
            } => {
                for (_, rl) in self.tiling.ranges(*rows) {
                    tbs.push(TbDesc::compute_only(
                        ids.tb(),
                        order,
                        self.cost.elementwise(rl * cols, self.elem, *flops_per_elem),
                    ));
                    order += 1;
                }
            }
            NodeKind::Collective { .. } => {
                panic!("collective nodes are lowered by strategy-specific code")
            }
        }
        KernelDesc::new(kid, name, tbs)
    }

    /// Phase helper: a compute phase of the given length.
    pub fn compute(&self, d: SimDuration) -> Phase {
        Phase::Compute(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn lowering() -> GemmLowering {
        GemmLowering::new(KernelCost::new(&GpuConfig::h100_half()), 128, 2)
    }

    #[test]
    fn tiling_covers_dimension_exactly() {
        let t = Tiling::new(128);
        assert_eq!(t.count(256), 2);
        assert_eq!(t.count(300), 3);
        let ranges = t.ranges(300);
        assert_eq!(ranges, vec![(0, 128), (128, 128), (256, 44)]);
        let covered: u64 = ranges.iter().map(|(_, l)| l).sum();
        assert_eq!(covered, 300);
    }

    #[test]
    fn chunks_cover_bytes() {
        let chunks = chunk_ranges(1000, 256);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3], (768, 232));
        assert_eq!(chunk_ranges(0, 256).len(), 0);
    }

    #[test]
    fn gemm_kernel_has_full_grid() {
        let mut ids = IdAlloc::new(1);
        let l = lowering();
        let kid = ids.kernel();
        let k = l.plain_compute_kernel(
            &mut ids,
            kid,
            "gemm",
            GpuId(0),
            &NodeKind::Gemm {
                m: 512,
                n: 256,
                k: 1024,
            },
            66,
        );
        assert_eq!(k.tbs.len(), 4 * 2);
        assert!(k.total_compute() > SimDuration::ZERO);
    }

    #[test]
    fn layernorm_kernel_rows() {
        let mut ids = IdAlloc::new(1);
        let l = lowering();
        let kid = ids.kernel();
        let k = l.plain_compute_kernel(
            &mut ids,
            kid,
            "ln",
            GpuId(0),
            &NodeKind::LayerNorm {
                rows: 1152,
                cols: 4096,
            },
            66,
        );
        assert_eq!(k.tbs.len(), 9);
    }

    #[test]
    #[should_panic(expected = "collective nodes")]
    fn collective_nodes_rejected() {
        let mut ids = IdAlloc::new(1);
        let l = lowering();
        let kid = ids.kernel();
        let _ = l.plain_compute_kernel(
            &mut ids,
            kid,
            "oops",
            GpuId(0),
            &NodeKind::Collective {
                kind: llm_workload::CollKind::AllReduce,
                rows: 1,
                cols: 1,
            },
            66,
        );
    }

    #[test]
    fn serial_time_scales_with_work() {
        let l = lowering();
        let small = l.node_serial_time(&NodeKind::Gemm {
            m: 256,
            n: 256,
            k: 1024,
        });
        let large = l.node_serial_time(&NodeKind::Gemm {
            m: 512,
            n: 256,
            k: 1024,
        });
        assert!(large > small);
    }
}
