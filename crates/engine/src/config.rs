//! System-level configuration.

use gpu_sim::GpuConfig;
use noc_sim::FabricConfig;
use sim_core::{AuditConfig, FaultPlan, SimDuration, SimTime};

/// Configuration of the whole multi-GPU system plus engine knobs.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of GPUs.
    pub n_gpus: usize,
    /// Number of switch planes.
    pub n_planes: usize,
    /// Per-GPU configuration (identical GPUs).
    pub gpu: GpuConfig,
    /// Fabric configuration; `n_gpus`/`n_planes` here are authoritative
    /// and copied into it by [`SystemConfig::fabric_config`].
    pub fabric: FabricConfig,
    /// Latency for the home GPU's memory system to serve a remote read.
    pub mem_read_latency: SimDuration,
    /// GEMM tile edge (square `tile x tile` output tiles).
    pub tile: u64,
    /// Chunk size for collective lowering (ring steps, NVLS pushes).
    pub coll_chunk_bytes: u64,
    /// Per-(GPU, plane) cap on outstanding CAIS-tagged requests; models
    /// the paper's TB-aware request throttling driven by merge-table
    /// credits. `None` disables throttling.
    pub cais_credits_per_plane: Option<usize>,
    /// Master seed for all jitter streams.
    pub seed: u64,
    /// Hard wall on simulated time; exceeding it makes the run fail with
    /// [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded).
    pub deadline: SimTime,
    /// Fault-injection plan; the default injects nothing and leaves every
    /// result byte-identical to a fault-free run.
    pub faults: FaultPlan,
    /// Conservation-auditor settings. The default enables checking only in
    /// `audit`-feature builds or after
    /// [`sim_core::audit::set_force_enabled`] (the harness `--audit`
    /// flag); auditing is observe-only either way.
    pub audit: AuditConfig,
}

impl SystemConfig {
    /// The paper's main setup: 8 GPUs, 4 NVSwitch planes, half-scale H100s.
    pub fn dgx_h100() -> SystemConfig {
        let n_gpus = 8;
        let n_planes = 4;
        SystemConfig {
            n_gpus,
            n_planes,
            gpu: GpuConfig::h100_half(),
            fabric: FabricConfig::default_for(n_gpus, n_planes),
            mem_read_latency: SimDuration::from_ns(400),
            tile: 128,
            coll_chunk_bytes: 512 * 1024,
            cais_credits_per_plane: None,
            seed: 0xCA15,
            deadline: SimTime::from_ms(10_000),
            faults: FaultPlan::default(),
            audit: AuditConfig::default(),
        }
    }

    /// A small fast config for tests: fewer GPUs, coarse tiles.
    pub fn small_test() -> SystemConfig {
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = 4;
        cfg.n_planes = 2;
        cfg.fabric = FabricConfig::default_for(4, 2);
        cfg.tile = 256;
        cfg
    }

    /// Fabric config with system-level fields made consistent.
    pub fn fabric_config(&self) -> FabricConfig {
        let mut f = self.fabric.clone();
        f.n_gpus = self.n_gpus;
        f.n_planes = self.n_planes;
        f.faults = self.faults.clone();
        f
    }

    /// TP degree as `u64` for workload builders.
    pub fn tp(&self) -> u64 {
        self.n_gpus as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_defaults_match_paper() {
        let c = SystemConfig::dgx_h100();
        assert_eq!(c.n_gpus, 8);
        assert_eq!(c.n_planes, 4);
        assert_eq!(c.gpu.sm_count, 66);
        assert_eq!(c.fabric.link_latency, SimDuration::from_ns(250));
    }

    #[test]
    fn fabric_config_follows_system_dims() {
        let mut c = SystemConfig::dgx_h100();
        c.n_gpus = 16;
        let f = c.fabric_config();
        assert_eq!(f.n_gpus, 16);
        assert_eq!(c.tp(), 16);
    }
}
