//! NVLS collective kernels built on `multimem` operations.
//!
//! These are the paper's communication-centric baselines: each collective
//! is its own kernel; producers and consumers synchronize with it through
//! kernel-level (global) barriers, which is exactly the isolation CAIS
//! removes.

use crate::ring::{global_chunks, CollOutput, InputTiles};
use cais_engine::{IdAlloc, PlannedKernel, Program, SystemConfig};
use gpu_sim::{KernelCost, KernelDesc, MemOp, MemOpKind, Phase, TbDesc};
use sim_core::{GpuId, KernelId, SimDuration, TileId};

fn deps_for(input: Option<&InputTiles>, gpu: usize, gidx: usize) -> Vec<TileId> {
    input
        .map(|i| i[gpu].get(gidx).cloned().unwrap_or_default())
        .unwrap_or_default()
}

fn finish_kernels(
    prog: &mut Program,
    ids: &mut IdAlloc,
    name: &str,
    after: &[KernelId],
    tbs: Vec<Vec<TbDesc>>,
) -> Vec<KernelId> {
    let mut kernel_ids = Vec::new();
    for (gpu, tbs) in tbs.into_iter().enumerate() {
        let kid = ids.kernel();
        kernel_ids.push(kid);
        let mut desc = KernelDesc::new(kid, format!("coll.{name}.g{gpu}"), tbs);
        desc.tbs_auto_ready = false;
        desc.ordered = true;
        prog.push(PlannedKernel {
            gpu: GpuId(gpu as u16),
            desc,
            after: after.to_vec(),
        });
    }
    kernel_ids
}

/// NVLS AllGather via `multimem.st` push multicast.
///
/// Each GPU pushes its shard once; the switch replicates to the other
/// `p - 1` GPUs. Upstream traffic per GPU is `shard`, downstream is
/// `(p-1)/p` of the tensor — the paper's Fig. 10(b) asymmetry.
pub fn nvls_all_gather(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    _cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    let chunks = global_chunks(bytes_full, p, cfg.coll_chunk_bytes);
    let mut tbs: Vec<Vec<TbDesc>> = (0..p).map(|_| Vec::new()).collect();
    let mut order = vec![0u64; p];
    let mut out_tiles: Vec<Vec<TileId>> = (0..p).map(|_| Vec::new()).collect();
    let mut chunk_arrivals: Vec<Vec<Option<TileId>>> = Vec::with_capacity(chunks.len());

    for (gidx, &(o, _off, len)) in chunks.iter().enumerate() {
        let tile = ids.tile();
        for t in out_tiles.iter_mut() {
            t.push(tile);
        }
        chunk_arrivals.push(vec![Some(tile); p]);
        let addr = ids.addr(GpuId(o as u16), len);
        // Pusher TB on the origin: read the chunk, push it once, publish
        // the local copy.
        let id = ids.tb();
        tbs[o].push(TbDesc {
            id,
            order_key: order[o],
            group: None,
            pre_launch_sync: false,
            phases: vec![
                Phase::Compute(SimDuration::from_ns(200)),
                Phase::IssueMem {
                    ops: vec![MemOp {
                        kind: MemOpKind::MulticastStore,
                        addr,
                        bytes: len,
                        cais: false,
                        tile: Some(tile),
                    }],
                    wait: false,
                },
                Phase::SignalTile(tile),
            ],
        });
        order[o] += 1;
        prog.tb_ready_deps.insert(id, deps_for(input, o, gidx));
        // Waiter TBs on every other GPU so kernel completion means the
        // gathered data arrived there.
        for (g, ord) in order.iter_mut().enumerate() {
            if g != o {
                let wid = ids.tb();
                tbs[g].push(TbDesc {
                    id: wid,
                    order_key: *ord,
                    group: None,
                    pre_launch_sync: false,
                    phases: vec![Phase::Compute(SimDuration::from_ns(100))],
                });
                *ord += 1;
                prog.tb_ready_deps.insert(wid, vec![tile]);
            }
        }
    }
    let kernel_ids = finish_kernels(prog, ids, name, after, tbs);
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks,
        chunk_arrivals,
    }
}

/// NVLS ReduceScatter via `multimem.ld_reduce` pull.
///
/// Each GPU pulls its own shard: the switch fetches the chunk from every
/// peer, reduces in flight and responds. Upstream per GPU is
/// `(p-1)/p` of the tensor, downstream is `shard` — Fig. 10(a).
pub fn nvls_reduce_scatter(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    _cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    let chunks = global_chunks(bytes_full, p, cfg.coll_chunk_bytes);
    let mut tbs: Vec<Vec<TbDesc>> = (0..p).map(|_| Vec::new()).collect();
    let mut order = vec![0u64; p];
    let mut out_tiles: Vec<Vec<TileId>> = (0..p).map(|_| Vec::new()).collect();

    let mut chunk_arrivals: Vec<Vec<Option<TileId>>> = Vec::with_capacity(chunks.len());
    for (gidx, &(g, _off, len)) in chunks.iter().enumerate() {
        let tile = ids.tile();
        out_tiles[g].push(tile);
        let mut arr: Vec<Option<TileId>> = vec![None; p];
        arr[g] = Some(tile);
        chunk_arrivals.push(arr);
        let addr = ids.addr(GpuId(g as u16), len);
        let id = ids.tb();
        tbs[g].push(TbDesc {
            id,
            order_key: order[g],
            group: None,
            pre_launch_sync: false,
            phases: vec![
                // Pull the reduced remote partials, then fold in the local
                // partial.
                Phase::IssueMem {
                    ops: vec![MemOp {
                        kind: MemOpKind::LoadReduce,
                        addr,
                        bytes: len,
                        cais: false,
                        tile: Some(tile),
                    }],
                    wait: true,
                },
                Phase::Compute(SimDuration::from_ns(400)),
            ],
        });
        order[g] += 1;
        prog.tb_ready_deps.insert(id, deps_for(input, g, gidx));
    }
    let kernel_ids = finish_kernels(prog, ids, name, after, tbs);
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks,
        chunk_arrivals,
    }
}

/// NVLS AllReduce via `multimem.red` push reduction.
///
/// Every GPU pushes its full partial once; the switch reduces and
/// multicasts the sum back to all GPUs. Per-GPU traffic is `size` in each
/// direction — about half of a ring AllReduce.
pub fn nvls_all_reduce(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    _cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    // For AllReduce the whole tensor is pushed by everyone; chunk the full
    // tensor rather than shards (shard layout is irrelevant here).
    let chunks: Vec<(usize, u64, u64)> =
        cais_engine::lower::chunk_ranges(bytes_full, cfg.coll_chunk_bytes)
            .into_iter()
            .map(|(off, len)| (0usize, off, len))
            .collect();
    let mut tbs: Vec<Vec<TbDesc>> = (0..p).map(|_| Vec::new()).collect();
    let mut order = vec![0u64; p];
    let mut out_tiles: Vec<Vec<TileId>> = (0..p).map(|_| Vec::new()).collect();

    let mut chunk_arrivals: Vec<Vec<Option<TileId>>> = Vec::with_capacity(chunks.len());
    for (gidx, &(_, _off, len)) in chunks.iter().enumerate() {
        let tile = ids.tile();
        for t in out_tiles.iter_mut() {
            t.push(tile);
        }
        chunk_arrivals.push(vec![Some(tile); p]);
        // A multimem address: contributions from all GPUs converge on it.
        let addr = ids.addr(GpuId((gidx % p) as u16), len);
        for g in 0..p {
            // Push TB: contribute the local partial (fire-and-forget).
            let id = ids.tb();
            tbs[g].push(TbDesc {
                id,
                order_key: order[g],
                group: None,
                pre_launch_sync: false,
                phases: vec![
                    Phase::Compute(SimDuration::from_ns(200)),
                    Phase::IssueMem {
                        ops: vec![MemOp {
                            kind: MemOpKind::RemoteReduce,
                            addr,
                            bytes: len,
                            cais: false,
                            tile: Some(tile),
                        }],
                        wait: false,
                    },
                ],
            });
            order[g] += 1;
            prog.tb_ready_deps.insert(id, deps_for(input, g, gidx));
            // Waiter TB: the reduced result has landed on this GPU.
            let wid = ids.tb();
            tbs[g].push(TbDesc {
                id: wid,
                order_key: order[g],
                group: None,
                pre_launch_sync: false,
                phases: vec![Phase::Compute(SimDuration::from_ns(100))],
            });
            order[g] += 1;
            prog.tb_ready_deps.insert(wid, vec![tile]);
        }
    }
    let kernel_ids = finish_kernels(prog, ids, name, after, tbs);
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks,
        chunk_arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::NvlsLogic;
    use cais_engine::{ExecReport, SystemSim};
    use gpu_sim::GpuConfig;
    use noc_sim::Direction;

    fn cfg(n: usize) -> SystemConfig {
        let mut c = SystemConfig::dgx_h100();
        c.n_gpus = n;
        c.n_planes = 1;
        c.fabric = noc_sim::FabricConfig::default_for(n, 1);
        c.gpu.dispatch_jitter = SimDuration::ZERO;
        c.gpu.launch_skew = SimDuration::ZERO;
        c.gpu.compute_jitter = SimDuration::ZERO;
        c.coll_chunk_bytes = 64 * 1024;
        c
    }

    fn run_coll(
        build: impl Fn(&mut Program, &mut IdAlloc, &SystemConfig, &KernelCost) -> CollOutput,
        n: usize,
    ) -> ExecReport {
        let c = cfg(n);
        let cost = KernelCost::new(&GpuConfig::h100_half());
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(n);
        build(&mut prog, &mut ids, &c, &cost);
        SystemSim::new(c, prog, Box::new(NvlsLogic::new(n)))
            .run()
            .expect("run completes")
    }

    #[test]
    fn nvls_ag_pushes_each_shard_once() {
        let n = 4;
        let bytes = 4 * 256 * 1024u64;
        let report = run_coll(
            |p, ids, c, cost| nvls_all_gather(p, ids, c, cost, "ag", bytes, &[], None),
            n,
        );
        // Upstream: each shard crosses its origin's up-link exactly once.
        let up = report.fabric.bytes_dir(Direction::Up);
        let down = report.fabric.bytes_dir(Direction::Down);
        let ratio_up = up as f64 / bytes as f64;
        assert!((0.95..=1.10).contains(&ratio_up), "up {up} vs {bytes}");
        // Downstream: every GPU receives the other p-1 shards.
        let expect_down = bytes / n as u64 * (n as u64 - 1) * n as u64;
        let ratio_down = down as f64 / expect_down as f64;
        assert!(
            (0.95..=1.10).contains(&ratio_down),
            "down {down} vs {expect_down}"
        );
    }

    #[test]
    fn nvls_rs_is_upstream_heavy() {
        let n = 4;
        let bytes = 4 * 256 * 1024u64;
        let report = run_coll(
            |p, ids, c, cost| nvls_reduce_scatter(p, ids, c, cost, "rs", bytes, &[], None),
            n,
        );
        let up = report.fabric.bytes_dir(Direction::Up);
        let down = report.fabric.bytes_dir(Direction::Down);
        // Up: (p-1) fetched contributions per shard; down: the reduced
        // shard (plus small fetch-request headers).
        assert!(
            up as f64 > 2.5 * down as f64,
            "expected asymmetric traffic, up {up} down {down}"
        );
    }

    #[test]
    fn nvls_ar_halves_ring_traffic() {
        let n = 4;
        let bytes = 4 * 256 * 1024u64;
        let report = run_coll(
            |p, ids, c, cost| nvls_all_reduce(p, ids, c, cost, "ar", bytes, &[], None),
            n,
        );
        let up = report.fabric.bytes_dir(Direction::Up);
        // Each GPU pushes the full tensor once: total up = p * bytes.
        let expect = bytes * n as u64;
        let ratio = up as f64 / expect as f64;
        assert!((0.95..=1.10).contains(&ratio), "up {up} vs {expect}");
        // Ring AR would cost 2 * (p-1)/p * bytes per GPU in each
        // direction; NVLS is ~1.5x cheaper at p=4 and approaches 2x for
        // large p.
    }

    #[test]
    fn nvls_ar_is_faster_than_ring_ar() {
        let n = 4;
        let bytes = 16 * 1024 * 1024u64;
        let nvls = run_coll(
            |p, ids, c, cost| nvls_all_reduce(p, ids, c, cost, "ar", bytes, &[], None),
            n,
        );
        let c = cfg(n);
        let cost = KernelCost::new(&GpuConfig::h100_half());
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(n);
        crate::ring::ring_all_reduce(&mut prog, &mut ids, &c, &cost, "ar", bytes, &[], None);
        let ring = SystemSim::new(c, prog, Box::new(noc_sim::PureRouter))
            .run()
            .expect("run completes");
        let speedup = ring.total.as_secs_f64() / nvls.total.as_secs_f64();
        assert!(
            speedup > 1.2,
            "NVLS AR should clearly beat ring AR, got {speedup:.2}x"
        );
    }
}
