//! NVLink SHARP (NVLS) style in-switch collectives and GPU-driven ring
//! baselines.
//!
//! Two halves:
//!
//! * [`NvlsLogic`] — the switch-resident datapath: `multimem.st` push
//!   multicast, `multimem.red` push reduction (reduce-and-multicast), and
//!   `multimem.ld_reduce` pull reduction (fetch-from-peers, reduce
//!   in-flight, respond). This reproduces the *communication-centric*
//!   in-switch computing the paper contrasts CAIS against.
//! * Lowering helpers that turn logical collectives into communication
//!   kernels: [`ring`] (GPU-driven NCCL-style ring AllGather /
//!   ReduceScatter / AllReduce used by the non-NVLS baselines) and
//!   [`push`] (NVLS collective kernels built on `multimem` operations).
//!
//! Both lowerings expose *output tiles* so overlap-capable strategies
//! (CoCoNet chunking, T3 fusion) can consume collective results at chunk
//! granularity instead of waiting for kernel completion.

#![warn(missing_docs)]
// The lowering entry points mirror kernel-launch parameter lists
// (program, ids, gpu, buffers, chunking, deps); a bundling struct would
// only rename the launch signature.
#![allow(clippy::too_many_arguments)]

pub mod logic;
pub mod push;
pub mod ring;

pub use logic::NvlsLogic;
pub use push::{nvls_all_gather, nvls_all_reduce, nvls_reduce_scatter};
pub use ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter, CollOutput, InputTiles};
