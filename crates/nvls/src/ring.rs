//! GPU-driven ring collectives (the non-NVLS transport).
//!
//! These reproduce NCCL-style ring schedules as communication kernels:
//! chunks travel GPU-to-GPU through the switch (which only routes), with
//! per-chunk dependencies so chunks pipeline across ring steps. Used by
//! the CoCoNet / FuseLib / T3 / LADM baselines.

use cais_engine::{IdAlloc, PlannedKernel, Program, SystemConfig};
use gpu_sim::{KernelCost, KernelDesc, MemOp, MemOpKind, Phase, TbDesc};
use sim_core::{GpuId, KernelId, SimDuration, TileId};

/// Chunk-level input gating: `input[gpu][global_chunk]` lists the tiles
/// that must be present on `gpu` before it contributes that chunk.
pub type InputTiles = Vec<Vec<Vec<TileId>>>;

/// Result of lowering one collective.
#[derive(Debug, Clone)]
pub struct CollOutput {
    /// One kernel per GPU (sender + waiter TBs).
    pub kernel_ids: Vec<KernelId>,
    /// Per GPU: tiles that mark that GPU's share of the output complete.
    pub out_tiles: Vec<Vec<TileId>>,
    /// Chunk geometry used: `(shard, offset_in_shard, len)` per global
    /// chunk, shared with producers that want chunk-level overlap.
    pub chunks: Vec<(usize, u64, u64)>,
    /// Per chunk and GPU: the tile marking that chunk's output present on
    /// that GPU (`None` where the data is local from the start or the GPU
    /// never receives it, e.g. non-owners in a ReduceScatter).
    pub chunk_arrivals: Vec<Vec<Option<TileId>>>,
}

/// Splits `bytes_full` into per-GPU shards, then into chunks of at most
/// `chunk` bytes. Returns `(shard, offset, len)` per global chunk index.
pub fn global_chunks(bytes_full: u64, p: usize, chunk: u64) -> Vec<(usize, u64, u64)> {
    assert!(p >= 1 && chunk > 0);
    let base = bytes_full / p as u64;
    let rem = bytes_full % p as u64;
    let mut out = Vec::new();
    for shard in 0..p {
        let len = base + if (shard as u64) < rem { 1 } else { 0 };
        for (off, l) in cais_engine::lower::chunk_ranges(len, chunk) {
            out.push((shard, off, l));
        }
    }
    out
}

/// Per-hop copy cost for a comm TB. The wire serialization already
/// accounts for moving the bytes; this only models kernel-side staging,
/// so it is a small fixed cost (NCCL-style persistent-kernel step).
fn copy_time(_cost: &KernelCost, _len: u64) -> SimDuration {
    SimDuration::from_ns(200)
}

/// Per-hop accumulate cost (elementwise add at HBM speed is trivially
/// fast relative to the link; keep a small fixed charge).
fn add_time(_cost: &KernelCost, _len: u64) -> SimDuration {
    SimDuration::from_ns(400)
}

fn deps_for(input: Option<&InputTiles>, gpu: usize, gidx: usize) -> Vec<TileId> {
    input
        .map(|i| i[gpu].get(gidx).cloned().unwrap_or_default())
        .unwrap_or_default()
}

struct KernelBuilder {
    tbs: Vec<Vec<TbDesc>>,
    order: Vec<u64>,
}

impl KernelBuilder {
    fn new(p: usize) -> KernelBuilder {
        KernelBuilder {
            tbs: (0..p).map(|_| Vec::new()).collect(),
            order: vec![0; p],
        }
    }

    fn push(
        &mut self,
        prog: &mut Program,
        ids: &mut IdAlloc,
        gpu: usize,
        phases: Vec<Phase>,
        deps: Vec<TileId>,
    ) {
        let id = ids.tb();
        let order_key = self.order[gpu];
        self.order[gpu] += 1;
        self.tbs[gpu].push(TbDesc {
            id,
            order_key,
            group: None,
            pre_launch_sync: false,
            phases,
        });
        prog.tb_ready_deps.insert(id, deps);
    }

    fn finish(
        self,
        prog: &mut Program,
        ids: &mut IdAlloc,
        name: &str,
        after: &[KernelId],
    ) -> Vec<KernelId> {
        let mut kernel_ids = Vec::new();
        for (gpu, tbs) in self.tbs.into_iter().enumerate() {
            let kid = ids.kernel();
            kernel_ids.push(kid);
            let mut desc = KernelDesc::new(kid, format!("coll.{name}.g{gpu}"), tbs);
            desc.tbs_auto_ready = false;
            desc.ordered = true;
            prog.push(PlannedKernel {
                gpu: GpuId(gpu as u16),
                desc,
                after: after.to_vec(),
            });
        }
        kernel_ids
    }
}

/// Lowers a ring AllGather of a `bytes_full` tensor.
///
/// Each GPU `o` owns shard `o`; after `p - 1` ring steps every GPU holds
/// every shard. `input[o][gidx]` gates the injection of shard `o`'s
/// chunks (chunk-level producer overlap); `after` adds kernel-level
/// launch dependencies.
pub fn ring_all_gather(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    let chunks = global_chunks(bytes_full, p, cfg.coll_chunk_bytes);
    let mut kb = KernelBuilder::new(p);
    let mut out_tiles: Vec<Vec<TileId>> = (0..p).map(|_| Vec::new()).collect();
    let mut chunk_arrivals: Vec<Vec<Option<TileId>>> = Vec::with_capacity(chunks.len());

    for (gidx, &(o, _off, len)) in chunks.iter().enumerate() {
        // Arrival tile at each holder other than the origin.
        let mut arrival: Vec<Option<TileId>> = vec![None; p];
        for (g, slot) in arrival.iter_mut().enumerate() {
            if g != o {
                let t = ids.tile();
                *slot = Some(t);
                out_tiles[g].push(t);
            }
        }
        for s in 0..p - 1 {
            let sender = (o + s) % p;
            let receiver = (o + s + 1) % p;
            let deps = if s == 0 {
                deps_for(input, o, gidx)
            } else {
                vec![arrival[sender].expect("non-origin holder has arrival tile")]
            };
            let addr = ids.addr(GpuId(receiver as u16), len);
            kb.push(
                prog,
                ids,
                sender,
                vec![
                    Phase::Compute(copy_time(cost, len)),
                    Phase::IssueMem {
                        ops: vec![MemOp {
                            kind: MemOpKind::RemoteWrite,
                            addr,
                            bytes: len,
                            cais: false,
                            tile: arrival[receiver],
                        }],
                        wait: false,
                    },
                ],
                deps,
            );
        }
        // Waiter TBs: kernel completion on each GPU means its gathered
        // data actually arrived, not merely that its sends were issued.
        for (g, t) in arrival.iter().enumerate() {
            if let Some(t) = t {
                kb.push(
                    prog,
                    ids,
                    g,
                    vec![Phase::Compute(SimDuration::from_ns(100))],
                    vec![*t],
                );
            }
        }
        chunk_arrivals.push(arrival);
    }
    let kernel_ids = kb.finish(prog, ids, name, after);
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks,
        chunk_arrivals,
    }
}

/// Lowers a ring ReduceScatter of a `bytes_full` tensor of partials.
///
/// Each GPU ends with the fully reduced shard of its own index.
/// `input[g][gidx]` gates GPU `g`'s local partial for the chunk.
pub fn ring_reduce_scatter(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    let chunks = global_chunks(bytes_full, p, cfg.coll_chunk_bytes);
    let mut kb = KernelBuilder::new(p);
    let mut out_tiles: Vec<Vec<TileId>> = (0..p).map(|_| Vec::new()).collect();
    let mut chunk_arrivals: Vec<Vec<Option<TileId>>> = Vec::with_capacity(chunks.len());

    for (gidx, &(t, _off, len)) in chunks.iter().enumerate() {
        // The running partial for shard `t` travels (t+1) -> (t+2) -> ...
        // -> t, accumulating one local partial per hop; GPU `t` folds in
        // its own partial last.
        let mut arrival: Vec<Option<TileId>> = vec![None; p];
        for h in 0..p - 1 {
            let sender = (t + 1 + h) % p;
            let receiver = (sender + 1) % p;
            let arr = ids.tile();
            arrival[receiver] = Some(arr);
            let mut deps = deps_for(input, sender, gidx);
            if h > 0 {
                deps.push(arrival[sender].expect("mid-ring sender has arrival"));
            }
            let addr = ids.addr(GpuId(receiver as u16), len);
            kb.push(
                prog,
                ids,
                sender,
                vec![
                    Phase::Compute(add_time(cost, len)),
                    Phase::IssueMem {
                        ops: vec![MemOp {
                            kind: MemOpKind::RemoteWrite,
                            addr,
                            bytes: len,
                            cais: false,
                            tile: Some(arr),
                        }],
                        wait: false,
                    },
                ],
                deps,
            );
        }
        // Final accumulation at the shard owner.
        let out = ids.tile();
        out_tiles[t].push(out);
        let mut deps = deps_for(input, t, gidx);
        deps.push(arrival[t].expect("owner receives the running partial"));
        kb.push(
            prog,
            ids,
            t,
            vec![Phase::Compute(add_time(cost, len)), Phase::SignalTile(out)],
            deps,
        );
        let mut arr: Vec<Option<TileId>> = vec![None; p];
        arr[t] = Some(out);
        chunk_arrivals.push(arr);
    }
    let kernel_ids = kb.finish(prog, ids, name, after);
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks,
        chunk_arrivals,
    }
}

/// Lowers a ring AllReduce as ReduceScatter followed by AllGather, with
/// the AllGather consuming RS output at chunk granularity.
pub fn ring_all_reduce(
    prog: &mut Program,
    ids: &mut IdAlloc,
    cfg: &SystemConfig,
    cost: &KernelCost,
    name: &str,
    bytes_full: u64,
    after: &[KernelId],
    input: Option<&InputTiles>,
) -> CollOutput {
    let p = cfg.n_gpus;
    let rs = ring_reduce_scatter(
        prog,
        ids,
        cfg,
        cost,
        &format!("{name}.rs"),
        bytes_full,
        after,
        input,
    );
    // Gate AG injection of shard o's chunks on the RS output at GPU o.
    let mut ag_input: InputTiles = (0..p).map(|_| vec![Vec::new(); rs.chunks.len()]).collect();
    let mut per_shard_seen = vec![0usize; p];
    for (gidx, &(shard, _, _)) in rs.chunks.iter().enumerate() {
        let tile = rs.out_tiles[shard][per_shard_seen[shard]];
        per_shard_seen[shard] += 1;
        ag_input[shard][gidx] = vec![tile];
    }
    let ag = ring_all_gather(
        prog,
        ids,
        cfg,
        cost,
        &format!("{name}.ag"),
        bytes_full,
        after,
        Some(&ag_input),
    );
    let mut out_tiles = rs.out_tiles;
    for (g, tiles) in ag.out_tiles.into_iter().enumerate() {
        out_tiles[g].extend(tiles);
    }
    let mut kernel_ids = rs.kernel_ids;
    kernel_ids.extend(ag.kernel_ids);
    // After AllReduce every GPU holds every chunk: the shard owner via
    // its RS output, the rest via AG arrival.
    let chunk_arrivals = rs
        .chunk_arrivals
        .iter()
        .zip(&ag.chunk_arrivals)
        .map(|(rsa, aga)| {
            rsa.iter()
                .zip(aga)
                .map(|(r, a)| r.or(*a))
                .collect::<Vec<_>>()
        })
        .collect();
    CollOutput {
        kernel_ids,
        out_tiles,
        chunks: rs.chunks,
        chunk_arrivals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cais_engine::SystemSim;
    use gpu_sim::GpuConfig;
    use noc_sim::{Direction, PureRouter};

    fn cfg(n: usize) -> SystemConfig {
        let mut c = SystemConfig::dgx_h100();
        c.n_gpus = n;
        c.n_planes = 1;
        c.fabric = noc_sim::FabricConfig::default_for(n, 1);
        c.gpu.dispatch_jitter = SimDuration::ZERO;
        c.gpu.launch_skew = SimDuration::ZERO;
        c.gpu.compute_jitter = SimDuration::ZERO;
        c.coll_chunk_bytes = 64 * 1024;
        c
    }

    fn run_coll(
        build: impl Fn(&mut Program, &mut IdAlloc, &SystemConfig, &KernelCost) -> CollOutput,
        n: usize,
    ) -> (cais_engine::ExecReport, usize) {
        let c = cfg(n);
        let cost = KernelCost::new(&GpuConfig::h100_half());
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(n);
        let out = build(&mut prog, &mut ids, &c, &cost);
        let n_tiles: usize = out.out_tiles.iter().map(|v| v.len()).sum();
        (
            SystemSim::new(c, prog, Box::new(PureRouter))
                .run()
                .expect("run completes"),
            n_tiles,
        )
    }

    #[test]
    fn global_chunks_cover_tensor() {
        let chunks = global_chunks(1_000_000, 8, 64 * 1024);
        let total: u64 = chunks.iter().map(|(_, _, l)| l).sum();
        assert_eq!(total, 1_000_000);
        // All 8 shards present.
        let shards: std::collections::HashSet<usize> = chunks.iter().map(|&(s, _, _)| s).collect();
        assert_eq!(shards.len(), 8);
    }

    #[test]
    fn all_gather_completes_and_moves_expected_bytes() {
        let n = 4;
        let bytes = 4 * 256 * 1024u64;
        let (report, tiles) = run_coll(
            |p, ids, c, cost| ring_all_gather(p, ids, c, cost, "ag", bytes, &[], None),
            n,
        );
        // Each GPU receives p-1 shards, 4 chunks each (256KiB/64KiB).
        assert_eq!(tiles, n * (n - 1) * 4);
        // Ring AG payload: every chunk crosses p-1 up-links.
        let expect = bytes / n as u64 * (n as u64 - 1) * n as u64;
        let got = report.fabric.bytes_dir(Direction::Up);
        let ratio = got as f64 / expect as f64;
        assert!(
            (0.95..=1.10).contains(&ratio),
            "up bytes {got} vs expected {expect}"
        );
    }

    #[test]
    fn reduce_scatter_completes_with_own_shard_output() {
        let n = 4;
        let bytes = 4 * 300 * 1024u64;
        let (report, tiles) = run_coll(
            |p, ids, c, cost| ring_reduce_scatter(p, ids, c, cost, "rs", bytes, &[], None),
            n,
        );
        // Each GPU ends with its own shard's chunks: 300KiB / 64KiB = 5.
        assert_eq!(tiles, n * 5);
        let expect = bytes / n as u64 * (n as u64 - 1) * n as u64;
        let got = report.fabric.bytes_dir(Direction::Up);
        let ratio = got as f64 / expect as f64;
        assert!(
            (0.95..=1.10).contains(&ratio),
            "up bytes {got} vs expected {expect}"
        );
    }

    #[test]
    fn all_reduce_moves_double_the_volume() {
        let n = 4;
        let bytes = 4 * 256 * 1024u64;
        let (report, _) = run_coll(
            |p, ids, c, cost| ring_all_reduce(p, ids, c, cost, "ar", bytes, &[], None),
            n,
        );
        let expect = 2 * bytes / n as u64 * (n as u64 - 1) * n as u64;
        let got = report.fabric.bytes_dir(Direction::Up);
        let ratio = got as f64 / expect as f64;
        assert!(
            (0.95..=1.10).contains(&ratio),
            "up bytes {got} vs expected {expect}"
        );
    }

    #[test]
    fn chunked_pipelining_beats_tiny_chunks_in_step_count() {
        // Sanity: chunk geometry respects the configured chunk size.
        let chunks = global_chunks(8 * 1024 * 1024, 8, 512 * 1024);
        assert_eq!(chunks.len(), 8 * 2);
        for &(_, _, l) in &chunks {
            assert!(l <= 512 * 1024);
        }
    }
}
