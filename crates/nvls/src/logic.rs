//! The NVLS switch datapath: multicast and in-switch reduction.

use cais_engine::Msg;
use noc_sim::{Packet, SwitchCtx, SwitchLogic};
use sim_core::{Addr, FastHash, GpuId, SimTime, TbId, TileId};
use std::collections::HashMap;

#[derive(Debug)]
struct ReduceSession {
    contribs: u32,
    bytes: u64,
    tile: Option<TileId>,
}

#[derive(Debug)]
struct PullSession {
    requester: GpuId,
    tb: TbId,
    tile: Option<TileId>,
    bytes: u64,
    remaining: u32,
}

/// NVLink SHARP switch behaviour (paper Sec. II-B/II-C).
///
/// * `multimem.st` ([`Msg::MulticastStore`]): replicate to every GPU
///   except the source (push-mode AllGather).
/// * `multimem.red` ([`Msg::Reduce`] with `cais = false`): accumulate all
///   GPUs' contributions for an address, then multicast the sum to every
///   GPU (push-mode AllReduce).
/// * `multimem.ld_reduce` ([`Msg::LoadReduceReq`]): fetch the chunk from
///   every other GPU, reduce in flight, respond to the requester
///   (pull-mode ReduceScatter).
///
/// Everything else is forwarded unchanged, so this logic composes with
/// point-to-point traffic.
#[derive(Debug)]
pub struct NvlsLogic {
    n_gpus: u32,
    reduce_sessions: HashMap<Addr, ReduceSession, FastHash>,
    pull_sessions: HashMap<u64, PullSession, FastHash>,
    multicasts: u64,
    reductions: u64,
    pulls: u64,
}

impl NvlsLogic {
    /// Creates the logic for an `n_gpus` system.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus < 2`.
    pub fn new(n_gpus: usize) -> NvlsLogic {
        assert!(n_gpus >= 2, "NVLS needs at least two GPUs");
        NvlsLogic {
            n_gpus: n_gpus as u32,
            reduce_sessions: HashMap::default(),
            pull_sessions: HashMap::default(),
            multicasts: 0,
            reductions: 0,
            pulls: 0,
        }
    }

    /// Number of completed in-switch reductions.
    pub fn reductions(&self) -> u64 {
        self.reductions
    }
}

impl SwitchLogic<Msg> for NvlsLogic {
    fn on_packet(&mut self, _now: SimTime, pkt: Packet<Msg>, ctx: &mut SwitchCtx<Msg>) {
        match pkt.payload {
            Msg::MulticastStore {
                addr,
                bytes,
                src,
                tile,
            } => {
                self.multicasts += 1;
                for g in 0..self.n_gpus {
                    let dst = GpuId(g as u16);
                    if dst != src {
                        ctx.emit(
                            src,
                            dst,
                            Msg::Write {
                                addr,
                                bytes,
                                src,
                                tile,
                                contrib: false,
                            },
                        );
                    }
                }
            }
            Msg::Reduce {
                addr,
                bytes,
                contribs,
                tile,
                cais: false,
                ..
            } => {
                let session = self.reduce_sessions.entry(addr).or_insert(ReduceSession {
                    contribs: 0,
                    bytes,
                    tile,
                });
                session.contribs += contribs;
                if session.contribs >= self.n_gpus {
                    let session = self.reduce_sessions.remove(&addr).expect("session exists");
                    self.reductions += 1;
                    let home = addr.home_gpu();
                    for g in 0..self.n_gpus {
                        ctx.emit(
                            home,
                            GpuId(g as u16),
                            Msg::Write {
                                addr,
                                bytes: session.bytes,
                                src: home,
                                tile: session.tile,
                                contrib: false,
                            },
                        );
                    }
                }
            }
            Msg::LoadReduceReq {
                addr,
                bytes,
                requester,
                tb,
                tile,
            } => {
                self.pulls += 1;
                let session = addr.0;
                let prev = self.pull_sessions.insert(
                    session,
                    PullSession {
                        requester,
                        tb,
                        tile,
                        bytes,
                        remaining: self.n_gpus - 1,
                    },
                );
                assert!(prev.is_none(), "duplicate ld_reduce session for {addr}");
                for g in 0..self.n_gpus {
                    let target = GpuId(g as u16);
                    if target != requester {
                        ctx.emit(
                            requester,
                            target,
                            Msg::FetchReq {
                                addr,
                                bytes,
                                target,
                                session,
                            },
                        );
                    }
                }
            }
            Msg::FetchResp { addr, session, .. } => {
                let done = {
                    let s = self
                        .pull_sessions
                        .get_mut(&session)
                        .expect("fetch response without session");
                    s.remaining -= 1;
                    s.remaining == 0
                };
                if done {
                    let s = self.pull_sessions.remove(&session).expect("exists");
                    ctx.emit(
                        addr.home_gpu(),
                        s.requester,
                        Msg::LoadResp {
                            addr,
                            bytes: s.bytes,
                            requester: s.requester,
                            tb: s.tb,
                            tile: s.tile,
                        },
                    );
                }
            }
            _ => ctx.forward(pkt),
        }
    }

    fn audit_probe(&self, probe: &mut sim_core::AuditProbe) {
        probe.counter("nvls.multicasts", self.multicasts);
        probe.counter("nvls.reductions", self.reductions);
        probe.counter("nvls.pulls", self.pulls);
        probe.counter(
            "nvls.reduce_sessions_open",
            self.reduce_sessions.len() as u64,
        );
        probe.counter("nvls.pull_sessions_open", self.pull_sessions.len() as u64);
        if probe.is_quiescence() {
            probe.require_zero(
                "nvls",
                "quiescence: no reduce session still collecting contributions",
                self.reduce_sessions.len() as u64,
            );
            probe.require_zero(
                "nvls",
                "quiescence: no pull session still awaiting fetch responses",
                self.pull_sessions.len() as u64,
            );
        }
    }

    fn stats(&self) -> Vec<(String, f64)> {
        vec![
            ("nvls.multicasts".into(), self.multicasts as f64),
            ("nvls.reductions".into(), self.reductions as f64),
            ("nvls.pulls".into(), self.pulls as f64),
            (
                "nvls.open_sessions".into(),
                (self.reduce_sessions.len() + self.pull_sessions.len()) as f64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::{Fabric, FabricConfig};
    use sim_core::PlaneId;

    fn fabric(n: usize) -> Fabric<Msg, NvlsLogic> {
        Fabric::new(FabricConfig::default_for(n, 1), NvlsLogic::new(n))
    }

    #[test]
    fn multicast_reaches_all_but_source() {
        let mut f = fabric(4);
        let addr = Addr::new(GpuId(0), 0);
        f.inject(
            SimTime::ZERO,
            GpuId(0),
            GpuId(0),
            PlaneId(0),
            Msg::MulticastStore {
                addr,
                bytes: 4096,
                src: GpuId(0),
                tile: Some(TileId(7)),
            },
        );
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 3);
        let mut dsts: Vec<u16> = d.iter().map(|x| x.dst.0).collect();
        dsts.sort_unstable();
        assert_eq!(dsts, vec![1, 2, 3]);
        assert!(d.iter().all(|x| matches!(
            x.payload,
            Msg::Write {
                tile: Some(TileId(7)),
                ..
            }
        )));
    }

    #[test]
    fn push_reduction_waits_for_all_then_multicasts() {
        let n = 4;
        let mut f = fabric(n);
        let addr = Addr::new(GpuId(0), 128);
        for g in 0..n as u16 {
            f.inject(
                SimTime::from_ns(g as u64 * 100),
                GpuId(g),
                GpuId(0),
                PlaneId(0),
                Msg::Reduce {
                    addr,
                    bytes: 2048,
                    src: GpuId(g),
                    contribs: 1,
                    tile: Some(TileId(1)),
                    cais: false,
                },
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        // The reduced result is multicast to all four GPUs.
        assert_eq!(d.len(), 4);
        assert_eq!(f.logic().reductions(), 1);
        assert!(f
            .logic()
            .stats()
            .iter()
            .any(|(k, v)| k == "nvls.open_sessions" && *v == 0.0));
    }

    #[test]
    fn pull_reduction_fetches_from_peers() {
        let n = 4;
        let mut f = fabric(n);
        let addr = Addr::new(GpuId(2), 0);
        f.inject(
            SimTime::ZERO,
            GpuId(2),
            GpuId(2),
            PlaneId(0),
            Msg::LoadReduceReq {
                addr,
                bytes: 8192,
                requester: GpuId(2),
                tb: TbId(9),
                tile: Some(TileId(3)),
            },
        );
        // Drive: deliver FetchReqs to GPUs, answer them manually (the
        // engine normally does this).
        f.run_to_completion();
        let fetches = f.drain_deliveries();
        assert_eq!(fetches.len(), 3);
        for fetch in &fetches {
            let Msg::FetchReq {
                addr,
                bytes,
                session,
                ..
            } = fetch.payload
            else {
                panic!("expected FetchReq, got {:?}", fetch.payload);
            };
            f.inject(
                f.now(),
                fetch.dst,
                fetch.dst,
                PlaneId(0),
                Msg::FetchResp {
                    addr,
                    bytes,
                    src: fetch.dst,
                    session,
                },
            );
        }
        f.run_to_completion();
        let d = f.drain_deliveries();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].dst, GpuId(2));
        assert!(matches!(
            d[0].payload,
            Msg::LoadResp {
                tb: TbId(9),
                tile: Some(TileId(3)),
                ..
            }
        ));
    }

    #[test]
    fn unrelated_traffic_is_forwarded() {
        let mut f = fabric(2);
        let addr = Addr::new(GpuId(1), 0);
        f.inject(
            SimTime::ZERO,
            GpuId(0),
            GpuId(1),
            PlaneId(0),
            Msg::Write {
                addr,
                bytes: 64,
                src: GpuId(0),
                tile: None,
                contrib: false,
            },
        );
        f.run_to_completion();
        assert_eq!(f.drain_deliveries().len(), 1);
    }
}
