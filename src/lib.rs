//! Facade crate for the CAIS reproduction.
//!
//! Re-exports every layer of the system so examples and integration tests
//! can use a single dependency. See the individual crates for detail:
//!
//! * [`sim_core`] — discrete-event engine, time, ids, stats
//! * [`noc_sim`] — NVSwitch/NVLink interconnect model
//! * [`gpu_sim`] — thread-block-granularity GPU model
//! * [`nvls`] — NVLink SHARP style in-switch collectives + ring baselines
//! * [`llm_workload`] — transformer workload model and dataflow graphs
//! * [`cais_core`] — the paper's contribution: merge unit, TB coordination,
//!   graph-level dataflow optimizer
//! * [`cais_engine`] — system co-simulation engine
//! * [`cais_baselines`] — the nine comparison systems
//! * [`cais_harness`] — per-figure/table experiment harness

pub use cais_baselines as baselines;
pub use cais_core as core;
pub use cais_engine as engine;
pub use cais_harness as harness;
pub use gpu_sim;
pub use llm_workload;
pub use noc_sim;
pub use nvls;
pub use sim_core;
