//! Collective-transport microbenchmark: ring vs. NVLS AllReduce /
//! AllGather / ReduceScatter across message sizes on the simulated
//! DGX-H100 fabric.
//!
//! ```text
//! cargo run --release --example collective_microbench
//! ```

use cais::engine::{IdAlloc, Program, SystemConfig, SystemSim};
use cais::gpu_sim::KernelCost;
use cais::noc_sim::PureRouter;
use cais::nvls::{
    nvls_all_gather, nvls_all_reduce, nvls_reduce_scatter, ring_all_gather, ring_all_reduce,
    ring_reduce_scatter, NvlsLogic,
};
use cais::sim_core::SimDuration;

type Lower = fn(
    &mut Program,
    &mut IdAlloc,
    &SystemConfig,
    &KernelCost,
    &str,
    u64,
    &[sim_core::KernelId],
    Option<&cais::nvls::InputTiles>,
) -> cais::nvls::CollOutput;

fn run_collective(lower: Lower, bytes: u64, nvls: bool) -> SimDuration {
    let mut cfg = SystemConfig::dgx_h100();
    cfg.gpu.dispatch_jitter = SimDuration::from_us(1);
    cfg.gpu.launch_skew = SimDuration::from_us(2);
    let cost = KernelCost::new(&cfg.gpu);
    let mut prog = Program::new();
    let mut ids = IdAlloc::new(cfg.n_gpus);
    lower(&mut prog, &mut ids, &cfg, &cost, "coll", bytes, &[], None);
    let n = cfg.n_gpus;
    let report = if nvls {
        SystemSim::new(cfg, prog, Box::new(NvlsLogic::new(n))).run()
    } else {
        SystemSim::new(cfg, prog, Box::new(PureRouter)).run()
    };
    report.expect("run completes").total
}

fn main() {
    println!("collective transport on 8 GPUs, 450 GB/s/dir per GPU (4 planes)\n");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>9}",
        "size", "collective", "ring", "NVLS", "speedup"
    );
    let cases: Vec<(&str, Lower, Lower)> = vec![
        ("AllReduce", ring_all_reduce, nvls_all_reduce),
        ("AllGather", ring_all_gather, nvls_all_gather),
        ("ReduceScatter", ring_reduce_scatter, nvls_reduce_scatter),
    ];
    for mb in [8u64, 32, 128] {
        let bytes = mb << 20;
        for (name, ring, nvls) in &cases {
            let t_ring = run_collective(*ring, bytes, false);
            let t_nvls = run_collective(*nvls, bytes, true);
            println!(
                "{:>6}MB {:>14} {:>12} {:>12} {:>8.2}x",
                mb,
                name,
                t_ring.to_string(),
                t_nvls.to_string(),
                t_ring.as_secs_f64() / t_nvls.as_secs_f64()
            );
        }
    }
    println!("\n(the paper cites 2-8x NVLS gains for collective primitives; gains grow\n with message size as latency amortizes and the volume advantage dominates)");
}
