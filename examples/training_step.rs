//! A full tensor-parallel training step of one transformer layer,
//! compared across the paper's system roster (Fig. 11 setting).
//!
//! ```text
//! cargo run --release --example training_step [--paper]
//! ```
//!
//! By default runs a reduced Mega-GPT-4B layer for speed; `--paper` runs
//! the Table-I configuration.

use cais::baselines::{BaselineStrategy, LadmStrategy};
use cais::core::CaisStrategy;
use cais::engine::{strategy::execute, Strategy, SystemConfig};
use cais::llm_workload::{transformer_layer, ModelConfig, Pass, TpMode};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = SystemConfig::dgx_h100();
    let model = if paper {
        ModelConfig::mega_gpt_4b()
    } else {
        ModelConfig {
            hidden: 1024,
            ffn_hidden: 2048,
            heads: 8,
            seq_len: 512,
            batch: 4,
            ..ModelConfig::mega_gpt_4b()
        }
    };
    println!(
        "one training step (fwd+bwd) of a {} layer on {} GPUs\n",
        model.name, cfg.n_gpus
    );

    // (strategy, graph flavour it is designed for)
    let roster: Vec<(Box<dyn Strategy>, TpMode)> = vec![
        (Box::new(BaselineStrategy::tp_nvls()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::sp_nvls()), TpMode::SeqPar),
        (Box::new(BaselineStrategy::coconet_nvls()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::t3()), TpMode::SeqPar),
        (Box::new(LadmStrategy::new()), TpMode::SeqPar),
        (Box::new(CaisStrategy::base()), TpMode::SeqPar),
        (Box::new(CaisStrategy::full()), TpMode::SeqPar),
    ];

    let mut cais_time = None;
    let mut results = Vec::new();
    for (strategy, mode) in &roster {
        let dfg = transformer_layer(&model, cfg.tp(), *mode, Pass::Training);
        let report = execute(strategy.as_ref(), &dfg, &cfg).expect("run completes");
        if strategy.name() == "CAIS" {
            cais_time = Some(report.total);
        }
        results.push((strategy.name().to_string(), report));
    }
    let cais_time = cais_time.expect("CAIS in roster");

    println!(
        "{:<14} {:>12} {:>10} {:>10} {:>14}",
        "system", "step time", "SM occ", "link util", "CAIS speedup"
    );
    for (name, report) in &results {
        println!(
            "{:<14} {:>12} {:>9.1}% {:>9.1}% {:>13.2}x",
            name,
            report.total.to_string(),
            report.mean_occupancy() * 100.0,
            report.fabric.mean_utilization() * 100.0,
            report.total.as_secs_f64() / cais_time.as_secs_f64(),
        );
    }
    println!("\n(speedup column: how much faster CAIS finishes the same step)");
}
