//! Explore the switch Merging Table design space: capacity, timeout and
//! TB coordination, on one communication-heavy sub-layer.
//!
//! ```text
//! cargo run --release --example merge_table_explorer
//! ```

use cais::core::{CaisStrategy, CoordinationOpts};
use cais::engine::{strategy::execute, SystemConfig};
use cais::llm_workload::{sublayer, ModelConfig, SubLayer};
use cais::sim_core::SimDuration;

fn main() {
    let cfg = SystemConfig::dgx_h100();
    let model = ModelConfig {
        hidden: 2048,
        ffn_hidden: 5632,
        heads: 16,
        seq_len: 1536,
        batch: 2,
        ..ModelConfig::llama_7b()
    };
    let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
    println!(
        "sub-layer L2 on a scaled LLaMA config (hidden {})\n",
        model.hidden
    );

    println!(
        "{:>9} {:>14} {:>12} {:>10} {:>10} {:>10}",
        "table", "coordination", "time", "merged%", "evictions", "peak KB"
    );
    for kb in [10u64, 20, 40, 80, 160] {
        for (coord_name, opts) in [
            ("full", CoordinationOpts::full()),
            ("none", CoordinationOpts::none()),
        ] {
            let strategy = CaisStrategy::full()
                .with_coordination(coord_name, opts)
                .with_merge_table(Some(kb * 1024))
                .with_timeout(SimDuration::from_us(30));
            let r = execute(&strategy, &dfg, &cfg).expect("run completes");
            let reqs = r.stat("cais.load_requests").unwrap_or(0.0)
                + r.stat("cais.reduce_contribs").unwrap_or(0.0);
            let merged = r.stat("cais.loads_merged").unwrap_or(0.0)
                + (r.stat("cais.reduce_contribs").unwrap_or(0.0)
                    - r.stat("cais.reduce_flushes").unwrap_or(0.0));
            let evictions = r.stat("cais.evictions_lru").unwrap_or(0.0)
                + r.stat("cais.evictions_timeout").unwrap_or(0.0);
            println!(
                "{:>7}KB {:>14} {:>12} {:>9.1}% {:>10} {:>10.1}",
                kb,
                coord_name,
                r.total.to_string(),
                100.0 * merged / reqs.max(1.0),
                evictions,
                r.stat("cais.peak_port_occupancy").unwrap_or(0.0) / 1024.0,
            );
        }
    }
    println!("\n(the paper's Fig. 14: coordination keeps small tables effective; without\n it, evictions force re-fetches and partial flushes, degrading performance)");
}
