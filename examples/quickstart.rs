//! Quickstart: run one communication-heavy sub-layer under CAIS and
//! under the NVLS baseline, and print what the switch did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cais::baselines::BaselineStrategy;
use cais::core::CaisStrategy;
use cais::engine::{strategy::execute, SystemConfig};
use cais::llm_workload::{sublayer, ModelConfig, SubLayer};

fn main() {
    // The paper's main setup: 8 half-scale H100s on a 4-plane NVSwitch
    // fabric, LLaMA-7B dimensions (Table I).
    let cfg = SystemConfig::dgx_h100();
    let model = ModelConfig::llama_7b();

    // L1: output projection -> ReduceScatter -> LayerNorm -> AllGather ->
    // first FFN GEMM. This is the pattern CAIS fuses end-to-end.
    let dfg = sublayer(&model, cfg.tp(), SubLayer::L1);
    println!(
        "workload: {} sub-layer L1  ({} nodes, {:.1} GFLOP/GPU, {} MB of collectives)",
        model.name,
        dfg.len(),
        dfg.total_flops() / 1e9,
        dfg.total_collective_bytes() >> 20,
    );

    let nvls = execute(&BaselineStrategy::sp_nvls(), &dfg, &cfg).expect("run completes");
    println!("\nSP-NVLS (communication-centric in-switch computing):");
    println!("  end-to-end      {}", nvls.total);
    println!("  SM occupancy    {:.1}%", nvls.mean_occupancy() * 100.0);
    println!(
        "  link util       {:.1}%",
        nvls.fabric.mean_utilization() * 100.0
    );

    let cais = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
    println!("\nCAIS (compute-aware in-switch computing):");
    println!("  end-to-end      {}", cais.total);
    println!("  SM occupancy    {:.1}%", cais.mean_occupancy() * 100.0);
    println!(
        "  link util       {:.1}%",
        cais.fabric.mean_utilization() * 100.0
    );
    println!(
        "  merged loads    {} of {} requests",
        cais.stat("cais.loads_merged").unwrap_or(0.0),
        cais.stat("cais.load_requests").unwrap_or(0.0),
    );
    println!(
        "  reduce contribs {} merged into {} downstream writes",
        cais.stat("cais.reduce_contribs").unwrap_or(0.0),
        cais.stat("cais.reduce_flushes").unwrap_or(0.0),
    );
    if let Some(spread) = cais.mean_request_spread {
        println!("  request spread  {spread} (TB coordination at work)");
    }

    println!(
        "\n=> CAIS speedup over SP-NVLS: {:.2}x",
        cais.speedup_over(&nvls)
    );
}
