//! Determinism: identical configurations must produce bit-identical
//! simulation results, regardless of host hash randomization.

use cais::baselines::BaselineStrategy;
use cais::core::CaisStrategy;
use cais::engine::{strategy::execute, Strategy, SystemConfig};
use cais::llm_workload::{sublayer, ModelConfig, SubLayer};

fn small_model() -> ModelConfig {
    ModelConfig {
        hidden: 1024,
        ffn_hidden: 2048,
        heads: 8,
        seq_len: 512,
        batch: 1,
        ..ModelConfig::llama_7b()
    }
}

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::dgx_h100();
    cfg.n_gpus = 4;
    cfg.n_planes = 2;
    cfg.fabric = cais::noc_sim::FabricConfig::default_for(4, 2);
    cfg
}

fn run_twice(strategy: impl Fn() -> Box<dyn Strategy>) {
    let dfg = sublayer(&small_model(), 4, SubLayer::L1);
    let a = execute(strategy().as_ref(), &dfg, &cfg());
    let b = execute(strategy().as_ref(), &dfg, &cfg());
    assert_eq!(
        a.total, b.total,
        "{}: totals must be bit-identical across runs",
        strategy().name()
    );
    assert_eq!(a.gpu_occupancy, b.gpu_occupancy);
    assert_eq!(a.logic_stats, b.logic_stats);
    assert_eq!(a.deduped_fetches, b.deduped_fetches);
}

#[test]
fn cais_is_deterministic() {
    run_twice(|| Box::new(CaisStrategy::full()));
}

#[test]
fn cais_base_is_deterministic() {
    run_twice(|| Box::new(CaisStrategy::base()));
}

#[test]
fn nvls_baseline_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::sp_nvls()));
}

#[test]
fn ring_baseline_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::coconet()));
}

#[test]
fn t3_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::t3_nvls()));
}

#[test]
fn different_seeds_differ() {
    let dfg = sublayer(&small_model(), 4, SubLayer::L1);
    let a = execute(&CaisStrategy::full(), &dfg, &cfg());
    let mut cfg2 = cfg();
    cfg2.seed ^= 0xDEAD_BEEF;
    let b = execute(&CaisStrategy::full(), &dfg, &cfg2);
    assert_ne!(
        a.total, b.total,
        "jitter must actually depend on the seed"
    );
}
