//! Determinism: identical configurations must produce bit-identical
//! simulation results, regardless of host hash randomization.

use cais::baselines::BaselineStrategy;
use cais::core::CaisStrategy;
use cais::engine::{strategy::execute, Strategy, SystemConfig};
use cais::llm_workload::{sublayer, ModelConfig, SubLayer};
use cais::sim_core::SimDuration;

fn small_model() -> ModelConfig {
    ModelConfig {
        hidden: 1024,
        ffn_hidden: 2048,
        heads: 8,
        seq_len: 512,
        batch: 1,
        ..ModelConfig::llama_7b()
    }
}

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::dgx_h100();
    cfg.n_gpus = 4;
    cfg.n_planes = 2;
    cfg.fabric = cais::noc_sim::FabricConfig::default_for(4, 2);
    cfg
}

fn run_twice(strategy: impl Fn() -> Box<dyn Strategy>) {
    let dfg = sublayer(&small_model(), 4, SubLayer::L1);
    let a = execute(strategy().as_ref(), &dfg, &cfg()).expect("run completes");
    let b = execute(strategy().as_ref(), &dfg, &cfg()).expect("run completes");
    assert_eq!(
        a.total,
        b.total,
        "{}: totals must be bit-identical across runs",
        strategy().name()
    );
    assert_eq!(a.gpu_occupancy, b.gpu_occupancy);
    assert_eq!(a.logic_stats, b.logic_stats);
    assert_eq!(a.deduped_fetches, b.deduped_fetches);
}

#[test]
fn cais_is_deterministic() {
    run_twice(|| Box::new(CaisStrategy::full()));
}

#[test]
fn cais_base_is_deterministic() {
    run_twice(|| Box::new(CaisStrategy::base()));
}

#[test]
fn nvls_baseline_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::sp_nvls()));
}

#[test]
fn ring_baseline_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::coconet()));
}

#[test]
fn t3_is_deterministic() {
    run_twice(|| Box::new(BaselineStrategy::t3_nvls()));
}

/// The merge-table *eviction* machinery (LRU victim selection, the
/// timeout sweep walking every port, re-arm scheduling) must be as
/// host-independent as the happy path. A tiny table plus a tight
/// timeout on a multi-plane system forces both eviction kinds to fire;
/// the full stat vector (which includes every eviction counter) must
/// come back bit-identical.
#[test]
fn merge_table_eviction_paths_are_deterministic() {
    let strategy = || {
        // Uncoordinated and unthrottled so requests burst, on a table
        // holding only a handful of packet-sized sessions per port,
        // with a timeout tight enough for the sweep to fire mid-run.
        CaisStrategy::full()
            .with_coordination("w/o-coord", cais::core::CoordinationOpts::none())
            .with_credits(None)
            .with_merge_table(Some(64 * 1024))
            .with_timeout(SimDuration::from_us(2))
    };
    let dfg = sublayer(&small_model(), 4, SubLayer::L2);
    let a = execute(&strategy(), &dfg, &cfg()).expect("run completes");
    let b = execute(&strategy(), &dfg, &cfg()).expect("run completes");
    assert_eq!(a.total, b.total, "totals must be bit-identical");
    assert_eq!(a.gpu_occupancy, b.gpu_occupancy);
    assert_eq!(
        a.logic_stats, b.logic_stats,
        "MergeStats must be bit-identical"
    );
    assert_eq!(a.deduped_fetches, b.deduped_fetches);
    assert_eq!(a.mean_request_spread, b.mean_request_spread);
    // The point of the config: both eviction paths actually ran.
    let stat = |key: &str| a.stat(key).unwrap_or(0.0);
    assert!(
        stat("cais.evictions_lru") + stat("cais.evictions_timeout") > 0.0,
        "config must exercise the eviction machinery (lru={}, timeout={})",
        stat("cais.evictions_lru"),
        stat("cais.evictions_timeout"),
    );
}

#[test]
fn different_seeds_differ() {
    let dfg = sublayer(&small_model(), 4, SubLayer::L1);
    let a = execute(&CaisStrategy::full(), &dfg, &cfg()).expect("run completes");
    let mut cfg2 = cfg();
    cfg2.seed ^= 0xDEAD_BEEF;
    let b = execute(&CaisStrategy::full(), &dfg, &cfg2).expect("run completes");
    assert_ne!(a.total, b.total, "jitter must actually depend on the seed");
}
