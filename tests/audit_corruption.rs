//! The auditor must be shown to actually catch bugs: deliberately skew a
//! conservation tally through a test-only ledger poke, run an otherwise
//! healthy simulation, and require a typed [`SimError::AuditViolation`]
//! whose forensic report names the offending subsystem and ledger.

use cais::core::{CaisLogic, MergeConfig};
use cais::engine::{IdAlloc, Program, SimError, SystemConfig, SystemSim};
use cais::gpu_sim::{KernelDesc, MemOp, MemOpKind, Phase, TbDesc};
use cais::noc_sim::PureRouter;
use cais::sim_core::{GpuId, SimDuration};

fn quiet_cfg(n_gpus: usize) -> SystemConfig {
    let mut cfg = SystemConfig::dgx_h100();
    cfg.n_gpus = n_gpus;
    cfg.n_planes = 1;
    cfg.fabric = cais::noc_sim::FabricConfig::default_for(n_gpus, 1);
    cfg.gpu.dispatch_jitter = SimDuration::ZERO;
    cfg.gpu.launch_skew = SimDuration::ZERO;
    cfg.gpu.compute_jitter = SimDuration::ZERO;
    cfg.audit.enabled = true;
    cfg
}

/// One remote load from GPU 0 against an address homed on GPU 1.
fn loader_program(ids: &mut IdAlloc, cais: bool) -> Program {
    let addr = ids.addr(GpuId(1), 4096);
    let tb = TbDesc {
        id: ids.tb(),
        order_key: 0,
        group: None,
        pre_launch_sync: false,
        phases: vec![Phase::IssueMem {
            ops: vec![MemOp {
                kind: MemOpKind::RemoteLoad,
                addr,
                bytes: 4096,
                cais,
                tile: None,
            }],
            wait: true,
        }],
    };
    let mut p = Program::new();
    p.push(cais::engine::program::PlannedKernel {
        gpu: GpuId(0),
        desc: KernelDesc::new(ids.kernel(), "loader", vec![tb]),
        after: vec![],
    });
    p
}

#[test]
fn corrupted_fabric_tally_yields_audit_violation_naming_fabric() {
    let mut ids = IdAlloc::new(2);
    let mut sim = SystemSim::new(quiet_cfg(2), loader_program(&mut ids, false), PureRouter);
    // Skew the packet-enqueue tally by one: the run itself is healthy, so
    // only the auditor can notice.
    sim.fabric_mut().audit_poke_pkt_enqueued();
    let err = sim
        .run()
        .expect_err("poked tally must fail the conservation audit");
    match &err {
        SimError::AuditViolation(report) => {
            assert!(
                report.violations.iter().any(|v| v.subsystem == "fabric"),
                "expected a fabric violation, got {report}"
            );
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.ledger.contains("pkt conservation")),
                "expected the packet-conservation ledger, got {report}"
            );
            let text = err.to_string();
            assert!(text.contains("[fabric]"), "{text}");
            assert!(text.contains("pkt conservation"), "{text}");
        }
        other => panic!("expected AuditViolation, got {other:?}"),
    }
}

#[test]
fn corrupted_merge_tally_yields_audit_violation_naming_merge() {
    let mut ids = IdAlloc::new(2);
    let logic = CaisLogic::new(
        2,
        MergeConfig {
            n_gpus: 2,
            table_bytes_per_port: None,
            entry_overhead_bytes: 16,
            timeout: SimDuration::from_ms(10),
            entry_fault_rate: 0.0,
            degrade_threshold: 8,
        },
    );
    let mut sim = SystemSim::new(quiet_cfg(2), loader_program(&mut ids, true), logic);
    sim.fabric_mut().logic_mut().audit_poke_sessions_opened();
    let err = sim
        .run()
        .expect_err("poked merge tally must fail the conservation audit");
    match &err {
        SimError::AuditViolation(report) => {
            assert!(
                report.violations.iter().any(|v| v.subsystem == "merge"),
                "expected a merge violation, got {report}"
            );
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| v.ledger.contains("session conservation")),
                "expected the session-conservation ledger, got {report}"
            );
        }
        other => panic!("expected AuditViolation, got {other:?}"),
    }
}

#[test]
fn healthy_run_passes_the_same_audit() {
    // Control: the identical program and audit configuration, without the
    // poke, completes cleanly — the violations above really do come from
    // the injected corruption.
    let mut ids = IdAlloc::new(2);
    SystemSim::new(quiet_cfg(2), loader_program(&mut ids, false), PureRouter)
        .run()
        .expect("healthy audited run completes");
}
