//! Cross-crate correctness: every strategy executes every workload shape
//! to completion with conserved accounting.

use cais::baselines::{BaselineStrategy, LadmStrategy};
use cais::core::CaisStrategy;
use cais::engine::{strategy::execute, ExecReport, Strategy, SystemConfig};
use cais::llm_workload::{sublayer, transformer_layer, ModelConfig, Pass, SubLayer, TpMode};
use cais::noc_sim::Direction;

fn small_model() -> ModelConfig {
    ModelConfig {
        hidden: 1024,
        ffn_hidden: 2048,
        heads: 8,
        seq_len: 512,
        batch: 1,
        ..ModelConfig::llama_7b()
    }
}

fn cfg() -> SystemConfig {
    let mut cfg = SystemConfig::dgx_h100();
    cfg.n_gpus = 4;
    cfg.n_planes = 2;
    cfg.fabric = cais::noc_sim::FabricConfig::default_for(4, 2);
    cfg.coll_chunk_bytes = 128 * 1024;
    cfg
}

fn roster() -> Vec<(Box<dyn Strategy>, TpMode)> {
    vec![
        (Box::new(BaselineStrategy::tp_nvls()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::sp_nvls()), TpMode::SeqPar),
        (Box::new(BaselineStrategy::coconet()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::fuselib()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::t3()), TpMode::SeqPar),
        (Box::new(BaselineStrategy::coconet_nvls()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::fuselib_nvls()), TpMode::BasicTp),
        (Box::new(BaselineStrategy::t3_nvls()), TpMode::SeqPar),
        (Box::new(LadmStrategy::new()), TpMode::SeqPar),
        (Box::new(CaisStrategy::base()), TpMode::SeqPar),
        (Box::new(CaisStrategy::partial()), TpMode::SeqPar),
        (Box::new(CaisStrategy::full()), TpMode::SeqPar),
    ]
}

fn check_report(name: &str, r: &ExecReport) {
    assert!(
        r.total > cais::sim_core::SimDuration::from_us(5),
        "{name}: implausibly fast ({})",
        r.total
    );
    assert!(
        r.total < cais::sim_core::SimDuration::from_ms(50),
        "{name}: implausibly slow ({})",
        r.total
    );
    // Every kernel span is well-formed.
    for s in r.kernel_spans.values() {
        assert!(
            s.end >= s.start,
            "{name}: kernel {} ends before start",
            s.name
        );
    }
    // Fabric moved something in both directions for every strategy (all
    // our workloads are communication-bearing).
    assert!(
        r.fabric.bytes_dir(Direction::Up) > 0,
        "{name}: no upstream traffic"
    );
    assert!(
        r.fabric.bytes_dir(Direction::Down) > 0,
        "{name}: no downstream traffic"
    );
}

#[test]
fn every_strategy_completes_every_sublayer() {
    let cfg = cfg();
    let model = small_model();
    for which in SubLayer::ALL {
        for (strategy, _) in roster() {
            let dfg = sublayer(&model, cfg.tp(), which);
            let r = execute(strategy.as_ref(), &dfg, &cfg).expect("run completes");
            check_report(&format!("{} {}", strategy.name(), which.label()), &r);
        }
    }
}

#[test]
fn every_strategy_completes_forward_and_training_layers() {
    let cfg = cfg();
    let model = small_model();
    for pass in [Pass::Forward, Pass::Training] {
        for (strategy, mode) in roster() {
            let dfg = transformer_layer(&model, cfg.tp(), mode, pass);
            let r = execute(strategy.as_ref(), &dfg, &cfg).expect("run completes");
            check_report(&format!("{} {pass:?}", strategy.name()), &r);
        }
    }
}

#[test]
fn cais_merge_accounting_is_conserved() {
    let cfg = cfg();
    let dfg = sublayer(&small_model(), cfg.tp(), SubLayer::L1);
    let r = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
    let reqs = r.stat("cais.load_requests").unwrap();
    let merged = r.stat("cais.loads_merged").unwrap();
    let forwarded = r.stat("cais.loads_forwarded").unwrap();
    // Every request is either merged into a session or forwarded.
    assert_eq!(merged + forwarded, reqs, "load accounting must balance");
    // No sessions left open at quiescence.
    let contribs = r.stat("cais.reduce_contribs").unwrap();
    let flushes = r.stat("cais.reduce_flushes").unwrap();
    assert!(flushes > 0.0 && flushes <= contribs);
}

#[test]
fn cais_moves_less_upstream_than_unmerged_nvls_gather() {
    // In-switch load merging should cut the gather's *upstream* traffic
    // (one fetch instead of p-1) relative to LADM's unmerged reads.
    let cfg = cfg();
    let dfg = sublayer(&small_model(), cfg.tp(), SubLayer::L1);
    let cais = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
    let ladm = execute(&LadmStrategy::new(), &dfg, &cfg).expect("run completes");
    let cais_up = cais.fabric.bytes_dir(Direction::Up);
    let ladm_up = ladm.fabric.bytes_dir(Direction::Up);
    assert!(
        (cais_up as f64) < 0.7 * ladm_up as f64,
        "CAIS up {cais_up} vs LADM up {ladm_up}"
    );
}

#[test]
fn fused_pipeline_overlaps_kernels_in_time() {
    // Under full CAIS the producer GEMM and the consumer AG-GEMM must be
    // in flight simultaneously (asymmetric kernel overlapping).
    let cfg = cfg();
    let dfg = sublayer(&small_model(), cfg.tp(), SubLayer::L1);
    let r = execute(&CaisStrategy::full(), &dfg, &cfg).expect("run completes");
    let span = |prefix: &str| {
        r.kernel_spans
            .values()
            .find(|s| s.gpu == cais::sim_core::GpuId(0) && s.name.as_str().starts_with(prefix))
            .unwrap_or_else(|| panic!("kernel {prefix} missing"))
    };
    let producer = span("gemm.attn.proj");
    let consumer = span("gemm.ffn.fc1");
    assert!(
        consumer.start < producer.end,
        "consumer must launch before the producer drains: {} vs {}",
        consumer.start,
        producer.end
    );
}

#[test]
fn base_variant_serializes_stages() {
    let cfg = cfg();
    let dfg = sublayer(&small_model(), cfg.tp(), SubLayer::L1);
    let r = execute(&CaisStrategy::base(), &dfg, &cfg).expect("run completes");
    let span = |prefix: &str| {
        r.kernel_spans
            .values()
            .find(|s| s.gpu == cais::sim_core::GpuId(0) && s.name.as_str().starts_with(prefix))
            .unwrap_or_else(|| panic!("kernel {prefix} missing"))
    };
    let mid = span("fused.mid");
    let consumer = span("gemm.ffn.fc1");
    assert!(
        consumer.start >= mid.end,
        "CAIS-Base keeps the coarse barrier: consumer {} vs mid end {}",
        consumer.start,
        mid.end
    );
}
