//! Property-based invariants across the simulator layers.
//!
//! These were originally `proptest` properties; they are now driven by
//! the repo's own deterministic [`JitterRng`] so the workspace builds
//! with zero external dependencies and every CI run replays the exact
//! same case set. Each test sweeps a fixed number of seeded cases and
//! asserts the invariant on every one.

use cais::baselines::BaselineStrategy;
use cais::core::{merge::Waiter, CaisStrategy, MergeConfig, MergeUnit};
use cais::engine::strategy::execute;
use cais::engine::{IdAlloc, Program, SystemConfig, SystemSim};
use cais::gpu_sim::KernelCost;
use cais::harness::runner::Scale;
use cais::llm_workload::{sublayer, ModelConfig, SubLayer};
use cais::noc_sim::{Direction, Fabric, FabricConfig, FlowClass, Payload, PureRouter};
use cais::nvls::{ring_all_gather, ring_all_reduce, ring_reduce_scatter};
use cais::sim_core::rng::JitterRng;
use cais::sim_core::{Addr, EventQueue, GpuId, PlaneId, SimDuration, SimTime, TbId};
use cais::sim_core::{DegradeSpec, FaultPlan, MergeFaultSpec, StragglerSpec};

#[derive(Debug, Clone)]
struct Blob(u64);
impl Payload for Blob {
    fn data_bytes(&self) -> u64 {
        self.0
    }
    fn class(&self) -> FlowClass {
        FlowClass::Bulk
    }
}

/// The event queue is a total order: pops are non-decreasing in time
/// and FIFO within a timestamp.
#[test]
fn event_queue_total_order() {
    let mut rng = JitterRng::seed_from(0xE7E4);
    for _case in 0..64 {
        let n = 1 + rng.next_below(199) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_ns(rng.next_below(1000)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO violated within a timestamp");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Byte conservation: every payload byte injected into the fabric is
/// delivered; up-link and down-link wire bytes match exactly for
/// point-to-point routing.
#[test]
fn fabric_conserves_bytes() {
    let mut rng = JitterRng::seed_from(0xFAB);
    for _case in 0..64 {
        let n_gpus = 2 + rng.next_below(7) as usize;
        let n_msgs = 1 + rng.next_below(49) as usize;
        let mut f = Fabric::new(FabricConfig::default_for(n_gpus, 2), PureRouter);
        let mut injected = 0u64;
        for i in 0..n_msgs {
            let s = 1 + rng.next_below(99_999);
            let src = GpuId((i % n_gpus) as u16);
            let dst = GpuId(((i + 1) % n_gpus) as u16);
            f.inject(
                SimTime::from_ns(i as u64),
                src,
                dst,
                PlaneId((i % 2) as u16),
                Blob(s),
            );
            injected += s;
        }
        f.run_to_completion();
        let delivered: u64 = f.drain_deliveries().iter().map(|d| d.payload.0).sum();
        assert_eq!(delivered, injected);
        let report = f.report(SimDuration::from_ms(10));
        assert_eq!(
            report.bytes_dir(Direction::Up),
            report.bytes_dir(Direction::Down)
        );
    }
}

/// Merge unit: with an unbounded table, N-1 staggered requesters for
/// one address produce exactly one forwarded fetch and N-1 responses,
/// in any arrival order.
#[test]
fn merge_unit_serves_every_requester_once() {
    let mut rng = JitterRng::seed_from(0x4E46);
    for _case in 0..64 {
        let n_gpus = 3 + rng.next_below(6) as usize;
        let arrival_order: Vec<u64> = (0..n_gpus - 1).map(|_| rng.next_below(10_000)).collect();
        let resp_at = rng.next_below(12_000);
        let mut m = MergeUnit::new(MergeConfig {
            n_gpus,
            table_bytes_per_port: None,
            entry_overhead_bytes: 16,
            timeout: SimDuration::from_ms(10),
            entry_fault_rate: 0.0,
            degrade_threshold: 8,
        });
        let addr = Addr::new(GpuId(0), 0x1000);
        let mut out = Vec::new();
        let mut sorted: Vec<(u64, u16)> = arrival_order
            .iter()
            .enumerate()
            .map(|(g, t)| (*t, g as u16 + 1))
            .collect();
        sorted.push((resp_at, u16::MAX)); // sentinel: the response event
        sorted.sort_unstable();
        let mut responded = false;
        for (t, who) in sorted {
            if who == u16::MAX {
                // A response only arrives if the fetch was forwarded
                // (first request seen).
                if out
                    .iter()
                    .any(|a| matches!(a, cais::core::merge::MergeAction::ForwardLoad { .. }))
                {
                    m.on_load_resp(SimTime::from_ns(t), PlaneId(0), addr, 1024, &mut out);
                    responded = true;
                }
            } else {
                m.on_load_req(
                    SimTime::from_ns(t),
                    PlaneId(0),
                    addr,
                    1024,
                    Waiter {
                        requester: GpuId(who),
                        tb: TbId(who as u64),
                        tile: None,
                    },
                    &mut out,
                );
            }
        }
        if !responded {
            m.on_load_resp(SimTime::from_ns(20_000), PlaneId(0), addr, 1024, &mut out);
        }
        let forwards = out
            .iter()
            .filter(|a| matches!(a, cais::core::merge::MergeAction::ForwardLoad { .. }))
            .count();
        let responses = out
            .iter()
            .filter(|a| matches!(a, cais::core::merge::MergeAction::RespondLoad { .. }))
            .count();
        assert_eq!(forwards, 1, "exactly one fetch per address");
        assert_eq!(responses, n_gpus - 1, "every requester answered once");
        assert!(!m.has_entries(), "session released after completion");
    }
}

/// Ring collectives move exactly the algorithmic payload volume
/// (modulo per-packet headers) for arbitrary sizes and GPU counts.
#[test]
fn ring_collectives_move_algorithmic_volume() {
    let mut rng = JitterRng::seed_from(0x41D6);
    for case in 0..12 {
        let kb = 64 + rng.next_below(448);
        let n_gpus = 2 + rng.next_below(5) as usize;
        let which = case % 3;
        let bytes = kb * 1024 * n_gpus as u64;
        let mut cfg = SystemConfig::dgx_h100();
        cfg.n_gpus = n_gpus;
        cfg.n_planes = 1;
        cfg.fabric = FabricConfig::default_for(n_gpus, 1);
        cfg.gpu.dispatch_jitter = SimDuration::ZERO;
        cfg.gpu.compute_jitter = SimDuration::ZERO;
        cfg.gpu.launch_skew = SimDuration::ZERO;
        cfg.coll_chunk_bytes = 64 * 1024;
        let cost = KernelCost::new(&cfg.gpu);
        let mut prog = Program::new();
        let mut ids = IdAlloc::new(n_gpus);
        let mult = match which {
            0 => {
                ring_all_gather(&mut prog, &mut ids, &cfg, &cost, "x", bytes, &[], None);
                1
            }
            1 => {
                ring_reduce_scatter(&mut prog, &mut ids, &cfg, &cost, "x", bytes, &[], None);
                1
            }
            _ => {
                ring_all_reduce(&mut prog, &mut ids, &cfg, &cost, "x", bytes, &[], None);
                2
            }
        };
        let report = SystemSim::new(cfg, prog, Box::new(PureRouter))
            .run()
            .expect("run completes");
        let expect = mult * bytes / n_gpus as u64 * (n_gpus as u64 - 1) * n_gpus as u64;
        let got = report.fabric.bytes_dir(Direction::Up);
        let ratio = got as f64 / expect as f64;
        assert!(
            (0.95..1.15).contains(&ratio),
            "volume off: got {got} expect {expect}"
        );
    }
}

/// Every resilience-experiment fault configuration — packet drops,
/// bandwidth-degradation windows, a straggler GPU, and merge-table entry
/// faults — passes the conservation audit: cadence ledger checks during
/// the run and the mandatory quiescence verification at the end, for both
/// the CAIS and TP-NVLS strategies, across a seeded sweep of fault
/// timelines.
#[test]
fn resilience_configs_pass_quiescence_audit() {
    let mut rng = JitterRng::seed_from(0xAD17);
    let model = Scale::Smoke.model(&ModelConfig::llama_7b());
    for case in 0..8 {
        let seed = 0xFA17 ^ rng.next_below(1 << 20);
        let plan = match case % 4 {
            0 => FaultPlan::default().with_seed(seed).with_drop_rate(1e-2),
            1 => FaultPlan::default()
                .with_seed(seed)
                .with_degrade(DegradeSpec {
                    factor: 2.0,
                    period: SimDuration::from_us(10),
                    duration: SimDuration::from_us(3),
                }),
            2 => FaultPlan::default()
                .with_seed(seed)
                .with_straggler(StragglerSpec {
                    gpu: 1,
                    compute_factor: 1.5,
                }),
            _ => FaultPlan::default()
                .with_seed(seed)
                .with_merge_faults(MergeFaultSpec {
                    rate: 0.05,
                    degrade_threshold: 4,
                }),
        };
        let mut cfg = Scale::Smoke.system();
        cfg.faults = plan;
        cfg.audit.enabled = true;
        // Well below a smoke run's event count, so cadence checks fire
        // many times mid-run, not just at quiescence.
        cfg.audit.cadence_events = 2048;
        let dfg = sublayer(&model, cfg.tp(), SubLayer::L2);
        for cais in [true, false] {
            let result = if cais {
                execute(&CaisStrategy::full(), &dfg, &cfg)
            } else {
                execute(&BaselineStrategy::tp_nvls(), &dfg, &cfg)
            };
            result.unwrap_or_else(|e| panic!("case {case} (cais={cais}) failed audit or run: {e}"));
        }
    }
}
