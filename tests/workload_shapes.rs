//! Workload-model invariants that the rest of the system relies on.

use cais::llm_workload::{
    sublayer, transformer_layer, CollKind, ModelConfig, NodeKind, Pass, SubLayer, TpMode,
};

#[test]
fn collective_volume_is_tp_invariant() {
    // The logical bytes a layer communicates do not depend on the TP
    // degree (each AllReduce moves the same [T, H] tensor) — this is why
    // communication dominates as compute shrinks with p (paper Fig. 2).
    let m = ModelConfig::llama_7b();
    let v4 = transformer_layer(&m, 4, TpMode::BasicTp, Pass::Forward).total_collective_bytes();
    let v8 = transformer_layer(&m, 8, TpMode::BasicTp, Pass::Forward).total_collective_bytes();
    assert_eq!(v4, v8);
}

#[test]
fn per_gpu_flops_scale_inversely_with_tp() {
    let m = ModelConfig::llama_7b();
    let f4 = transformer_layer(&m, 4, TpMode::SeqPar, Pass::Forward).total_flops();
    let f8 = transformer_layer(&m, 8, TpMode::SeqPar, Pass::Forward).total_flops();
    let ratio = f4 / f8;
    assert!((1.8..2.2).contains(&ratio), "flops ratio {ratio}");
}

#[test]
fn sp_and_basic_move_equivalent_bytes_per_block() {
    // AllReduce == ReduceScatter + AllGather algorithmically: per block,
    // Basic TP's one AR over [T, H] equals SP's RS+AG pair over [T, H].
    let m = ModelConfig::llama_7b();
    let basic = transformer_layer(&m, 8, TpMode::BasicTp, Pass::Forward);
    let sp = transformer_layer(&m, 8, TpMode::SeqPar, Pass::Forward);
    // Basic: 2 AR x [T,H]; SP: 2 AG + 2 RS x [T,H] => 2x logical tensor
    // volume, but the lowered wire bytes match (RS and AG each move the
    // "missing" (p-1)/p fraction, AR moves both halves).
    assert_eq!(
        2 * basic.total_collective_bytes(),
        sp.total_collective_bytes()
    );
}

#[test]
fn every_table1_model_divides_by_eight() {
    for m in ModelConfig::table1() {
        assert_eq!(m.hidden % 8, 0, "{}", m.name);
        assert_eq!(m.ffn_hidden % 8, 0, "{}", m.name);
        assert_eq!(m.heads % 8, 0, "{}", m.name);
        assert_eq!(m.tokens() % 8, 0, "{}", m.name);
    }
}

#[test]
fn sublayers_match_transformer_dimensions() {
    // The L1 sub-layer's GEMMs must be exactly the attn.proj and ffn.fc1
    // of the full layer graph.
    let m = ModelConfig::llama_7b();
    let layer = transformer_layer(&m, 8, TpMode::SeqPar, Pass::Forward);
    let l1 = sublayer(&m, 8, SubLayer::L1);
    let find_gemm = |g: &cais::llm_workload::Dfg, name: &str| -> (u64, u64, u64) {
        match g.node(g.find(name).unwrap()).kind {
            NodeKind::Gemm { m, n, k } => (m, n, k),
            ref other => panic!("{name} is {other:?}"),
        }
    };
    assert_eq!(find_gemm(&layer, "attn.proj"), find_gemm(&l1, "attn.proj"));
    assert_eq!(find_gemm(&layer, "ffn.fc1"), find_gemm(&l1, "ffn.fc1"));
}

#[test]
fn backward_mirrors_forward_collectives_under_sp() {
    let m = ModelConfig::llama_7b();
    let bwd = transformer_layer(&m, 8, TpMode::SeqPar, Pass::Backward);
    assert_eq!(bwd.collective_count(CollKind::AllGather), 2);
    assert_eq!(bwd.collective_count(CollKind::ReduceScatter), 2);
}

#[test]
fn scaling_hidden_preserves_divisibility() {
    let m = ModelConfig::llama_7b();
    for p in [8u64, 16, 32] {
        let scaled = m.scale_hidden(p, 8);
        let g = transformer_layer(&scaled, p, TpMode::SeqPar, Pass::Forward);
        assert!(g.validate().is_ok(), "p={p}");
    }
}
